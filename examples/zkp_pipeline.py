#!/usr/bin/env python3
"""ZKP building blocks: NTT and MSM on top of the library (Figure 7 story).

The paper's future-work argument is that the two dominant kernels of a
zero-knowledge-proof backend — the number-theoretic transform and the
multi-scalar multiplication — perform enormous numbers of 256-bit modular
multiplications whose intermediate register writes and memory traffic
ModSRAM eliminates.  This example:

* multiplies two polynomials over the BN254 scalar field with the
  instrumented NTT and shows the measured operation counts,
* runs a small Pippenger MSM over secp256k1 and shows the bucket-method
  structure, and
* scales both kernels to the paper's operating point (2^15 elements,
  256-bit operands) with the validated closed-form models, reproducing the
  Figure 7 comparison.

Run with ``python examples/zkp_pipeline.py``.
"""

from __future__ import annotations

import random

from repro.analysis import render_table, reproduce_figure7
from repro.ecc import CURVE_SPECS, get_curve, scalar_multiply
from repro.modsram import PAPER_CONFIG
from repro.zkp import MsmStatistics, NttContext, msm_pippenger


def ntt_demo() -> None:
    modulus = CURVE_SPECS["bn254"].scalar_field_modulus
    assert modulus is not None
    rng = random.Random(11)
    size = 256
    context = NttContext(modulus, size)

    a = [rng.randrange(modulus) for _ in range(size // 2)]
    b = [rng.randrange(modulus) for _ in range(size // 2)]
    context.multiply_polynomials(a, b)

    rows = [
        ("transform size", size),
        ("modular multiplications", context.counter.count("modmul")),
        ("value-level memory accesses", context.counter.count("memory_access")),
        ("register writes (word-serial datapath)", context.counter.count("register_write")),
    ]
    print(render_table(("quantity", "measured"), rows,
                       title="Instrumented NTT polynomial multiplication (BN254 scalar field)"))
    print()


def msm_demo() -> None:
    curve = get_curve("secp256k1")
    rng = random.Random(13)
    count = 64
    points = [
        scalar_multiply(curve, rng.randrange(3, 1 << 64), curve.generator)
        for _ in range(count)
    ]
    scalars = [rng.randrange(1, 1 << 128) for _ in range(count)]

    curve.field.counter.reset()
    statistics = MsmStatistics()
    msm_pippenger(curve, scalars, points, window_bits=8, statistics=statistics)

    rows = [
        ("points", statistics.points),
        ("window size (bits)", statistics.window_bits),
        ("windows", statistics.windows),
        ("bucket additions", statistics.bucket_additions),
        ("bucket reductions", statistics.bucket_reductions),
        ("doublings", statistics.doublings),
        ("field multiplications", curve.field.counter.count("modmul")),
    ]
    print(render_table(("quantity", "measured"), rows,
                       title="Instrumented Pippenger MSM (secp256k1, 64 points)"))
    print()


def figure7_projection() -> None:
    result = reproduce_figure7()
    print(result.render())
    ntt_cycles = result.ntt.modular_multiplications * PAPER_CONFIG.expected_iteration_cycles
    msm_cycles = result.msm.modular_multiplications * PAPER_CONFIG.expected_iteration_cycles
    frequency_hz = PAPER_CONFIG.frequency_mhz * 1e6
    print()
    print("Projection onto one ModSRAM macro (767 cycles per multiplication):")
    print(f"  NTT (2^15 points): {ntt_cycles / frequency_hz * 1e3:8.1f} ms of multiplications")
    print(f"  MSM (2^15 points): {msm_cycles / frequency_hz:8.1f} s of multiplications")
    print("  ... and none of the per-multiplication register writes / memory")
    print("  accesses above leave the SRAM array, which is the Figure 7 argument.")


def main() -> None:
    ntt_demo()
    msm_demo()
    figure7_projection()


if __name__ == "__main__":
    main()
