#!/usr/bin/env python3
"""Elliptic-curve scalar multiplication with ModSRAM as the multiplier.

The paper positions ModSRAM as the modular-multiplication engine for ECC:
the 64-row array holds the operands of a point addition and the LUT word
lines are reused across the many multiplications of one point operation.
This example:

* runs an EC point addition and doubling where *every* field multiplication
  executes on the cycle-accurate ModSRAM model,
* reports how many multiplications / cycles the point operations needed and
  how often the resident LUTs were reused, and
* projects the latency of a full 255-bit scalar multiplication from the
  measured per-operation counts.

Run with ``python examples/ecc_point_multiplication.py``.
"""

from __future__ import annotations

import random

from repro.analysis import render_table
from repro.ecc import PrimeField, build_curve, CURVE_SPECS, scalar_multiply
from repro.modsram import ModSRAMMultiplier, PAPER_CONFIG


def run_point_operations_on_modsram() -> None:
    spec = CURVE_SPECS["bn254"]
    adapter = ModSRAMMultiplier(PAPER_CONFIG)
    field = PrimeField(spec.field_modulus, multiplier=adapter)
    curve = build_curve(spec, field=field)

    generator = curve.generator
    doubled = curve.double(generator)
    field.counter.reset()
    adapter.reports.clear()

    tripled = curve.add(doubled, generator)
    assert curve.contains(tripled)

    modmuls = field.counter.count("modmul")
    cycles = adapter.total_iteration_cycles()
    reuse = adapter.lut_reuse_rate()
    latency_us = cycles / PAPER_CONFIG.frequency_mhz

    print("One EC point addition (BN254), every multiplication in-SRAM")
    print(f"  modular multiplications : {modmuls}")
    print(f"  modular inversions      : {field.counter.count('modinv')} (near-memory)")
    print(f"  ModSRAM main-loop cycles: {cycles}  ({cycles // max(modmuls,1)} per multiplication)")
    print(f"  LUT reuse rate          : {reuse:.0%}")
    print(f"  projected latency       : {latency_us:.1f} us at "
          f"{PAPER_CONFIG.frequency_mhz:.0f} MHz")
    print()


def project_scalar_multiplication_latency() -> None:
    """Estimate a full scalar multiplication from per-point-operation costs."""
    spec = CURVE_SPECS["bn254"]
    reference = build_curve(spec)
    rng = random.Random(7)
    scalar = rng.randrange(1, spec.order)

    # Count the field multiplications of the double-and-add ladder in software.
    reference.field.counter.reset()
    scalar_multiply(reference, scalar, reference.generator)
    modmuls = reference.field.counter.count("modmul")
    inversions = reference.field.counter.count("modinv")

    cycles_per_modmul = PAPER_CONFIG.expected_iteration_cycles
    total_cycles = modmuls * cycles_per_modmul
    latency_ms = total_cycles / (PAPER_CONFIG.frequency_mhz * 1e3)

    rows = [
        ("scalar bit length", scalar.bit_length()),
        ("field multiplications", modmuls),
        ("field inversions", inversions),
        ("cycles per multiplication", cycles_per_modmul),
        ("total ModSRAM cycles", total_cycles),
        ("projected latency (ms)", round(latency_ms, 3)),
    ]
    print(render_table(("quantity", "value"), rows,
                       title="Projected k*G on ModSRAM (BN254, double-and-add)"))
    print()


def main() -> None:
    run_point_operations_on_modsram()
    project_scalar_multiplication_latency()


if __name__ == "__main__":
    main()
