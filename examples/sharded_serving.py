"""Sharded multi-process serving: shard routing and warm-cache hit rates.

The serving layer's executor seam in action (see the serving & sharding
how-to in ``docs/serving.md``):

1. a :class:`~repro.service.Server` with ``workers=2`` shards coalesced
   batches across two engine-owning OS processes;
2. traffic under three different moduli shows **stable hash routing** —
   each modulus has a home shard where its context (LUT tables,
   Montgomery constants) warms once and stays hot;
3. the per-shard metrics rollup shows the resulting **warm-cache hit
   rates**: one miss per (modulus, shard) that served it, hits for
   everything after.

The ``__main__`` guard matters: the pool's default start method is
``spawn``, which re-imports this file in each worker process.
"""

from __future__ import annotations

import asyncio

from repro.service import Client, Server, ServerConfig, shard_for

#: Three moduli so the router has something to route: the BN254 base
#: field prime and two Mersenne primes.
MODULI = {
    "bn254": 0x30644E72E131A029B85045B68181585D97816A916871CA8D3C208C16D87CFD47,
    "m127": (1 << 127) - 1,
    "m61": (1 << 61) - 1,
}
WORKERS = 2
ROUNDS = 6
PAIRS_PER_REQUEST = 8


async def main() -> None:
    config = ServerConfig(max_batch=64, batch_window_ms=0.5)
    async with Server(
        backend="montgomery", config=config, workers=WORKERS
    ) as server:
        print(f"pool of {WORKERS} workers; predicted home shards:")
        for name, modulus in MODULI.items():
            print(f"  {name:<6} -> shard {shard_for(modulus, WORKERS)}")

        client = Client(server, tenant="example")
        observed = {}
        for round_index in range(ROUNDS):
            for name, modulus in MODULI.items():
                pairs = [
                    ((round_index * 37 + i) % modulus, (i * 101 + 7) % modulus)
                    for i in range(PAIRS_PER_REQUEST)
                ]
                response = await client.multiply_batch(pairs, modulus=modulus)
                assert response.values == tuple(
                    a * b % modulus for a, b in pairs
                )
                observed.setdefault(name, set()).add(response.shard)

        print("\nobserved shards per modulus (affinity, spill on load):")
        for name, shards in observed.items():
            print(f"  {name:<6} served by shard(s) {sorted(shards)}")

        summary = server.metrics_summary()
        executor = summary["executor"]
        print(f"\nexecutor: {executor['kind']}, "
              f"{executor['jobs']} jobs, "
              f"{executor['spilled_jobs']} spilled, "
              f"{executor['worker_restarts']} restarts")
        for shard in executor["per_shard"]:
            cache = shard["cache"]
            lookups = cache["hits"] + cache["misses"]
            rate = cache["hits"] / lookups if lookups else 0.0
            print(f"  shard {shard['shard']}: {shard['jobs']} jobs, "
                  f"{shard['pairs']} pairs, cache {cache['hits']}/{lookups} "
                  f"hits (rate {rate:.2f})")
        merged = summary["context_cache"]
        print(f"merged context cache: {merged['hits']} hits / "
              f"{merged['misses']} misses "
              f"(hit rate {merged['hit_rate']:.2f})")
        print(f"throughput: {summary['requests_per_second']:.1f} req/s over "
              f"{summary['completed_requests']} requests")


if __name__ == "__main__":
    asyncio.run(main())
