#!/usr/bin/env python3
"""Design-space exploration through the declarative Experiment API.

The paper evaluates one design point (64 x 256, 65 nm, 256-bit).  Because
every model in this library is parametric, the same machinery answers
"what if" questions a deployment would ask — and since PR 2 the way to ask
them is a *sweep* of the registered ``design-point`` experiment rather
than a hand-rolled loop: the Runner executes the grid (optionally across a
process pool), caches every point by content hash, and returns structured
results that render to the familiar tables.

Run with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

import tempfile

from repro.analysis import render_table
from repro.experiments import Runner
from repro.sram import LogicSenseAmpModule, SenseAmpParameters


def bitwidth_sweep(runner: Runner) -> None:
    """Cycles / latency / area / energy across operand widths."""
    sweep = runner.sweep("design-point", {"bitwidth": (64, 128, 192, 256)})
    rows = []
    for result in sweep.results:
        point = result.result()  # DesignPointResult
        rows.append(
            (
                point.bitwidth,
                point.iteration_cycles,
                round(point.latency_us, 2),
                round(point.area_mm2, 4),
                round(point.energy_pj, 1),
            )
        )
    print(render_table(
        ("bitwidth", "cycles", "latency (us)", "area (mm^2)", "energy/op (pJ)"),
        rows,
        title="Bitwidth sweep (paper schedule, 64-row array)",
    ))
    print()


def technology_sweep(runner: Runner) -> None:
    """First-order constant-field scaling across process nodes."""
    sweep = runner.sweep(
        "design-point",
        {"technology_nm": (65, 45, 28)},
        params={"measure": False},  # scheduled cycles; no accelerator runs
    )
    rows = []
    for result in sweep.results:
        point = result.result()
        rows.append(
            (
                f"{point.technology_nm} nm",
                round(point.frequency_mhz, 0),
                round(point.latency_us, 2),
                round(point.area_mm2, 4),
            )
        )
    print(render_table(
        ("node", "frequency (MHz)", "latency (us)", "area (mm^2)"),
        rows,
        title="Technology scaling (first-order constant-field rules)",
    ))
    print()


def warm_cache_demo(runner: Runner) -> None:
    """Re-running a sweep serves every point from the content-hash cache."""
    warm = runner.sweep("design-point", {"bitwidth": (64, 128, 192, 256)})
    print(
        f"re-ran the bitwidth sweep: {warm.cache_hits}/{len(warm.results)} "
        f"points from cache, {warm.elapsed_seconds:.3f} s recomputation"
    )
    print()


def sensing_margin_study() -> None:
    rows = []
    for sigma_mv in (5, 15, 30, 45, 60):
        module = LogicSenseAmpModule(columns=256, parameters=SenseAmpParameters())
        probability = module.failure_probability(sigma_mv * 1e-3)
        per_access = 1 - (1 - probability) ** (3 * 256)
        rows.append(
            (
                sigma_mv,
                f"{module.worst_case_margin_v() * 1e3:.0f} mV",
                f"{probability:.2e}",
                f"{per_access:.2e}",
            )
        )
    print(render_table(
        ("bitline noise sigma (mV)", "worst-case margin", "per-SA flip probability",
         "per-access failure probability"),
        rows,
        title="Logic-SA sensing-margin study (three references per bitline)",
    ))


def main() -> None:
    # A throwaway cache directory keeps the example self-contained; drop
    # cache_dir (or set $REPRO_CACHE_DIR) to persist sweeps across runs.
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = Runner(cache_dir=cache_dir, parallel=True)
        bitwidth_sweep(runner)
        technology_sweep(runner)
        warm_cache_demo(runner)
    sensing_margin_study()


if __name__ == "__main__":
    main()
