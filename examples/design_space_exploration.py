#!/usr/bin/env python3
"""Design-space exploration with the ModSRAM models.

The paper evaluates one design point (64 x 256, 65 nm, 256-bit).  Because
every model in this library is parametric, the same machinery answers
"what if" questions a deployment would ask:

* How do cycles, latency, area and energy scale with the operand bitwidth?
* What does a different technology node buy?
* How much sensing margin does the logic-SA scheme have, and when does
  bitline noise start to corrupt XOR3/MAJ results?

Run with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

import random

from repro.analysis import render_table
from repro.modsram import AreaModel, ModSRAMAccelerator, ModSRAMConfig
from repro.sram import LogicSenseAmpModule, SenseAmpParameters


def bitwidth_sweep() -> None:
    rows = []
    rng = random.Random(5)
    for bitwidth in (64, 128, 192, 256):
        config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(bitwidth)
        accelerator = ModSRAMAccelerator(config)
        modulus = ((1 << bitwidth) - rng.randrange(3, 1 << 8)) | 1
        a = rng.randrange(modulus) >> 1
        b = rng.randrange(modulus)
        result = accelerator.multiply(a, b, modulus)
        assert result.product == (a * b) % modulus
        area = AreaModel(config).total_mm2()
        energy = accelerator.energy_report().total_pj
        rows.append(
            (
                bitwidth,
                result.report.iteration_cycles,
                round(result.report.latency_us, 2),
                round(area, 4),
                round(energy, 1),
            )
        )
    print(render_table(
        ("bitwidth", "cycles", "latency (us)", "area (mm^2)", "energy/op (pJ)"),
        rows,
        title="Bitwidth sweep (paper schedule, 64-row array)",
    ))
    print()


def technology_sweep() -> None:
    rows = []
    for node in (65, 45, 28):
        config = ModSRAMConfig(technology_nm=node)
        scaled = ModSRAMConfig(
            technology_nm=node, timing=config.timing.scaled_to(node)
        )
        area = AreaModel(scaled).total_mm2()
        rows.append(
            (
                f"{node} nm",
                round(scaled.frequency_mhz, 0),
                round(scaled.expected_iteration_cycles / scaled.frequency_mhz, 2),
                round(area, 4),
            )
        )
    print(render_table(
        ("node", "frequency (MHz)", "latency (us)", "area (mm^2)"),
        rows,
        title="Technology scaling (first-order constant-field rules)",
    ))
    print()


def sensing_margin_study() -> None:
    rows = []
    for sigma_mv in (5, 15, 30, 45, 60):
        module = LogicSenseAmpModule(columns=256, parameters=SenseAmpParameters())
        probability = module.failure_probability(sigma_mv * 1e-3)
        per_access = 1 - (1 - probability) ** (3 * 256)
        rows.append(
            (
                sigma_mv,
                f"{module.worst_case_margin_v() * 1e3:.0f} mV",
                f"{probability:.2e}",
                f"{per_access:.2e}",
            )
        )
    print(render_table(
        ("bitline noise sigma (mV)", "worst-case margin", "per-SA flip probability",
         "per-access failure probability"),
        rows,
        title="Logic-SA sensing-margin study (three references per bitline)",
    ))


def main() -> None:
    bitwidth_sweep()
    technology_sweep()
    sensing_margin_study()


if __name__ == "__main__":
    main()
