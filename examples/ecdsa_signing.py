#!/usr/bin/env python3
"""ECDSA signing and verification — the PKC workload from the paper's intro.

Public-key cryptography (digital signatures) is the first motivating
application in the paper's introduction.  This example runs a complete ECDSA
flow over secp256k1 (the Bitcoin curve the paper names in §5.2), measures how
many modular multiplications the sign and verify operations perform, and
projects their latency on ModSRAM using the point-operation scheduler — the
"system-level application" view the future-work section sketches.

Run with ``python examples/ecdsa_signing.py``.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.ecc import Ecdsa, PrimeField, build_curve, CURVE_SPECS
from repro.modsram import PAPER_CONFIG, PointOperationScheduler

MESSAGE = b"ModSRAM: in-SRAM modular multiplication for ECC"


def measured_workload() -> tuple:
    """Sign and verify once, counting the field operations as they happen."""
    spec = CURVE_SPECS["secp256k1"]
    field = PrimeField(spec.field_modulus)
    curve = build_curve(spec, field=field)
    ecdsa = Ecdsa(curve)

    keypair = ecdsa.generate_keypair(0x1F0C_0FFEE_BADC0DE)

    field.counter.reset()
    signature = ecdsa.sign(keypair.private_key, MESSAGE)
    sign_modmuls = field.counter.count("modmul")
    sign_modinvs = field.counter.count("modinv")

    field.counter.reset()
    valid = ecdsa.verify(keypair.public_key, MESSAGE, signature)
    verify_modmuls = field.counter.count("modmul")
    verify_modinvs = field.counter.count("modinv")

    assert valid
    rows = [
        ("sign", sign_modmuls, sign_modinvs),
        ("verify", verify_modmuls, verify_modinvs),
    ]
    print(render_table(
        ("operation", "field multiplications", "field inversions"),
        rows,
        title="Measured ECDSA workload (secp256k1)",
    ))
    print(f"signature r = {signature.r:#x}")
    print(f"signature s = {signature.s:#x}")
    print()
    return sign_modmuls, verify_modmuls


def modsram_projection(sign_modmuls: int, verify_modmuls: int) -> None:
    """Project the measured multiplication counts onto the ModSRAM macro."""
    scheduler = PointOperationScheduler(PAPER_CONFIG)
    cycles_per_mul = PAPER_CONFIG.expected_iteration_cycles
    frequency_khz = PAPER_CONFIG.frequency_mhz * 1e3

    rows = []
    for name, modmuls in (("sign", sign_modmuls), ("verify", verify_modmuls)):
        cycles = modmuls * cycles_per_mul
        rows.append((name, modmuls, cycles, round(cycles / frequency_khz, 3)))
    print(render_table(
        ("operation", "multiplications", "ModSRAM cycles", "latency (ms)"),
        rows,
        title="Projection onto one ModSRAM macro (767 cycles per multiplication)",
    ))
    print()
    scalar_cycles = scheduler.scalar_multiplication_cycles(256)
    print("Scheduler cross-check: one 256-bit scalar multiplication scheduled as")
    print(f"  point operations on the macro = {scalar_cycles:,} cycles "
          f"({scalar_cycles / frequency_khz:.2f} ms), which brackets the measured "
          "sign latency above (one scalar multiplication plus field overhead).")


def main() -> None:
    sign_modmuls, verify_modmuls = measured_workload()
    modsram_projection(sign_modmuls, verify_modmuls)


if __name__ == "__main__":
    main()
