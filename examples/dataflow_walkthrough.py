#!/usr/bin/env python3
"""The Figure 3 walk-through: one R4CSA-LUT iteration, cycle by cycle.

Figure 3 of the paper illustrates the first iteration of a 5-bit modular
multiplication flowing through ModSRAM: the multiplier is latched, the
radix-4 LUT row is selected, the logic-SA produces XOR3/MAJ, the results are
shifted and written back, and the overflow LUT row is folded in.  This
example regenerates that walk-through from the cycle-accurate model for an
8-bit multiplication (the smallest size the configuration validator allows),
printing every cycle's word-line activity, and then shows the same schedule
at 256 bits in summarised form.

Run with ``python examples/dataflow_walkthrough.py``.
"""

from __future__ import annotations

from repro.ecc import CURVE_SPECS
from repro.modsram import ModSRAMAccelerator, ModSRAMConfig, PAPER_CONFIG, Phase


def small_walkthrough() -> None:
    config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(8)
    accelerator = ModSRAMAccelerator(config, trace=True)
    a, b, modulus = 0b0010101, 0b0010010, 0b11111001  # the paper's A/B pattern, 8-bit
    result = accelerator.multiply(a, b, modulus)
    assert result.product == (a * b) % modulus

    print(f"8-bit walk-through: A={a:#010b}, B={b:#010b}, p={modulus:#010b}")
    print(f"memory map: {accelerator.memory_map.describe()}")
    print()
    print("cycle-by-cycle trace (operand load + LUT fill + first two iterations):")
    events = [event for event in result.trace.events if event.cycle < 45]
    for event in events:
        print("  " + event.describe())
    print(f"  ... ({len(result.trace) - len(events)} more cycles)")
    print()
    print(f"main-loop cycles: {result.report.iteration_cycles} "
          f"(= 6 x {result.report.iterations} iterations - 1)")
    print(f"result: {result.product:#x}")
    print()


def paper_scale_summary() -> None:
    accelerator = ModSRAMAccelerator(PAPER_CONFIG, trace=True)
    modulus = CURVE_SPECS["bn254"].field_modulus
    a = (modulus * 2) // 5
    b = (modulus * 3) // 7
    result = accelerator.multiply(a, b, modulus)
    assert result.product == (a * b) % modulus

    histogram = result.trace.phase_histogram()
    print("256-bit multiplication, schedule summary (cycles per phase):")
    for phase in Phase:
        if phase.value in histogram:
            print(f"  {phase.value:18s} {histogram[phase.value]:5d}")
    print(f"  {'main loop total':18s} {result.report.iteration_cycles:5d}  (paper: 767)")
    print(f"  logic-SA accesses  {result.trace.compute_access_count():5d}  "
          "(two per iteration: radix-4 LUT + overflow LUT)")


def main() -> None:
    small_walkthrough()
    paper_scale_summary()


if __name__ == "__main__":
    main()
