#!/usr/bin/env python3
"""Serving quickstart: build a workload graph, submit it, await the result.

Demonstrates the Workload Graph API and the async serving layer:

1. a dependency-aware workload graph (batch-inversion product tree) and
   what its structure buys on a multi-macro chip,
2. an async server with per-tenant clients, deadline-aware batching and
   admission control,
3. graph submission end to end — build graph, submit, await the product,
4. the server's metrics: throughput, latency percentiles, batching and
   context-cache behaviour.

Run with ``python examples/serving_quickstart.py``.
"""

from __future__ import annotations

import asyncio
import random

from repro.modsram import ChipScheduler
from repro.service import Client, Server, ServerConfig
from repro.workloads import ecdsa_sign_graph, product_tree_graph


def graph_structure() -> None:
    # ------------------------------------------------------------------ #
    # 1. Dependency structure is schedulable parallelism.
    # ------------------------------------------------------------------ #
    graph = ecdsa_sign_graph(scalar_bits=64, signatures=2)
    print("ecdsa_sign_graph(64, signatures=2)")
    print(f"  nodes={len(graph)}, depth={graph.depth}, width={graph.width}, "
          f"avg parallelism={graph.parallelism:.1f}")

    scheduler = ChipScheduler(macros=4)
    aware = scheduler.schedule_graph(graph)
    flat = scheduler.schedule_graph(graph.linearized())
    print(f"  4-macro chip: graph-aware makespan {aware.makespan_cycles} cyc "
          f"(utilization {aware.utilization:.2f})")
    print(f"  flat-stream  makespan {flat.makespan_cycles} cyc "
          f"(utilization {flat.utilization:.2f}) -> "
          f"{flat.makespan_cycles / aware.makespan_cycles:.1f}x win")
    print()


async def serve() -> None:
    # ------------------------------------------------------------------ #
    # 2. An async server; clients are tenant-scoped handles.
    # ------------------------------------------------------------------ #
    config = ServerConfig(max_batch=32, batch_window_ms=1.0)
    async with Server(backend="r4csa-lut", curve="bn254", config=config) as server:
        modulus = server.engine.default_modulus
        assert modulus is not None
        alice = Client(server, tenant="alice")
        bob = Client(server, tenant="bob", deadline_ms=250.0)
        rng = random.Random(7)

        # 3a. Single multiplications from two tenants coalesce into one
        #     engine batch behind the scenes.
        a, b = rng.randrange(modulus), rng.randrange(modulus)
        alice_response, bob_response = await asyncio.gather(
            alice.multiply(a, b),
            bob.multiply(b, a),
        )
        print("concurrent multiplies")
        print(f"  alice: {alice_response.value % 1000}... "
              f"(rode a batch of {alice_response.batched_pairs} pairs)")
        print(f"  bob  : latency {bob_response.latency_ms:.2f} ms "
              f"(queued {bob_response.queue_ms:.2f} ms)")
        print()

        # 3b. Build graph -> submit -> await result.
        leaves = [rng.randrange(1, modulus) for _ in range(16)]
        tree = product_tree_graph(leaves)
        response = await alice.submit_graph(tree)
        reference = 1
        for leaf in leaves:
            reference = reference * leaf % modulus
        print("product-tree graph (batch-inversion kernel)")
        print(f"  {tree!r}")
        print(f"  served product == big-int reference: "
              f"{response.values == (reference,)}")
        print(f"  level-batched into {response.batched_pairs} node products")
        print()

        # ------------------------------------------------------------------ #
        # 4. Metrics: what the serving layer measured.
        # ------------------------------------------------------------------ #
        summary = server.metrics_summary()
        print("server metrics")
        print(f"  completed     : {summary['completed_requests']} requests, "
              f"{summary['completed_multiplications']} multiplications")
        print(f"  batching      : {summary['batches']} engine batches, "
              f"mean {summary['mean_batch_size']:.1f} pairs")
        latency = summary["latency"]
        print(f"  latency       : p50 {latency['p50_ms']:.2f} ms, "
              f"p95 {latency['p95_ms']:.2f} ms")
        cache = summary["context_cache"]
        print(f"  context cache : {cache['hits']} hits, "
              f"{cache['misses']} misses "
              f"(hit rate {cache['hit_rate']:.2f})")


def main() -> None:
    graph_structure()
    asyncio.run(serve())


if __name__ == "__main__":
    main()
