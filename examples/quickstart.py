#!/usr/bin/env python3
"""Quickstart: multiply two 256-bit numbers the ModSRAM way.

Demonstrates the three levels of the library:

1. the R4CSA-LUT algorithm as a drop-in modular multiplier,
2. the cycle-accurate ModSRAM accelerator model (767 cycles at 256 bits),
3. the headline comparison against the prior-work PIM baselines.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import random

from repro import R4CSALutMultiplier, SchoolbookMultiplier
from repro.analysis import render_table
from repro.baselines import get_design
from repro.ecc import CURVE_SPECS
from repro.modsram import ModSRAMAccelerator, PAPER_CONFIG


def main() -> None:
    rng = random.Random(2024)
    modulus = CURVE_SPECS["bn254"].field_modulus
    a = rng.randrange(modulus)
    b = rng.randrange(modulus)

    # ------------------------------------------------------------------ #
    # 1. The algorithm (software reference).
    # ------------------------------------------------------------------ #
    algorithm = R4CSALutMultiplier()
    oracle = SchoolbookMultiplier()
    product = algorithm.multiply(a, b, modulus)
    assert product == oracle.multiply(a, b, modulus)
    print("R4CSA-LUT (Algorithm 3)")
    print(f"  a       = {a:#x}")
    print(f"  b       = {b:#x}")
    print(f"  a*b mod p = {product:#x}")
    print(f"  iterations={algorithm.stats.iterations}, "
          f"carry-save additions={algorithm.stats.carry_save_additions}, "
          f"full additions={algorithm.stats.full_additions}")
    print()

    # ------------------------------------------------------------------ #
    # 2. The hardware (cycle-accurate model of the 64x256 macro).
    # ------------------------------------------------------------------ #
    accelerator = ModSRAMAccelerator(PAPER_CONFIG)
    result = accelerator.multiply(a, b, modulus)
    assert result.product == product
    report = result.report
    print("ModSRAM accelerator (cycle-accurate model, paper configuration)")
    print(f"  main-loop cycles : {report.iteration_cycles}  (paper: 767)")
    print(f"  total cycles     : {report.total_cycles} "
          f"(load {report.load_cycles}, LUT precompute {report.precompute_cycles}, "
          f"finalise {report.finalize_cycles})")
    print(f"  clock            : {report.frequency_mhz:.1f} MHz  (paper: 420 MHz)")
    print(f"  latency          : {report.latency_us:.2f} us per multiplication")
    print(f"  energy           : {accelerator.energy_report().total_pj:.1f} pJ (modelled)")
    print()

    # ------------------------------------------------------------------ #
    # 3. The comparison (Table 3 headline).
    # ------------------------------------------------------------------ #
    rows = []
    for key in ("modsram", "mentt", "bpntt"):
        design = get_design(key)
        rows.append(
            (
                design.label,
                design.cycles(256),
                f"{design.frequency_mhz:g}",
                design.area_mm2,
            )
        )
    print(render_table(("design", "cycles @256b", "freq (MHz)", "area (mm^2)"), rows,
                       title="Cycles per 256-bit modular multiplication"))
    reduction = 100.0 * (1 - 767 / 1465)
    print(f"\nModSRAM needs {reduction:.1f}% fewer cycles than the best prior "
          "SRAM PIM with a published cycle count (BP-NTT), and ~99% fewer than MeNTT.")


if __name__ == "__main__":
    main()
