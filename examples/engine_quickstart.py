#!/usr/bin/env python3
"""Engine quickstart: one entry point for every arithmetic backend.

Demonstrates the unified Engine API introduced by the API redesign:

1. single multiplications with capability metadata and modeled cycles,
2. batched execution against one cached per-modulus context,
3. the same calls routed through the cycle-accurate ModSRAM model,
4. engine-backed ECC and ZKP substrates (field, curve, NTT).

Run with ``python examples/engine_quickstart.py``.
"""

from __future__ import annotations

import random
import time

from repro.engine import Engine, available_backends, get_backend


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. One multiplication, any backend.
    # ------------------------------------------------------------------ #
    engine = Engine(backend="r4csa-lut", curve="bn254")
    modulus = engine.default_modulus
    rng = random.Random(2024)
    a, b = rng.randrange(modulus), rng.randrange(modulus)

    result = engine.multiply(a, b)
    print("Engine(backend='r4csa-lut', curve='bn254')")
    print(f"  a*b mod p      = {result.value:#x}")
    print(f"  modeled cycles = {result.modeled_cycles} at {result.bitwidth} bits")
    print(f"  backend info   : {engine.info.kind}, "
          f"direct form: {engine.info.direct_form}, "
          f"cycle model: {engine.info.has_cycle_model}")
    print()

    # ------------------------------------------------------------------ #
    # 2. Batched execution: validate once, reuse one cached context.
    # ------------------------------------------------------------------ #
    pairs = [(rng.randrange(modulus), rng.randrange(modulus)) for _ in range(1024)]
    fast = Engine(backend="montgomery", curve="bn254")
    fast.multiply_batch(pairs[:1])  # warm the per-modulus context

    start = time.perf_counter()
    for x, y in pairs:
        fast.multiply(x, y)
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = fast.multiply_batch(pairs)
    batch_seconds = time.perf_counter() - start

    print("Batched execution (montgomery backend, 2^10 pairs, 254-bit operands)")
    print(f"  per-call loop   : {loop_seconds * 1e3:7.2f} ms")
    print(f"  multiply_batch  : {batch_seconds * 1e3:7.2f} ms "
          f"({loop_seconds / batch_seconds:.1f}x faster)")
    print(f"  precomputations : {batch.stats.precomputations} in the batch "
          "(constants were cached before it started)")
    print(f"  context cache   : {fast.cache_stats.as_dict()}")
    print()

    # ------------------------------------------------------------------ #
    # 3. The same API on the cycle-accurate hardware model.
    # ------------------------------------------------------------------ #
    hardware = Engine(backend="modsram", curve="bn254")
    hw_result = hardware.multiply(a, b)
    assert hw_result.value == result.value
    report = hardware.context().multiplier.reports[-1]
    print("Engine(backend='modsram'): cycle-accurate 8T-SRAM model")
    print(f"  main-loop cycles: {report.iteration_cycles}  (paper: 767)")
    print(f"  latency         : {report.latency_us:.2f} us "
          f"at {report.frequency_mhz:.0f} MHz")
    print()

    # ------------------------------------------------------------------ #
    # 4. Engine-backed application substrates.
    # ------------------------------------------------------------------ #
    ntt = engine.ntt(8)  # BN254 scalar field (NTT friendly) by default
    coefficients = [rng.randrange(ntt.modulus) for _ in range(8)]
    assert ntt.inverse(ntt.forward(coefficients)) == coefficients
    curve = engine.curve()
    print("Application substrates routed through the same cached contexts")
    print(f"  ntt            : size {ntt.size} over {ntt.modulus:#x}")
    print(f"  curve          : {curve.name}, "
          f"field backend {curve.field.multiplier.name!r}")
    print(f"  engine stats   : {engine.stats().multiplications} backend "
          "multiplications so far")
    print()

    names = available_backends()
    kinds = {name: get_backend(name).info.kind for name in names}
    print(f"{len(names)} registered backends: "
          + ", ".join(f"{name} ({kinds[name]})" for name in names))


if __name__ == "__main__":
    main()
