"""Figure 7: operation counts of the ZKP components (NTT, MSM).

Regenerates the operation counts at the paper's operating point (2^15
elements, 256-bit operands) from the closed-form models, validates the NTT
model against the instrumented implementation, and measures the instrumented
kernels at small sizes.
"""

from __future__ import annotations

import random

from repro.analysis import measure_ntt_counts, reproduce_figure7
from repro.ecc import get_curve, scalar_multiply
from repro.ecc.curves_data import CURVE_SPECS
from repro.zkp import NttContext, msm_pippenger, ntt_operation_counts


def test_figure7_operating_point(benchmark):
    """The paper's Figure 7 point: NTT vs MSM at 2^15 / 256-bit."""
    result = benchmark(reproduce_figure7)
    ntt = result.ntt
    msm = result.msm
    assert ntt.modular_multiplications == 245760
    assert 1e7 < msm.modular_multiplications < 1e8
    assert msm.register_writes > msm.memory_accesses > msm.modular_multiplications
    assert msm.modular_multiplications > 100 * ntt.modular_multiplications
    print()
    print(result.render())


def test_figure7_ntt_model_validation(benchmark):
    """The closed-form NTT model equals the instrumented transform (N=512)."""
    measured = benchmark.pedantic(measure_ntt_counts, args=(512,), rounds=1, iterations=1)
    model = ntt_operation_counts(vector_size=512, bitwidth=254)
    assert measured["modular_multiplication"] == model.modular_multiplications
    assert measured["memory_access"] == model.memory_accesses
    assert measured["register_writes"] == model.register_writes


def test_figure7_instrumented_ntt_throughput(benchmark):
    """Forward NTT of 1024 points over the BN254 scalar field (measured)."""
    modulus = CURVE_SPECS["bn254"].scalar_field_modulus
    context = NttContext(modulus, 1024)
    rng = random.Random(3)
    values = [rng.randrange(modulus) for _ in range(1024)]
    result = benchmark.pedantic(context.forward, args=(values,), rounds=1, iterations=1)
    assert len(result) == 1024


def test_figure7_instrumented_msm(benchmark):
    """Pippenger MSM of 32 secp256k1 points with 64-bit scalars (measured)."""
    curve = get_curve("secp256k1")
    rng = random.Random(9)
    points = [
        scalar_multiply(curve, rng.randrange(3, 1 << 62), curve.generator)
        for _ in range(32)
    ]
    scalars = [rng.randrange(1, 1 << 64) for _ in range(32)]

    def run():
        return msm_pippenger(curve, scalars, points, window_bits=6)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert curve.contains(result)
