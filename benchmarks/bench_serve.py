"""Workload-graph scheduling win and async serving throughput, machine-readable.

Three claims of the Workload Graph API + serving layer, measured and
emitted as ``BENCH_serve.json``:

1. **Graph-aware beats flat-stream scheduling** — a flat stream carries no
   dependency information, so the only schedule that is always correct for
   a dependent request is sequential (the ``linearized()`` chain).  The
   graph-aware scheduler sees the real DAG and dispatches ready fronts
   across macros: on a depth-limited workload (2^10-point NTT; batched
   ECDSA signing) at >= 4 macros it must achieve strictly lower makespan
   and strictly higher macro utilization than the dependency-honoring
   flat-stream baseline.

2. **Bit-identical products** — executing an operand-carrying graph
   (a 128-leaf product tree, the batch-inversion kernel) on a 4-macro
   :class:`Chip` graph-aware yields exactly the products of the serial
   chain execution and of the big-int reference, while finishing in a
   fraction of the chain's makespan.

3. **Async serving layer** — the in-process server sustains the quick-mode
   multi-tenant traffic mix with every product verified; its
   throughput/latency metrics land in the JSON for trend tracking.

Run as a pytest benchmark (``pytest benchmarks/bench_serve.py``) or
directly (``python benchmarks/bench_serve.py``); both write the JSON next
to the repository root (override with ``BENCH_OUTPUT_SERVE``).
"""

from __future__ import annotations

import json
import os
import random

from repro.modsram import Chip, ChipScheduler, ModSRAMConfig
from repro.service import run_self_test
from repro.workloads import ecdsa_sign_graph, ntt_graph, product_tree_graph

#: Macro counts the scheduling comparison runs at (the claim is >= 4).
MACRO_COUNTS = (4, 8)
#: Minimum graph-over-flat makespan speedup required at 4 macros.
REQUIRED_SPEEDUP = 2.0


def _output_path() -> str:
    override = os.environ.get("BENCH_OUTPUT_SERVE")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_serve.json")


def collect_graph_vs_flat() -> dict:
    """Graph-aware versus flat-stream scheduling on depth-limited DAGs."""
    workloads = {
        "ntt-1024": ntt_graph(1024),
        "ecdsa-sign-4x64": ecdsa_sign_graph(64, signatures=4),
    }
    payload = {}
    for name, graph in workloads.items():
        chain = graph.linearized()
        entry = {"graph": graph.as_dict(), "points": []}
        for macros in MACRO_COUNTS:
            scheduler = ChipScheduler(macros)
            aware = scheduler.schedule_graph(graph)
            flat = scheduler.schedule_graph(chain)
            entry["points"].append(
                {
                    "macros": macros,
                    "graph_makespan_cycles": aware.makespan_cycles,
                    "flat_makespan_cycles": flat.makespan_cycles,
                    "graph_utilization": aware.utilization,
                    "flat_utilization": flat.utilization,
                    "graph_lut_reuse_rate": aware.lut_reuse_rate,
                    "critical_path_cycles": aware.critical_path_cycles,
                    "speedup": flat.makespan_cycles / aware.makespan_cycles,
                }
            )
        payload[name] = entry
    return payload


def collect_bit_identical() -> dict:
    """Product-tree execution on a real chip: graph-aware == serial chain."""
    rng = random.Random(0xD5EAF)
    modulus = 65521
    leaves = [rng.randrange(1, modulus) for _ in range(128)]
    graph = product_tree_graph(leaves)

    reference = 1
    for leaf in leaves:
        reference = reference * leaf % modulus

    config = ModSRAMConfig().with_bitwidth(16)
    aware_run = Chip(4, config).run_graph(graph, modulus)
    chain_run = Chip(4, config).run_graph(graph.linearized(), modulus)

    return {
        "workload": "product-tree[128] (batch-inversion kernel)",
        "modulus": modulus,
        "reference_product": reference,
        "graph_results": list(aware_run.results),
        "chain_results": list(chain_run.results),
        "products_identical": aware_run.values == chain_run.values,
        "matches_reference": aware_run.results == (reference,),
        "graph_makespan_cycles": aware_run.schedule.makespan_cycles,
        "chain_makespan_cycles": chain_run.schedule.makespan_cycles,
        "graph_utilization": aware_run.schedule.utilization,
        "chain_utilization": chain_run.schedule.utilization,
    }


def collect_serving() -> dict:
    """Quick-mode async serving traffic: throughput and latency report."""
    return run_self_test(quick=True, backend="montgomery")


def write_payload(payload: dict) -> str:
    path = _output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def run_benchmark() -> dict:
    payload = {
        "benchmark": "serve",
        "graph_vs_flat": collect_graph_vs_flat(),
        "bit_identical": collect_bit_identical(),
        "serving": collect_serving(),
    }
    path = write_payload(payload)
    payload["output"] = path
    return payload


def test_graph_scheduling_beats_flat_with_identical_products():
    """Acceptance: graph-aware dispatch wins at >= 4 macros, bit-identically."""
    payload = run_benchmark()

    for name, entry in payload["graph_vs_flat"].items():
        for point in entry["points"]:
            macros = point["macros"]
            print(
                f"{name} @ {macros} macros: graph "
                f"{point['graph_makespan_cycles']} cyc "
                f"(util {point['graph_utilization']:.3f}) vs flat "
                f"{point['flat_makespan_cycles']} cyc "
                f"(util {point['flat_utilization']:.3f}) "
                f"=> {point['speedup']:.2f}x"
            )
            assert point["graph_makespan_cycles"] < point["flat_makespan_cycles"], (
                f"{name} at {macros} macros: graph-aware makespan must beat "
                "the flat-stream schedule"
            )
            assert point["graph_utilization"] > point["flat_utilization"], (
                f"{name} at {macros} macros: graph-aware utilization must "
                "beat the flat-stream schedule"
            )
            if macros == 4:
                assert point["speedup"] >= REQUIRED_SPEEDUP, (
                    f"{name}: expected >= {REQUIRED_SPEEDUP}x at 4 macros, "
                    f"got {point['speedup']:.2f}x"
                )

    identical = payload["bit_identical"]
    assert identical["products_identical"], "graph execution changed products"
    assert identical["matches_reference"], "products disagree with big-int"
    assert (
        identical["graph_makespan_cycles"] < identical["chain_makespan_cycles"]
    ), "graph-aware chip execution must finish before the serial chain"

    serving = payload["serving"]
    assert serving["failed_requests"] == 0
    assert serving["verified_requests"] == serving["completed_requests"]
    assert serving["requests_per_second"] > 0
    print(
        f"serving: {serving['requests_per_second']:.0f} req/s, "
        f"p95 {serving['latency']['p95_ms']:.2f} ms, "
        f"mean batch {serving['mean_batch_size']:.1f} pairs"
    )
    print(f"benchmark JSON written to {payload['output']}")


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
