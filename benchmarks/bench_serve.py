"""Workload-graph scheduling win and async serving throughput, machine-readable.

Three claims of the Workload Graph API + serving layer, measured and
emitted as ``BENCH_serve.json``:

1. **Graph-aware beats flat-stream scheduling** — a flat stream carries no
   dependency information, so the only schedule that is always correct for
   a dependent request is sequential (the ``linearized()`` chain).  The
   graph-aware scheduler sees the real DAG and dispatches ready fronts
   across macros: on a depth-limited workload (2^10-point NTT; batched
   ECDSA signing) at >= 4 macros it must achieve strictly lower makespan
   and strictly higher macro utilization than the dependency-honoring
   flat-stream baseline.

2. **Bit-identical products** — executing an operand-carrying graph
   (a 128-leaf product tree, the batch-inversion kernel) on a 4-macro
   :class:`Chip` graph-aware yields exactly the products of the serial
   chain execution and of the big-int reference, while finishing in a
   fraction of the chain's makespan.

3. **Async serving layer** — the in-process server sustains the quick-mode
   multi-tenant traffic mix with every product verified; its
   throughput/latency metrics land in the JSON for trend tracking.

4. **Sharded pool executor escapes the GIL** — the same deterministic
   multi-modulus workload runs once on the classic
   :class:`~repro.service.executor.InlineExecutor` (one core, however
   many chips we simulate) and once on a 4-worker
   :class:`~repro.service.pool.PoolExecutor`.  Products must be
   bit-identical request by request; on a multi-core runner (>= 4 CPUs,
   e.g. CI) pool throughput must additionally be >= 1.8x inline.

Run as a pytest benchmark (``pytest benchmarks/bench_serve.py``) or
directly (``python benchmarks/bench_serve.py``); both write the JSON next
to the repository root (override with ``BENCH_OUTPUT_SERVE``).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time

from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram import Chip, ChipScheduler, ModSRAMConfig
from repro.service import Server, ServerConfig, run_self_test
from repro.workloads import ecdsa_sign_graph, ntt_graph, product_tree_graph

#: Macro counts the scheduling comparison runs at (the claim is >= 4).
MACRO_COUNTS = (4, 8)
#: Minimum graph-over-flat makespan speedup required at 4 macros.
REQUIRED_SPEEDUP = 2.0
#: Pool size of the executor-scaling comparison.
POOL_WORKERS = 4
#: Minimum pool-over-inline serving throughput on a multi-core runner.
REQUIRED_POOL_SPEEDUP = 1.8
#: Scaling traffic: requests x pairs of 254/255/256-bit multiplications
#: on the r4csa-lut backend (heavy enough that compute, not IPC,
#: dominates each shipped batch).
SCALING_REQUESTS = 96
SCALING_PAIRS = 16


def _output_path() -> str:
    override = os.environ.get("BENCH_OUTPUT_SERVE")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_serve.json")


def collect_graph_vs_flat() -> dict:
    """Graph-aware versus flat-stream scheduling on depth-limited DAGs."""
    workloads = {
        "ntt-1024": ntt_graph(1024),
        "ecdsa-sign-4x64": ecdsa_sign_graph(64, signatures=4),
    }
    payload = {}
    for name, graph in workloads.items():
        chain = graph.linearized()
        entry = {"graph": graph.as_dict(), "points": []}
        for macros in MACRO_COUNTS:
            scheduler = ChipScheduler(macros)
            aware = scheduler.schedule_graph(graph)
            flat = scheduler.schedule_graph(chain)
            entry["points"].append(
                {
                    "macros": macros,
                    "graph_makespan_cycles": aware.makespan_cycles,
                    "flat_makespan_cycles": flat.makespan_cycles,
                    "graph_utilization": aware.utilization,
                    "flat_utilization": flat.utilization,
                    "graph_lut_reuse_rate": aware.lut_reuse_rate,
                    "critical_path_cycles": aware.critical_path_cycles,
                    "speedup": flat.makespan_cycles / aware.makespan_cycles,
                }
            )
        payload[name] = entry
    return payload


def collect_bit_identical() -> dict:
    """Product-tree execution on a real chip: graph-aware == serial chain."""
    rng = random.Random(0xD5EAF)
    modulus = 65521
    leaves = [rng.randrange(1, modulus) for _ in range(128)]
    graph = product_tree_graph(leaves)

    reference = 1
    for leaf in leaves:
        reference = reference * leaf % modulus

    config = ModSRAMConfig().with_bitwidth(16)
    aware_run = Chip(4, config).run_graph(graph, modulus)
    chain_run = Chip(4, config).run_graph(graph.linearized(), modulus)

    return {
        "workload": "product-tree[128] (batch-inversion kernel)",
        "modulus": modulus,
        "reference_product": reference,
        "graph_results": list(aware_run.results),
        "chain_results": list(chain_run.results),
        "products_identical": aware_run.values == chain_run.values,
        "matches_reference": aware_run.results == (reference,),
        "graph_makespan_cycles": aware_run.schedule.makespan_cycles,
        "chain_makespan_cycles": chain_run.schedule.makespan_cycles,
        "graph_utilization": aware_run.schedule.utilization,
        "chain_utilization": chain_run.schedule.utilization,
    }


def collect_serving() -> dict:
    """Quick-mode async serving traffic: throughput and latency report."""
    return run_self_test(quick=True, backend="montgomery")


def _scaling_traffic() -> list:
    """Deterministic multi-modulus request list for the executor race.

    Four moduli so stable hashing spreads home shards (with spill
    balancing the residue), seeded operands so both executors see the
    exact same work.
    """
    moduli = [
        CURVE_SPECS["bn254"].field_modulus,
        CURVE_SPECS["secp256k1"].field_modulus,
        CURVE_SPECS["p256"].field_modulus,
        (1 << 255) - 19,
    ]
    rng = random.Random(0x5EED)
    requests = []
    for index in range(SCALING_REQUESTS):
        modulus = moduli[index % len(moduli)]
        pairs = tuple(
            (rng.randrange(modulus), rng.randrange(modulus))
            for _ in range(SCALING_PAIRS)
        )
        requests.append((modulus, pairs))
    return requests


async def _drive_scaling(server, requests) -> tuple:
    """Submit the traffic concurrently; time only the traffic itself."""
    for modulus in dict.fromkeys(modulus for modulus, _ in requests):
        await server.multiply_batch([(1, 1)], modulus=modulus)  # warm context
    started = time.perf_counter()
    responses = await asyncio.gather(*(
        server.multiply_batch(list(pairs), modulus=modulus)
        for modulus, pairs in requests
    ))
    elapsed = time.perf_counter() - started
    return [list(response.values) for response in responses], elapsed


def collect_executor_scaling() -> dict:
    """Inline vs 4-worker pool on identical traffic: parity + throughput."""
    requests = _scaling_traffic()
    config = ServerConfig(
        max_batch=8 * SCALING_PAIRS,
        batch_window_ms=0.0,
        max_pending=8192,
        max_pending_per_tenant=8192,
    )

    async def run_inline():
        async with Server(backend="r4csa-lut", config=config) as server:
            return await _drive_scaling(server, requests)

    async def run_pool():
        async with Server(
            backend="r4csa-lut", config=config, workers=POOL_WORKERS
        ) as server:
            values, elapsed = await _drive_scaling(server, requests)
            return values, elapsed, server.executor.describe()

    inline_values, inline_s = asyncio.run(run_inline())
    pool_values, pool_s, pool_rollup = asyncio.run(run_pool())
    multiplications = sum(len(pairs) for _, pairs in requests)
    return {
        "workload": (
            f"{SCALING_REQUESTS} requests x {SCALING_PAIRS} pairs, "
            "4 moduli, r4csa-lut"
        ),
        "requests": SCALING_REQUESTS,
        "multiplications": multiplications,
        "workers": POOL_WORKERS,
        "cpu_count": os.cpu_count(),
        "inline_seconds": inline_s,
        "pool_seconds": pool_s,
        "inline_requests_per_second": SCALING_REQUESTS / inline_s,
        "pool_requests_per_second": SCALING_REQUESTS / pool_s,
        "inline_mul_per_second": multiplications / inline_s,
        "pool_mul_per_second": multiplications / pool_s,
        "speedup": inline_s / pool_s,
        "products_identical": inline_values == pool_values,
        "pool": {
            key: pool_rollup[key]
            for key in (
                "jobs", "pairs", "spilled_jobs", "retried_jobs",
                "worker_restarts", "mean_utilization", "cache",
            )
        },
    }


def write_payload(payload: dict) -> str:
    path = _output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def run_benchmark() -> dict:
    payload = {
        "benchmark": "serve",
        "graph_vs_flat": collect_graph_vs_flat(),
        "bit_identical": collect_bit_identical(),
        "serving": collect_serving(),
        "executor_scaling": collect_executor_scaling(),
    }
    path = write_payload(payload)
    payload["output"] = path
    return payload


#: One run shared by every test in the module (the collection is the
#: expensive part; the assertions are cheap).
_PAYLOAD: dict = {}


def _payload() -> dict:
    if not _PAYLOAD:
        _PAYLOAD.update(run_benchmark())
    return _PAYLOAD


def test_graph_scheduling_beats_flat_with_identical_products():
    """Acceptance: graph-aware dispatch wins at >= 4 macros, bit-identically."""
    payload = _payload()

    for name, entry in payload["graph_vs_flat"].items():
        for point in entry["points"]:
            macros = point["macros"]
            print(
                f"{name} @ {macros} macros: graph "
                f"{point['graph_makespan_cycles']} cyc "
                f"(util {point['graph_utilization']:.3f}) vs flat "
                f"{point['flat_makespan_cycles']} cyc "
                f"(util {point['flat_utilization']:.3f}) "
                f"=> {point['speedup']:.2f}x"
            )
            assert point["graph_makespan_cycles"] < point["flat_makespan_cycles"], (
                f"{name} at {macros} macros: graph-aware makespan must beat "
                "the flat-stream schedule"
            )
            assert point["graph_utilization"] > point["flat_utilization"], (
                f"{name} at {macros} macros: graph-aware utilization must "
                "beat the flat-stream schedule"
            )
            if macros == 4:
                assert point["speedup"] >= REQUIRED_SPEEDUP, (
                    f"{name}: expected >= {REQUIRED_SPEEDUP}x at 4 macros, "
                    f"got {point['speedup']:.2f}x"
                )

    identical = payload["bit_identical"]
    assert identical["products_identical"], "graph execution changed products"
    assert identical["matches_reference"], "products disagree with big-int"
    assert (
        identical["graph_makespan_cycles"] < identical["chain_makespan_cycles"]
    ), "graph-aware chip execution must finish before the serial chain"

    serving = payload["serving"]
    assert serving["failed_requests"] == 0
    assert serving["verified_requests"] == serving["completed_requests"]
    assert serving["requests_per_second"] > 0
    print(
        f"serving: {serving['requests_per_second']:.0f} req/s, "
        f"p95 {serving['latency']['p95_ms']:.2f} ms, "
        f"mean batch {serving['mean_batch_size']:.1f} pairs"
    )
    print(f"benchmark JSON written to {payload['output']}")


def test_pool_executor_parity_and_scaling():
    """Acceptance: pool serving is bit-identical, and faster on many cores.

    Parity is asserted unconditionally.  The >= 1.8x throughput claim
    holds on the multi-core CI runner; on fewer than 4 CPUs four
    processes cannot beat one, so the speedup is recorded in the JSON but
    not asserted (force the assertion either way with
    ``BENCH_SERVE_REQUIRE_SCALING=1``).
    """
    scaling = _payload()["executor_scaling"]
    print(
        f"executor scaling: inline {scaling['inline_mul_per_second']:.0f} "
        f"mul/s vs pool({scaling['workers']}) "
        f"{scaling['pool_mul_per_second']:.0f} mul/s "
        f"=> {scaling['speedup']:.2f}x on {scaling['cpu_count']} CPUs "
        f"({scaling['pool']['spilled_jobs']} spills, mean utilization "
        f"{scaling['pool']['mean_utilization']:.2f})"
    )
    assert scaling["products_identical"], (
        "pool and inline executors must produce bit-identical products"
    )
    assert scaling["pool"]["worker_restarts"] == 0, (
        "pool workers crashed during the scaling run"
    )
    require = os.environ.get("BENCH_SERVE_REQUIRE_SCALING")
    multicore = (os.cpu_count() or 1) >= POOL_WORKERS
    if require == "1" or (require is None and multicore):
        assert scaling["speedup"] >= REQUIRED_POOL_SPEEDUP, (
            f"expected >= {REQUIRED_POOL_SPEEDUP}x pool-over-inline serving "
            f"throughput at {POOL_WORKERS} workers, got "
            f"{scaling['speedup']:.2f}x"
        )
    else:
        print(
            f"(speedup assertion skipped: {os.cpu_count()} CPU(s) < "
            f"{POOL_WORKERS} workers)"
        )


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
