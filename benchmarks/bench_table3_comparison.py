"""Table 3: comparison of modular multiplication across PIM designs.

Regenerates every row of the paper's Table 3 from the library's models
(including a measured ModSRAM cycle count from the cycle-accurate model) and
checks the headline cycle-reduction claims.
"""

from __future__ import annotations

from repro.analysis import reproduce_table3
from repro.analysis.table3 import PAPER_TABLE3_CYCLES


def test_table3_rows(benchmark):
    """All six design rows with the paper's scaled cycle counts."""
    result = benchmark(reproduce_table3)
    for key, paper_cycles in PAPER_TABLE3_CYCLES.items():
        assert result.rows_by_design[key]["cycles"] == paper_cycles
    assert result.rows_by_design["modsram"]["area_mm2"] < 0.06
    assert result.rows_by_design["mentt"]["area_mm2"] == 0.36
    print()
    print(result.render())


def test_table3_with_measured_modsram_cycles(benchmark):
    """One real 256-bit multiplication on the cycle-accurate model (767 cycles)."""
    result = benchmark.pedantic(reproduce_table3, kwargs={"measure": True}, rounds=1, iterations=1)
    assert result.measured_modsram_cycles == 767


def test_table3_cycle_reduction_claims(benchmark):
    """52%-class reduction vs the best prior work, ~99% vs bit-serial MeNTT."""
    result = benchmark(reproduce_table3)
    assert result.cycle_reduction_vs("mentt") > 98.0
    assert 45.0 < result.best_prior_cycle_reduction() < 50.0
    assert 50.0 < result.cycle_reduction_vs("bpntt", include_transform=True) < 55.0


def test_table3_latency_comparison(benchmark):
    """Wall-clock latency per multiplication using each design's clock."""
    result = benchmark(reproduce_table3)
    rows = result.rows_by_design
    modsram_us = rows["modsram"]["cycles"] / rows["modsram"]["frequency_mhz"]
    mentt_us = rows["mentt"]["cycles"] / rows["mentt"]["frequency_mhz"]
    assert modsram_us < mentt_us / 100  # two orders of magnitude faster than MeNTT
