"""Software throughput of the modular-multiplication algorithm family.

Not a paper exhibit, but the comparison a library user wants before picking
a backend: how fast each algorithm implementation runs in Python for
256-bit ECC operands, and how the iteration structure (the thing the paper
optimises) shows up as work per call.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    BarrettMultiplier,
    CsaInterleavedMultiplier,
    InterleavedMultiplier,
    MontgomeryMultiplier,
    R4CSALutMultiplier,
    Radix4InterleavedMultiplier,
    SchoolbookMultiplier,
)

ALGORITHMS = (
    SchoolbookMultiplier,
    BarrettMultiplier,
    MontgomeryMultiplier,
    InterleavedMultiplier,
    Radix4InterleavedMultiplier,
    CsaInterleavedMultiplier,
    R4CSALutMultiplier,
)


@pytest.mark.parametrize("algorithm_cls", ALGORITHMS, ids=lambda cls: cls.name)
def test_algorithm_throughput_256_bit(benchmark, algorithm_cls, bn254_modulus):
    """Throughput of one 256-bit modular multiplication per algorithm."""
    rng = random.Random(17)
    multiplier = algorithm_cls()
    a = rng.randrange(bn254_modulus)
    b = rng.randrange(bn254_modulus)
    expected = (a * b) % bn254_modulus
    result = benchmark(multiplier.multiply, a, b, bn254_modulus)
    assert result == expected


def test_r4csa_lut_reuse_amortisation(benchmark, bn254_modulus):
    """Repeated multiplications with a shared multiplicand reuse the LUTs."""
    rng = random.Random(23)
    multiplier = R4CSALutMultiplier()
    b = rng.randrange(bn254_modulus)
    operands = [rng.randrange(bn254_modulus) for _ in range(16)]

    def run_batch():
        return [multiplier.multiply(a, b, bn254_modulus) for a in operands]

    results = benchmark(run_batch)
    assert results == [(a * b) % bn254_modulus for a in operands]
    # One precomputation serves the whole batch (and all benchmark rounds).
    assert multiplier.stats.precomputations == 1
