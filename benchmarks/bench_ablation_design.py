"""Ablation benchmarks for the design choices DESIGN.md calls out.

The paper's contribution is the *combination* of radix-4 encoding, carry-save
accumulation with an overflow LUT, and the in-SRAM logic-SA execution.  These
ablations separate the contributions:

* radix-4 versus radix-2 (how much the Booth encoder buys),
* carry-save versus carry-propagate (how much the CSA/LUT transform buys),
* full-range versus paper-mode scheduling (the cost of supporting
  secp256k1-style full-range moduli),
* sensing margin versus bitline noise (when the logic-SA scheme breaks),
* LUT reuse (the data-reuse argument of §5.2).
"""

from __future__ import annotations

import random

from repro.core.complexity import (
    cycles_csa_interleaved,
    cycles_interleaved,
    cycles_r4csa_lut,
    cycles_radix4_interleaved,
)
from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram import ModSRAMAccelerator, ModSRAMConfig, PAPER_CONFIG
from repro.sram import LogicSenseAmpModule, SenseAmpParameters


#: Cycle-time penalty of a design whose per-iteration additions propagate
#: carries across 256 bits (a full carry-propagate adder sits on the critical
#: path instead of the single-XOR3/MAJ array access).  A 256-bit adder is
#: several times slower than the logic-SA path; 3x is a conservative factor.
CARRY_PROPAGATE_CYCLE_PENALTY = 3.0


def test_ablation_radix_and_csa_contributions(benchmark):
    """Separate the gains of the radix-4 encoder and the CSA/LUT transform.

    Cycle *counts* favour the radix-4 carry-propagate design (fewer, slower
    cycles); once the carry-propagation penalty on the cycle time is applied,
    the combination the paper proposes wins on latency, and the radix-4
    encoder alone accounts for the 2x iteration reduction.
    """
    def evaluate():
        n = 256
        cycles = {
            "interleaved": cycles_interleaved(n),
            "radix4_only": cycles_radix4_interleaved(n),
            "csa_only": cycles_csa_interleaved(n),
            "r4csa_lut": cycles_r4csa_lut(n),
        }
        latency_units = {
            "interleaved": cycles["interleaved"] * CARRY_PROPAGATE_CYCLE_PENALTY,
            "radix4_only": cycles["radix4_only"] * CARRY_PROPAGATE_CYCLE_PENALTY,
            "csa_only": float(cycles["csa_only"]),
            "r4csa_lut": float(cycles["r4csa_lut"]),
        }
        return cycles, latency_units

    cycles, latency = benchmark(evaluate)
    # The radix-4 encoder halves the iteration count of the CSA design.
    assert cycles["r4csa_lut"] == 767
    assert cycles["csa_only"] / cycles["r4csa_lut"] > 1.9
    # The CSA/LUT transform removes the carry-propagation penalty, so the
    # combined design has the lowest latency even though the radix-4
    # carry-propagate design has fewer (slower) cycles.
    assert latency["r4csa_lut"] < latency["radix4_only"] < latency["interleaved"]
    assert latency["r4csa_lut"] < latency["csa_only"]
    print()
    print("cycles @256b:", cycles)
    print("latency (logic-SA cycle units) @256b:", latency)


def test_ablation_full_range_schedule_cost(benchmark):
    """Supporting full-range moduli (secp256k1) costs one extra iteration."""
    def evaluate():
        paper = PAPER_CONFIG.expected_iteration_cycles
        full = ModSRAMConfig().expected_iteration_cycles
        return paper, full

    paper_cycles, full_cycles = benchmark(evaluate)
    assert paper_cycles == 767
    assert full_cycles == 773
    assert full_cycles - paper_cycles == 6


def test_ablation_lut_reuse(benchmark):
    """Amortisation of LUT precomputation across a batch (data reuse, §5.2)."""
    modulus = 65521
    config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(16)
    accelerator = ModSRAMAccelerator(config)
    rng = random.Random(31)
    pairs = [(rng.randrange(1 << 15), 12345) for _ in range(8)]

    def run_batch():
        return accelerator.multiply_many(pairs, modulus)

    results = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    reused = [result.report.lut_reused for result in results]
    assert reused[0] is False and all(reused[1:])
    precompute = [result.report.precompute_cycles for result in results]
    assert precompute[0] > 0 and all(cycles == 0 for cycles in precompute[1:])


def test_ablation_sense_margin_versus_noise(benchmark):
    """Per-access failure probability of the logic-SA versus bitline noise."""
    def sweep():
        module = LogicSenseAmpModule(columns=256, parameters=SenseAmpParameters())
        return {
            sigma_mv: module.failure_probability(sigma_mv * 1e-3)
            for sigma_mv in (5, 15, 30, 45, 60)
        }

    probabilities = benchmark(sweep)
    values = [probabilities[s] for s in (5, 15, 30, 45, 60)]
    assert values == sorted(values)
    assert probabilities[5] < 1e-80   # essentially never at nominal noise
    assert probabilities[60] > 1e-3   # clearly broken at 60 mV sigma


def test_ablation_array_geometry(benchmark):
    """Bigger arrays amortise the IMC/NMC overhead over more storage."""
    from repro.modsram import AreaModel

    def sweep():
        return {
            rows: AreaModel(ModSRAMConfig(rows=rows)).overhead_percent()
            for rows in (32, 64, 128)
        }

    overheads = benchmark(sweep)
    assert overheads[32] > overheads[64] > overheads[128]
