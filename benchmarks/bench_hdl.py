"""HDL co-simulation tier: agreement and cost, machine-readable.

Emits ``BENCH_hdl.json`` with three sections:

1. **agreement** — the cycle-agreement table across a geometry sweep:
   for each bitwidth the same operand stream runs through the
   event-driven RTL simulator, the cycle-accurate tier and the
   analytical model; products must be bit-identical and the per-phase
   cycle reports equal field by field (asserted unconditionally — this
   is the whole point of the tier).
2. **paper_point** — the paper's 256-bit ``n/2``-schedule design point
   measured from the RTL; the main loop must take exactly 767 cycles.
3. **simulator** — the price of the machine-checked cycle model:
   aggregate simulator events per second and the wall-clock slowdown
   against the cycle tier.  The events/s floor asserted here is
   deliberately loose (pure-Python event wheel on a shared runner);
   the artifact records the real number.

Run as a pytest benchmark (``pytest benchmarks/bench_hdl.py``) or
directly (``python benchmarks/bench_hdl.py``); both write the JSON
next to the repository root (override with ``BENCH_OUTPUT_HDL``).
"""

from __future__ import annotations

import json
import os

from repro.analysis.hdl_cosim import reproduce_hdl_cosim
from repro.modsram.config import PAPER_CONFIG

#: The geometry sweep of the agreement table.
AGREEMENT_BITWIDTHS = (16, 32, 64)
#: Operand pairs per bitwidth (corners + random).
AGREEMENT_CASES = 4
#: Operand stream seed (the artifact is reproducible modulo timing).
AGREEMENT_SEED = 2024
#: Floor on aggregate simulator throughput (events/second).  The
#: measured rate is ~50-100k on a laptop core; 5k tolerates a heavily
#: loaded CI runner while still catching order-of-magnitude regressions.
REQUIRED_EVENTS_PER_SECOND = 5_000.0


def _output_path() -> str:
    override = os.environ.get("BENCH_OUTPUT_HDL")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_hdl.json")


def collect_cosim() -> dict:
    """One co-simulation sweep, reshaped into the artifact sections."""
    result = reproduce_hdl_cosim(
        bitwidths=AGREEMENT_BITWIDTHS,
        cases=AGREEMENT_CASES,
        seed=AGREEMENT_SEED,
    )
    rows = []
    total_events = 0
    total_hdl_seconds = 0.0
    total_cycle_seconds = 0.0
    for row in result.rows:
        entry = row.to_dict()
        entry["slowdown"] = row.slowdown
        rows.append(entry)
        total_events += row.sim_events
        total_hdl_seconds += row.hdl_seconds
        total_cycle_seconds += row.cycle_seconds
    return {
        "agreement": {
            "seed": result.seed,
            "all_match": result.all_match,
            "rows": rows,
        },
        "paper_point": {
            "bitwidth": PAPER_CONFIG.bitwidth,
            "iteration_cycles": result.paper_iteration_cycles,
            "expected_iteration_cycles": PAPER_CONFIG.expected_iteration_cycles,
            "ok": result.paper_point_ok,
        },
        "simulator": {
            "sim_events": total_events,
            "events_per_second": (
                total_events / total_hdl_seconds if total_hdl_seconds else 0.0
            ),
            "slowdown_vs_cycle_tier": (
                total_hdl_seconds / total_cycle_seconds
                if total_cycle_seconds
                else 0.0
            ),
            "required_events_per_second": REQUIRED_EVENTS_PER_SECOND,
        },
    }


def write_payload(payload: dict) -> str:
    path = _output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_benchmark() -> dict:
    payload = {"benchmark": "hdl"}
    payload.update(collect_cosim())
    path = write_payload(payload)
    payload["output"] = path
    return payload


#: One run shared by every test in the module (the collection is the
#: expensive part; the assertions are cheap).
_PAYLOAD: dict = {}


def _payload() -> dict:
    if not _PAYLOAD:
        _PAYLOAD.update(run_benchmark())
    return _PAYLOAD


def test_cycle_agreement():
    """Acceptance: RTL agrees with the modeled tiers on every geometry."""
    agreement = _payload()["agreement"]
    for row in agreement["rows"]:
        print(
            f"{row['bitwidth']}b: {row['cases']} cases, "
            f"{row['iteration_cycles']} loop cycles, "
            f"products {'ok' if row['products_match'] else 'MISMATCH'}, "
            f"cycle report {'ok' if row['cycles_match'] else 'MISMATCH'}"
        )
        assert row["products_match"], (
            f"{row['bitwidth']}-bit products diverged from the oracle"
        )
        assert row["cycles_match"], (
            f"{row['bitwidth']}-bit cycle reports diverged across tiers"
        )
    assert agreement["all_match"]


def test_paper_point():
    """Acceptance: the RTL reproduces the paper's 767 main-loop cycles."""
    point = _payload()["paper_point"]
    print(
        f"paper point: {point['bitwidth']}b measured "
        f"{point['iteration_cycles']} loop cycles "
        f"(expected {point['expected_iteration_cycles']})"
    )
    assert point["iteration_cycles"] == point["expected_iteration_cycles"]
    assert point["ok"]


def test_simulator_throughput():
    """Acceptance: the event wheel clears the (loose) events/s floor."""
    simulator = _payload()["simulator"]
    print(
        f"simulator: {simulator['events_per_second']:.0f} events/s, "
        f"{simulator['slowdown_vs_cycle_tier']:.1f}x slower than the "
        f"cycle tier over {simulator['sim_events']} events"
    )
    assert simulator["events_per_second"] >= REQUIRED_EVENTS_PER_SECOND, (
        f"expected >= {REQUIRED_EVENTS_PER_SECOND:.0f} events/s, got "
        f"{simulator['events_per_second']:.0f}"
    )


def test_artifact_matches_schema():
    """The emitted JSON validates against tools/check_bench.py."""
    import importlib.util

    payload = _payload()
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec = importlib.util.spec_from_file_location(
        "check_bench", os.path.join(repo_root, "tools", "check_bench.py")
    )
    checker = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(checker)
    errors = checker.check_file(payload["output"])
    assert not errors, errors


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
