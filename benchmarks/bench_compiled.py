"""The compiled backend's speedup, measured at three tiers.

The ``repro.compiled`` subsystem exists because every serving layer —
pool shards, cluster nodes — ultimately funnels into one multiplier
loop, and the pure-Python R4CSA-LUT loop pins that at ~1.7 ms/multiply.
This benchmark measures what the per-modulus codegen kernels buy at
each tier and emits ``BENCH_compiled.json``:

1. **Kernel** — a 2^12-pair, 254-bit ``multiply_batch`` through the
   engine on ``compiled`` vs ``r4csa-lut``.  Products must be
   bit-identical (also checked against the big-int oracle) and the
   compiled path must be **>= 10x** faster — asserted unconditionally:
   the measured gap is orders of magnitude, so no capability gate is
   needed.

2. **Pool** — the multi-tenant serving self-test (2 pool workers) on
   both backends: the speedup that survives asyncio + IPC overheads.
   Asserted >= 1.5x on multi-core runners (>= 2 CPUs, e.g. CI; force
   with ``BENCH_COMPILED_REQUIRE_SCALING=1``).

3. **Fleet** — the saturating multi-modulus cluster workload through a
   2-node local fleet (real processes, sockets) under a compiled spec
   vs an r4csa-lut spec.  Bit-identical always; >= 2x on multi-core
   runners under the same gate (measured ~15-30x).

Run as a pytest benchmark (``pytest benchmarks/bench_compiled.py``) or
directly (``python benchmarks/bench_compiled.py``); both write the JSON
next to the repository root (override with ``BENCH_OUTPUT_COMPILED``).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time

from repro.cluster import ClusterClient, LocalFleet
from repro.compiled.kernels import numpy_state
from repro.ecc.curves_data import CURVE_SPECS
from repro.engine import Engine, EngineSpec
from repro.service.selftest import run_self_test

#: The acceptance floor for the kernel-tier speedup.
REQUIRED_KERNEL_SPEEDUP = 10.0
#: Pool floor on multi-core runners: the pool tier pays asyncio,
#: batching-window and IPC costs on both sides, and r4csa's compute
#: parallelizes across the shards, so the surviving ratio is modest.
REQUIRED_POOL_SPEEDUP = 1.5
#: Fleet floor on multi-core runners (measured ~15-30x).
REQUIRED_FLEET_SPEEDUP = 2.0
#: Kernel tier: 2^12 pairs of 254-bit operands (the issue's workload).
KERNEL_PAIRS = 1 << 12
#: Fleet tier: the bench_cluster saturating traffic shape.
FLEET_REQUESTS = 48
FLEET_PAIRS = 8
FLEET_NODES = 2

BN254_P = CURVE_SPECS["bn254"].field_modulus


def _output_path() -> str:
    override = os.environ.get("BENCH_OUTPUT_COMPILED")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_compiled.json")


def _require_serving_scaling() -> bool:
    require = os.environ.get("BENCH_COMPILED_REQUIRE_SCALING")
    if require is not None:
        return require == "1"
    return (os.cpu_count() or 1) >= 2


# --------------------------------------------------------------------- #
# tier 1: kernel
# --------------------------------------------------------------------- #
def collect_kernel() -> dict:
    """2^12-pair 254-bit multiply_batch: compiled vs r4csa-lut."""
    rng = random.Random(0x5EED)
    pairs = [
        (rng.randrange(BN254_P), rng.randrange(BN254_P))
        for _ in range(KERNEL_PAIRS)
    ]
    oracle = [a * b % BN254_P for a, b in pairs]

    compiled_engine = Engine(backend="compiled", modulus=BN254_P)
    compiled_engine.context()  # warm: kernel compile is not the claim
    started = time.perf_counter()
    compiled_values = list(compiled_engine.multiply_batch(pairs))
    compiled_seconds = time.perf_counter() - started

    r4csa_engine = Engine(backend="r4csa-lut", modulus=BN254_P)
    r4csa_engine.context()
    started = time.perf_counter()
    r4csa_values = list(r4csa_engine.multiply_batch(pairs))
    r4csa_seconds = time.perf_counter() - started

    return {
        "modulus_bits": BN254_P.bit_length(),
        "pairs": KERNEL_PAIRS,
        "compiled_seconds": compiled_seconds,
        "r4csa_seconds": r4csa_seconds,
        "compiled_mul_per_second": KERNEL_PAIRS / compiled_seconds,
        "r4csa_mul_per_second": KERNEL_PAIRS / r4csa_seconds,
        "speedup": r4csa_seconds / compiled_seconds,
        "required_speedup": REQUIRED_KERNEL_SPEEDUP,
        "products_identical": (
            compiled_values == r4csa_values == oracle
        ),
        "r4csa_sample_pairs": KERNEL_PAIRS,
    }


# --------------------------------------------------------------------- #
# tier 2: pool
# --------------------------------------------------------------------- #
def collect_pool() -> dict:
    """The sharded serving self-test on both backends (2 pool workers).

    Heavier than the CI smoke traffic on purpose: with only a handful of
    multiplications the wall time is all batching windows and IPC, and
    the ratio would measure overhead, not arithmetic.
    """
    workers = 2
    backends = {}
    for backend in ("r4csa-lut", "compiled"):
        metrics = run_self_test(
            backend=backend,
            workers=workers,
            tenants=2,
            requests=12,
            pairs_per_request=32,
            graph_every=6,
            graph_leaves=8,
        )
        backends[backend] = {
            "requests_per_second": metrics["requests_per_second"],
            "multiplications_per_second": metrics[
                "multiplications_per_second"
            ],
            "completed_requests": metrics["completed_requests"],
            "verified_requests": metrics["verified_requests"],
        }
    return {
        "backends": backends,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "speedup": (
            backends["compiled"]["multiplications_per_second"]
            / backends["r4csa-lut"]["multiplications_per_second"]
        ),
    }


# --------------------------------------------------------------------- #
# tier 3: fleet
# --------------------------------------------------------------------- #
def _fleet_traffic() -> list:
    moduli = [
        BN254_P,
        CURVE_SPECS["secp256k1"].field_modulus,
        (1 << 255) - 19,
    ]
    rng = random.Random(0xF1EE7)
    return [
        (
            moduli[index % len(moduli)],
            tuple(
                (rng.randrange(moduli[index % len(moduli)]),
                 rng.randrange(moduli[index % len(moduli)]))
                for _ in range(FLEET_PAIRS)
            ),
        )
        for index in range(FLEET_REQUESTS)
    ]


async def _drive_fleet(port: int, requests) -> tuple:
    async with ClusterClient("127.0.0.1", port, tenant="bench") as client:
        for modulus in dict.fromkeys(modulus for modulus, _ in requests):
            await client.multiply_batch([(1, 1)], modulus=modulus)  # warm
        started = time.perf_counter()
        responses = await asyncio.gather(*(
            client.multiply_batch(list(pairs), modulus=modulus)
            for modulus, pairs in requests
        ))
        elapsed = time.perf_counter() - started
    return [list(response.values) for response in responses], elapsed


def collect_fleet() -> dict:
    """The same fleet traffic under a compiled spec vs an r4csa spec."""
    requests = _fleet_traffic()
    multiplications = FLEET_REQUESTS * FLEET_PAIRS
    backends = {}
    values_by_backend = {}

    async def run_fleet(backend: str) -> None:
        spec = EngineSpec(backend=backend)
        async with LocalFleet(spec=spec, workers=FLEET_NODES) as fleet:
            values, elapsed = await _drive_fleet(fleet.port, requests)
            values_by_backend[backend] = values
            backends[backend] = {
                "seconds": elapsed,
                "requests_per_second": FLEET_REQUESTS / elapsed,
                "mul_per_second": multiplications / elapsed,
            }

    for backend in ("r4csa-lut", "compiled"):
        asyncio.run(run_fleet(backend))

    return {
        "nodes": FLEET_NODES,
        "requests": FLEET_REQUESTS,
        "multiplications": multiplications,
        "backends": backends,
        "speedup": (
            backends["r4csa-lut"]["seconds"]
            / backends["compiled"]["seconds"]
        ),
        "products_identical": (
            values_by_backend["r4csa-lut"] == values_by_backend["compiled"]
        ),
    }


def write_payload(payload: dict) -> str:
    path = _output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def run_benchmark() -> dict:
    state = numpy_state()
    payload = {
        "benchmark": "compiled",
        "kernel": collect_kernel(),
        "pool": collect_pool(),
        "fleet": collect_fleet(),
        "numpy": {
            "requested": state.requested,
            "available": state.available,
        },
    }
    path = write_payload(payload)
    payload["output"] = path
    return payload


#: One run shared by every test in the module (the collection is the
#: expensive part; the assertions are cheap).
_PAYLOAD: dict = {}


def _payload() -> dict:
    if not _PAYLOAD:
        _PAYLOAD.update(run_benchmark())
    return _PAYLOAD


def test_kernel_speedup_and_parity():
    """Acceptance: >= 10x on the 2^12-pair 254-bit batch, bit-identical.

    No capability gate: the measured gap is three orders of magnitude,
    so even a loaded single-core runner clears 10x.
    """
    kernel = _payload()["kernel"]
    print(
        f"kernel: compiled {kernel['compiled_mul_per_second']:.0f} mul/s "
        f"vs r4csa-lut {kernel['r4csa_mul_per_second']:.0f} mul/s "
        f"-> {kernel['speedup']:.0f}x on {kernel['pairs']} pairs "
        f"({kernel['modulus_bits']} bits)"
    )
    assert kernel["products_identical"], (
        "compiled products must be bit-identical to r4csa-lut and the "
        "big-int oracle"
    )
    assert kernel["speedup"] >= REQUIRED_KERNEL_SPEEDUP, (
        f"expected >= {REQUIRED_KERNEL_SPEEDUP}x kernel speedup, got "
        f"{kernel['speedup']:.1f}x"
    )


def test_pool_speedup():
    """Acceptance: the kernel win survives the sharded serving stack."""
    pool = _payload()["pool"]
    for backend, metrics in pool["backends"].items():
        print(
            f"pool[{backend}]: "
            f"{metrics['multiplications_per_second']:.0f} mul/s, "
            f"{metrics['verified_requests']} verified"
        )
    print(f"pool speedup {pool['speedup']:.2f}x on {pool['cpu_count']} CPU(s)")
    for metrics in pool["backends"].values():
        assert metrics["verified_requests"] == metrics["completed_requests"]
    if _require_serving_scaling():
        assert pool["speedup"] >= REQUIRED_POOL_SPEEDUP, (
            f"expected >= {REQUIRED_POOL_SPEEDUP}x pool-tier speedup, "
            f"got {pool['speedup']:.2f}x"
        )
    else:
        print(f"(pool speedup assertion skipped: {os.cpu_count()} CPU(s) < 2)")


def test_fleet_speedup_and_parity():
    """Acceptance: the cluster fleet is faster and still bit-identical."""
    fleet = _payload()["fleet"]
    for backend, metrics in fleet["backends"].items():
        print(
            f"fleet[{backend}]: {metrics['mul_per_second']:.0f} mul/s "
            f"({metrics['seconds']:.2f} s)"
        )
    print(f"fleet speedup {fleet['speedup']:.2f}x, {fleet['nodes']} nodes")
    assert fleet["products_identical"], (
        "compiled and r4csa-lut fleets must produce bit-identical products"
    )
    if _require_serving_scaling():
        assert fleet["speedup"] >= REQUIRED_FLEET_SPEEDUP, (
            f"expected >= {REQUIRED_FLEET_SPEEDUP}x fleet-tier speedup, "
            f"got {fleet['speedup']:.2f}x"
        )
    else:
        print(
            f"(fleet speedup assertion skipped: {os.cpu_count()} CPU(s) < 2)"
        )


def test_artifact_matches_schema():
    """The emitted JSON validates against tools/check_bench.py."""
    import importlib.util

    payload = _payload()
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec = importlib.util.spec_from_file_location(
        "check_bench", os.path.join(repo_root, "tools", "check_bench.py")
    )
    checker = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(checker)
    errors = checker.check_file(payload["output"])
    assert not errors, errors


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
