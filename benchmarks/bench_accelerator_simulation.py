"""Throughput of the cycle-accurate simulator itself.

Useful for users planning larger studies on top of the model: how long one
simulated modular multiplication takes in wall-clock time at different
operand widths, and how the trace and energy instrumentation affect it.
"""

from __future__ import annotations

import random

import pytest

from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram import ModSRAMAccelerator, ModSRAMConfig, PAPER_CONFIG


@pytest.mark.parametrize("bitwidth", (16, 64, 128))
def test_simulator_throughput_by_bitwidth(benchmark, bitwidth):
    """Wall-clock cost of one simulated multiplication at several widths."""
    rng = random.Random(bitwidth)
    config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(bitwidth)
    accelerator = ModSRAMAccelerator(config)
    modulus = ((1 << bitwidth) - rng.randrange(3, 1 << 6)) | 1
    a = rng.randrange(modulus) >> 1
    b = rng.randrange(modulus)

    result = benchmark.pedantic(
        accelerator.multiply, args=(a, b, modulus), rounds=3, iterations=1
    )
    assert result.product == (a * b) % modulus
    assert result.report.iteration_cycles == 3 * bitwidth - 1


def test_simulator_throughput_256_bit(benchmark):
    """The paper's operating point: one simulated 256-bit multiplication."""
    modulus = CURVE_SPECS["bn254"].field_modulus
    accelerator = ModSRAMAccelerator(PAPER_CONFIG)
    rng = random.Random(256)
    a, b = rng.randrange(modulus), rng.randrange(modulus)

    result = benchmark.pedantic(
        accelerator.multiply, args=(a, b, modulus), rounds=3, iterations=1
    )
    assert result.product == (a * b) % modulus


def test_simulator_throughput_with_tracing(benchmark):
    """The cost of recording a full cycle trace (Figure 3 walk-throughs)."""
    config = ModSRAMConfig(extend_for_full_range=False).with_bitwidth(64)
    accelerator = ModSRAMAccelerator(config, trace=True)
    modulus = (1 << 64) - 59
    a, b = 0x0123456789ABCDE, 0xFEDCBA987654321

    result = benchmark.pedantic(
        accelerator.multiply, args=(a, b, modulus), rounds=3, iterations=1
    )
    assert len(result.trace) == result.report.total_cycles
