"""Energy per modular multiplication (beyond-the-paper analysis).

The paper does not report energy; this bench produces the modelled
per-multiplication energy of the default 65 nm macro and its scaling with
operand width, using the access counts of real cycle-accurate runs.
"""

from __future__ import annotations

from repro.analysis.energy import (
    measure_energy_per_multiplication,
    reproduce_energy_analysis,
)


def test_energy_sweep(benchmark):
    """Energy/multiplication across operand widths (cycle-accurate runs)."""
    results, table = benchmark.pedantic(
        reproduce_energy_analysis, kwargs={"bitwidths": (64, 128, 256)},
        rounds=1, iterations=1,
    )
    energies = [result.energy_per_multiplication_pj for result in results]
    assert energies == sorted(energies)
    # The 256-bit figure lands in the nanojoule-per-multiplication regime.
    assert 0.3e3 < energies[-1] < 5e3
    print()
    print(table)


def test_energy_single_256_bit(benchmark):
    """One 256-bit multiplication's energy on the paper configuration."""
    result = benchmark.pedantic(
        measure_energy_per_multiplication, kwargs={"bitwidth": 256},
        rounds=1, iterations=1,
    )
    assert result.iteration_cycles == 767
    # Sensing (three SAs per column per access) dominates write-back energy.
    assert result.breakdown.sensing_pj > result.breakdown.near_memory_pj
