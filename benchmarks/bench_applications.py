"""Application-level benchmarks: ECC point operations, ECDSA and the ZKP mapping.

Beyond the paper's own exhibits, these measure the workloads the paper
motivates ModSRAM with (digital signatures, ZKP kernels) running on the
library, and the system-level projections built from the calibrated models.
"""

from __future__ import annotations

from repro.ecc import Ecdsa, get_curve
from repro.modsram import ModSRAMSystem, PAPER_CONFIG, PointOperationScheduler
from repro.zkp import map_zkp_kernels, ntt_workload


def test_point_operation_scheduling(benchmark):
    """Scheduling a mixed addition + doubling onto the macro's rows."""
    scheduler = PointOperationScheduler(PAPER_CONFIG)

    def run():
        return scheduler.schedule_mixed_addition(), scheduler.schedule_doubling()

    addition, doubling = benchmark(run)
    assert addition.multiplication_count == 11
    assert doubling.multiplication_count == 8
    assert addition.operand_rows_used <= PAPER_CONFIG.operand_capacity
    assert addition.iteration_cycles == 11 * 767
    print()
    print("mixed addition :", addition.as_dict())
    print("doubling       :", doubling.as_dict())


def test_ecdsa_sign_verify(benchmark):
    """A complete ECDSA sign + verify over secp256k1 (software backend)."""
    ecdsa = Ecdsa(get_curve("secp256k1"))
    keypair = ecdsa.generate_keypair(0xA11CE)
    message = b"modsram benchmark message"

    def run():
        signature = ecdsa.sign(keypair.private_key, message)
        return ecdsa.verify(keypair.public_key, message, signature)

    assert benchmark.pedantic(run, rounds=3, iterations=1)


def test_zkp_kernel_mapping(benchmark):
    """Mapping the Figure 7 kernels onto a 16-macro pool."""
    mapping = benchmark(map_zkp_kernels, 2**15, 256, 16)
    assert mapping.ntt.latency_ms < mapping.msm.latency_ms
    assert mapping.msm.avoided_register_writes > 1e8
    print()
    for row in mapping.as_rows():
        print("  ", row)


def test_ntt_lut_reuse_projection(benchmark):
    """Twiddle-aware LUT reuse shortens the NTT projection measurably."""
    system = ModSRAMSystem(1, PAPER_CONFIG)

    def run():
        reuse = system.project(ntt_workload(2**12, 256))
        return reuse

    projection = benchmark(run)
    refill_fraction = projection.lut_refill_cycles / projection.total_cycles_per_macro
    assert refill_fraction < 0.01
