"""Design-space exploration: sweep throughput and cache, machine-readable.

Emits ``BENCH_dse.json`` with three sections:

1. **expansion** — how fast the declarative sweep spec expands into
   validated design points, and that two expansions of the same spec
   are identical (the determinism the runner cache keys rely on).
2. **pool** — the default 640-point sweep evaluated twice through the
   cached parallel :class:`~repro.experiments.Runner`: a cold run
   against an empty cache directory, then a warm re-run that must be
   served entirely from disk.  The asserted warm-over-cold speedup
   floor is deliberately loose (process-pool startup dominates small
   sweeps on a loaded CI runner); the artifact records the real ratio.
3. **frontier** — Pareto accounting of the swept space: frontier size,
   dominated-point count, and the objective set.  A sweep whose
   frontier is empty (or is the whole space) means the cost model has
   stopped trading anything off — both are asserted against.

Run as a pytest benchmark (``pytest benchmarks/bench_dse.py``) or
directly (``python benchmarks/bench_dse.py``); both write the JSON
next to the repository root (override with ``BENCH_OUTPUT_DSE``).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

from repro.dse import DEFAULT_OBJECTIVES, default_sweep_spec, run_dse
from repro.experiments import Runner

#: Floor on the warm-over-cold speedup.  Warm runs replay the sweep
#: from the content-addressed disk cache (no pool, no evaluation); the
#: observed ratio is ~10-20x, and 1.2 still catches a broken cache.
REQUIRED_WARM_SPEEDUP = 1.2


def _output_path() -> str:
    override = os.environ.get("BENCH_OUTPUT_DSE")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_dse.json")


def collect_expansion(spec) -> dict:
    started = time.perf_counter()
    points = spec.expand()
    elapsed = time.perf_counter() - started
    replay = [point.to_params() for point in spec.expand()]
    return {
        "spec": spec.name,
        "points": len(points),
        "expand_seconds": elapsed,
        "points_per_second": len(points) / elapsed if elapsed else 0.0,
        "deterministic": [point.to_params() for point in points] == replay,
    }


def collect_pool_and_frontier(spec) -> dict:
    cache_dir = tempfile.mkdtemp(prefix="bench-dse-")
    try:
        runner = Runner(cache_dir=cache_dir, parallel=True)
        cold = run_dse(spec, runner=runner)
        warm = run_dse(spec, runner=runner)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    warm_speedup = (
        cold.elapsed_seconds / warm.elapsed_seconds
        if warm.elapsed_seconds
        else 0.0
    )
    return {
        "pool": {
            "workers": min(os.cpu_count() or 1, len(cold.points)),
            "cpu_count": os.cpu_count() or 1,
            "cold_seconds": cold.elapsed_seconds,
            "warm_seconds": warm.elapsed_seconds,
            "cold_points_per_second": cold.points_per_second,
            "warm_points_per_second": warm.points_per_second,
            "cold_cache_hits": cold.cache_hits,
            "warm_cache_hits": warm.cache_hits,
            "warm_speedup": warm_speedup,
            "required_warm_speedup": REQUIRED_WARM_SPEEDUP,
        },
        "frontier": {
            "size": len(cold.frontier),
            "dominated": cold.dominated,
            "swept_points": len(cold.points),
            "objectives": [
                {"metric": o.metric, "maximize": o.maximize}
                for o in DEFAULT_OBJECTIVES
            ],
            "non_empty": bool(cold.frontier),
        },
    }


def write_payload(payload: dict) -> str:
    path = _output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_benchmark() -> dict:
    spec = default_sweep_spec()
    payload = {"benchmark": "dse", "expansion": collect_expansion(spec)}
    payload.update(collect_pool_and_frontier(spec))
    path = write_payload(payload)
    payload["output"] = path
    return payload


#: One run shared by every test in the module (the sweep is the
#: expensive part; the assertions are cheap).
_PAYLOAD: dict = {}


def _payload() -> dict:
    if not _PAYLOAD:
        _PAYLOAD.update(run_benchmark())
    return _PAYLOAD


def test_expansion_is_deterministic():
    """Acceptance: the spec expands identically twice, and fast."""
    expansion = _payload()["expansion"]
    print(
        f"expansion: {expansion['points']} points in "
        f"{expansion['expand_seconds'] * 1000:.0f} ms "
        f"({expansion['points_per_second']:.0f} points/s)"
    )
    assert expansion["points"] >= 500  # the issue's sweep-size floor
    assert expansion["deterministic"]


def test_warm_rerun_is_served_from_cache():
    """Acceptance: the warm re-run hits the cache on every point."""
    pool = _payload()["pool"]
    print(
        f"pool: cold {pool['cold_points_per_second']:.0f} points/s "
        f"({pool['cold_cache_hits']} cached), warm "
        f"{pool['warm_points_per_second']:.0f} points/s "
        f"({pool['warm_cache_hits']} cached), "
        f"{pool['warm_speedup']:.1f}x warm speedup"
    )
    assert pool["cold_cache_hits"] == 0
    assert pool["warm_cache_hits"] == _payload()["expansion"]["points"]
    assert pool["warm_speedup"] >= pool["required_warm_speedup"], (
        f"expected >= {pool['required_warm_speedup']:.1f}x warm speedup, "
        f"got {pool['warm_speedup']:.2f}x"
    )


def test_frontier_is_a_proper_subset():
    """Acceptance: a non-empty frontier strictly inside the swept space."""
    frontier = _payload()["frontier"]
    print(
        f"frontier: {frontier['size']} of {frontier['swept_points']} "
        f"points ({frontier['dominated']} dominated)"
    )
    assert frontier["non_empty"]
    assert 0 < frontier["size"] < frontier["swept_points"]
    assert frontier["size"] + frontier["dominated"] == frontier["swept_points"]


def test_artifact_matches_schema():
    """The emitted JSON validates against tools/check_bench.py."""
    import importlib.util

    payload = _payload()
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec = importlib.util.spec_from_file_location(
        "check_bench", os.path.join(repo_root, "tools", "check_bench.py")
    )
    checker = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(checker)
    errors = checker.check_file(payload["output"])
    assert not errors, errors


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
