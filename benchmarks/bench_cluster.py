"""Multi-node serving fleet claims, measured and machine-readable.

Three claims of the ``repro.cluster`` subsystem, emitted as
``BENCH_cluster.json``:

1. **Node scaling** — the same saturating multi-modulus workload runs
   against a 1-node and a 2-node local fleet (real worker processes,
   sockets and all).  Products must be bit-identical fleet-to-fleet; on
   a multi-core runner (>= 2 CPUs, e.g. CI) the 2-node fleet must
   additionally sustain >= 1.5x the 1-node aggregate throughput (force
   the assertion either way with ``BENCH_CLUSTER_REQUIRE_SCALING=1``).

2. **Bit-identical to in-process serving** — the identical request list
   through the fleet and through a plain inline
   :class:`~repro.service.server.Server` yields exactly the same
   products: the cluster is a throughput amplifier, never an arithmetic
   variable.

3. **Zero lost requests across a worker kill** — the trace-driven load
   generator replays a seeded diurnal/bursty multi-tenant mix while one
   worker is SIGKILLed mid-run; every request must still complete
   (``lost == 0``) with every product verified (``mismatches == 0``).
   This leg runs the default engine spec — the ``compiled`` backend —
   so recovery is exercised on the kernels production shards actually
   run.

Run as a pytest benchmark (``pytest benchmarks/bench_cluster.py``) or
directly (``python benchmarks/bench_cluster.py``); both write the JSON
next to the repository root (override with ``BENCH_OUTPUT_CLUSTER``).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time

from repro.cluster import ClusterClient, LocalFleet, run_loadtest
from repro.ecc.curves_data import CURVE_SPECS
from repro.engine import EngineSpec
from repro.service import Server, ServerConfig

#: Fleet sizes the scaling comparison runs at.
NODE_COUNTS = (1, 2)
#: Minimum 2-node-over-1-node throughput on a multi-core runner.
REQUIRED_SPEEDUP = 1.5
#: Saturating traffic: requests x pairs of 254/255/256-bit
#: multiplications (heavy enough that compute, not sockets, dominates).
#: The scaling race therefore pins the r4csa-lut backend explicitly: under
#: the default ``compiled`` spec per-batch compute drops to microseconds,
#: sockets dominate, and node-count scaling is no longer the thing being
#: measured (the compiled fleet tier lives in ``bench_compiled.py``).
SCALING_REQUESTS = 64
SCALING_PAIRS = 12
#: Seed of the kill-recovery trace.
KILL_SEED = 0xC1A5


def _output_path() -> str:
    override = os.environ.get("BENCH_OUTPUT_CLUSTER")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_cluster.json")


def _scaling_traffic() -> list:
    """Deterministic multi-modulus request list (seeded operands).

    Several moduli so placement exercises the hash ring; the default
    replication of 2 lets the router balance them across both nodes of
    the 2-node fleet by live load.
    """
    moduli = [
        CURVE_SPECS["bn254"].field_modulus,
        CURVE_SPECS["secp256k1"].field_modulus,
        CURVE_SPECS["p256"].field_modulus,
        (1 << 255) - 19,
    ]
    rng = random.Random(0xF1EE7)
    requests = []
    for index in range(SCALING_REQUESTS):
        modulus = moduli[index % len(moduli)]
        pairs = tuple(
            (rng.randrange(modulus), rng.randrange(modulus))
            for _ in range(SCALING_PAIRS)
        )
        requests.append((modulus, pairs))
    return requests


async def _drive_fleet(port: int, requests) -> tuple:
    """Submit the traffic concurrently; time only the traffic itself."""
    async with ClusterClient("127.0.0.1", port, tenant="bench") as client:
        for modulus in dict.fromkeys(modulus for modulus, _ in requests):
            await client.multiply_batch([(1, 1)], modulus=modulus)  # warm
        started = time.perf_counter()
        responses = await asyncio.gather(*(
            client.multiply_batch(list(pairs), modulus=modulus)
            for modulus, pairs in requests
        ))
        elapsed = time.perf_counter() - started
    return [list(response.values) for response in responses], elapsed


def collect_node_scaling() -> dict:
    """The same saturating workload against 1-node and 2-node fleets."""
    requests = _scaling_traffic()
    multiplications = sum(len(pairs) for _, pairs in requests)
    points = {}
    values_by_nodes = {}

    async def run_fleet(nodes: int) -> None:
        spec = EngineSpec(backend="r4csa-lut")
        async with LocalFleet(spec=spec, workers=nodes) as fleet:
            values, elapsed = await _drive_fleet(fleet.port, requests)
            rollup = fleet.router.metrics.rollup()
            values_by_nodes[nodes] = values
            points[nodes] = {
                "nodes": nodes,
                "seconds": elapsed,
                "requests_per_second": SCALING_REQUESTS / elapsed,
                "mul_per_second": multiplications / elapsed,
                "redispatches": rollup["redispatches"],
                "per_node_dispatched": {
                    name: node["dispatched"]
                    for name, node in rollup["per_node"].items()
                },
            }

    for nodes in NODE_COUNTS:
        asyncio.run(run_fleet(nodes))

    one, two = points[NODE_COUNTS[0]], points[NODE_COUNTS[-1]]
    return {
        "workload": (
            f"{SCALING_REQUESTS} requests x {SCALING_PAIRS} pairs, "
            "4 moduli, r4csa-lut"
        ),
        "requests": SCALING_REQUESTS,
        "multiplications": multiplications,
        "cpu_count": os.cpu_count(),
        "points": [points[nodes] for nodes in NODE_COUNTS],
        "speedup": one["seconds"] / two["seconds"],
        "products_identical_across_fleets": (
            values_by_nodes[NODE_COUNTS[0]] == values_by_nodes[NODE_COUNTS[-1]]
        ),
    }


def collect_bit_identical(cluster_values=None) -> dict:
    """Fleet products versus a plain in-process inline server."""
    requests = _scaling_traffic()

    async def run_single() -> list:
        config = ServerConfig(
            max_batch=8 * SCALING_PAIRS,
            max_pending=8192,
            max_pending_per_tenant=8192,
            batch_window_ms=0.0,
        )
        async with Server(backend="r4csa-lut", config=config) as server:
            responses = await asyncio.gather(*(
                server.multiply_batch(list(pairs), modulus=modulus)
                for modulus, pairs in requests
            ))
            return [list(response.values) for response in responses]

    async def run_cluster() -> list:
        spec = EngineSpec(backend="r4csa-lut")
        async with LocalFleet(spec=spec, workers=2) as fleet:
            values, _ = await _drive_fleet(fleet.port, requests)
            return values

    inline_values = asyncio.run(run_single())
    fleet_values = (
        cluster_values if cluster_values is not None
        else asyncio.run(run_cluster())
    )
    return {
        "workload": "scaling traffic through fleet vs in-process server",
        "requests": len(requests),
        "products_identical": inline_values == fleet_values,
    }


def collect_kill_recovery() -> dict:
    """Trace replay with a mid-run SIGKILL: nothing may be lost."""
    return asyncio.run(
        run_loadtest(
            workers=2,
            duration_s=1.5,
            rate=25.0,
            seed=KILL_SEED,
            kill_worker=True,
        )
    )


def write_payload(payload: dict) -> str:
    path = _output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def run_benchmark() -> dict:
    scaling = collect_node_scaling()
    payload = {
        "benchmark": "cluster",
        "node_scaling": scaling,
        "bit_identical": collect_bit_identical(),
        "kill_recovery": collect_kill_recovery(),
    }
    path = write_payload(payload)
    payload["output"] = path
    return payload


#: One run shared by every test in the module (the collection is the
#: expensive part; the assertions are cheap).
_PAYLOAD: dict = {}


def _payload() -> dict:
    if not _PAYLOAD:
        _PAYLOAD.update(run_benchmark())
    return _PAYLOAD


def test_fleet_parity_and_node_scaling():
    """Acceptance: fleets agree bit-for-bit; 2 nodes scale on many cores.

    Parity (fleet vs fleet, fleet vs in-process server) is asserted
    unconditionally.  The >= 1.5x aggregate-throughput claim holds on
    multi-core CI runners; on one CPU two worker processes cannot beat
    one, so the speedup lands in the JSON but is not asserted (force it
    either way with ``BENCH_CLUSTER_REQUIRE_SCALING=1``).
    """
    payload = _payload()
    scaling = payload["node_scaling"]
    for point in scaling["points"]:
        print(
            f"{point['nodes']} node(s): {point['mul_per_second']:.0f} mul/s "
            f"({point['seconds']:.2f} s, dispatch "
            f"{point['per_node_dispatched']})"
        )
    print(
        f"speedup {scaling['speedup']:.2f}x on {scaling['cpu_count']} CPU(s)"
    )
    assert scaling["products_identical_across_fleets"], (
        "1-node and 2-node fleets must produce bit-identical products"
    )
    assert _payload()["bit_identical"]["products_identical"], (
        "fleet and in-process server must produce bit-identical products"
    )
    require = os.environ.get("BENCH_CLUSTER_REQUIRE_SCALING")
    multicore = (os.cpu_count() or 1) >= 2
    if require == "1" or (require is None and multicore):
        assert scaling["speedup"] >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x 2-node-over-1-node throughput, "
            f"got {scaling['speedup']:.2f}x"
        )
    else:
        print(f"(speedup assertion skipped: {os.cpu_count()} CPU(s) < 2)")


def test_worker_kill_loses_nothing():
    """Acceptance: a SIGKILLed worker mid-replay costs zero requests."""
    recovery = _payload()["kill_recovery"]
    print(
        f"kill recovery: {recovery['sent']} sent, "
        f"{recovery['completed']} completed, {recovery['lost']} lost, "
        f"{recovery['mismatches']} mismatches "
        f"(killed pid {recovery['killed_pid']}, "
        f"{recovery['cluster']['redispatches']} re-dispatches)"
    )
    assert recovery["sent"] > 0
    assert recovery["lost"] == 0, "requests silently lost across the kill"
    assert recovery["mismatches"] == 0, "recovered products not bit-identical"
    assert recovery["killed_pid"] is not None
    assert recovery["cluster"]["lost_nodes"] == 1


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
