"""Figure 5: area breakdown of the ModSRAM macro.

Regenerates the 0.053 mm² / 67-20-11-2 % breakdown and the 32 % overhead
figure from the parametric area model, and times the model evaluation.
"""

from __future__ import annotations

from repro.analysis import reproduce_figure5
from repro.modsram import AreaModel, ModSRAMConfig, PAPER_CONFIG


def test_figure5_breakdown(benchmark):
    """The paper's design point: total, breakdown and overhead."""
    result = benchmark(reproduce_figure5)
    assert abs(result.total_error_percent) < 5.0
    assert abs(result.overhead_percent - result.paper_overhead_percent) < 4.0
    percentages = result.breakdown.percentages
    assert percentages["sram_array"] > 60
    assert percentages["in_memory_circuit"] > percentages["near_memory_circuit"]
    assert percentages["decoder"] < 5
    print()
    print(result.render())


def test_figure5_area_scaling_with_array_height(benchmark):
    """Ablation: how the breakdown shifts as the array grows (32..256 rows)."""
    def sweep():
        return {
            rows: AreaModel(ModSRAMConfig(rows=rows)).breakdown()
            for rows in (32, 64, 128, 256)
        }

    breakdowns = benchmark(sweep)
    totals = [breakdowns[rows].total_mm2 for rows in (32, 64, 128, 256)]
    assert totals == sorted(totals)
    # The array share rises with height; the IMC share (fixed per column) falls.
    assert (
        breakdowns[256].percentages["sram_array"]
        > breakdowns[32].percentages["sram_array"]
    )
    assert (
        breakdowns[256].percentages["in_memory_circuit"]
        < breakdowns[32].percentages["in_memory_circuit"]
    )
    print()
    for rows in (32, 64, 128, 256):
        breakdown = breakdowns[rows]
        print(f"  {rows:3d} rows: total {breakdown.total_mm2:.4f} mm^2, "
              f"array {breakdown.percentages['sram_array']:.1f}%")


def test_figure5_overhead_against_plain_sram(benchmark):
    """The 32% PIM overhead claim for the paper configuration."""
    model = AreaModel(PAPER_CONFIG)
    overhead = benchmark(model.overhead_percent)
    assert 28.0 < overhead < 36.0
