"""Wire protocol v2 claims, measured and machine-readable.

Two claims of the ``repro.cluster`` binary codec, emitted as
``BENCH_wire.json``:

1. **Codec throughput** — one 4096-pair batch of 254-bit operands runs
   through the per-request codec paths exactly as the fleet executes
   them, v1 and v2 interleaved repetition-by-repetition so scheduler
   noise lands on both codecs alike:

   * ``dispatch_path`` (asserted >= 5x): the client encodes the submit,
     the router decodes it and re-encodes the job it places — every
     codec operation between a caller and its assigned worker.  v2's
     decode is lazy (operand blobs stay packed bytes until a consumer
     computes) and its re-encode forwards those bytes zero-copy, which
     is what makes the router's pipelined dispatch cheap.
   * ``wire_path`` (floor-asserted >= 3.5x, typically ~5x): the same
     path plus the worker's decode *and* operand materialization — no
     cost is amortized away; this is every byte-to-int conversion a
     request pays before compute.  It sits lower because both wires
     bottom out in the same per-int conversion the worker cannot skip.
   * the single encode and decode legs, reported for transparency.

2. **End-to-end fleet throughput** — the same saturating wire-heavy
   traffic (large batches, default ``compiled`` backend, so framing
   rather than arithmetic dominates) runs against a 2-node local fleet
   once per wire version.  Products must be bit-identical across wires
   (asserted unconditionally); on a multi-core runner (>= 2 CPUs, e.g.
   CI) wire v2 must additionally sustain >= 2x the v1 throughput (force
   the assertion either way with ``BENCH_WIRE_REQUIRE_SPEEDUP=1``).

Run as a pytest benchmark (``pytest benchmarks/bench_wire.py``) or
directly (``python benchmarks/bench_wire.py``); both write the JSON
next to the repository root (override with ``BENCH_OUTPUT_WIRE``).
"""

from __future__ import annotations

import asyncio
import gc
import json
import os
import random
import time

from repro.cluster import ClusterClient, LocalFleet
from repro.cluster.protocol import (
    _V2_HEADER,
    PackedInts,
    decode_frame,
    decode_frame_v2,
    encode_frame,
    encode_frame_v2,
)
from repro.ecc.curves_data import CURVE_SPECS

#: The codec race payload: one submit batch of 254-bit operand pairs.
CODEC_PAIRS = 4096
CODEC_BIT_WIDTH = 254
#: Minimum v2-over-v1 speedup on the dispatch path (asserted always).
REQUIRED_DISPATCH_SPEEDUP = 5.0
#: Regression floor on the full path incl. worker materialization.
REQUIRED_WIRE_PATH_SPEEDUP = 3.5
#: Minimum v2-over-v1 fleet throughput on a multi-core runner.
REQUIRED_FLEET_SPEEDUP = 2.0
#: Wire-heavy fleet traffic: big batches on the (microsecond-fast)
#: default compiled backend, so the codec is what the race measures.
FLEET_REQUESTS = 32
FLEET_PAIRS = 512
#: Timing repetitions (best-of, to shed scheduler noise).
CODEC_REPS = 25


def _output_path() -> str:
    override = os.environ.get("BENCH_OUTPUT_WIRE")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_wire.json")


def _codec_message() -> dict:
    """The raced submit frame: 4096 seeded 254-bit operand pairs."""
    modulus = CURVE_SPECS["bn254"].field_modulus
    rng = random.Random(0x31BE)
    pairs = [
        [rng.randrange(modulus), rng.randrange(modulus)]
        for _ in range(CODEC_PAIRS)
    ]
    return {
        "type": "submit",
        "id": 1,
        "tenant": "bench",
        "kind": "pairs",
        "modulus": modulus,
        "pairs": pairs,
    }


def _race(fn_v1, fn_v2, reps: int = CODEC_REPS) -> tuple:
    """Interleaved best-of-``reps`` wall times in ms: ``(v1, v2)``.

    The codecs alternate repetition-by-repetition so a scheduler stall
    inflates both sides rather than one, and GC stays suspended while
    timing (the same discipline :mod:`timeit` applies).
    """
    best_v1 = best_v2 = float("inf")
    fn_v1(), fn_v2()  # warm caches outside the timed reps
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            started = time.perf_counter()
            fn_v1()
            best_v1 = min(best_v1, time.perf_counter() - started)
            started = time.perf_counter()
            fn_v2()
            best_v2 = min(best_v2, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_v1 * 1e3, best_v2 * 1e3


def _materialize(payload) -> list:
    """Exactly what the worker does before computing on a batch."""
    if isinstance(payload, PackedInts):
        return payload.topairs()
    return [(int(a), int(b)) for a, b in payload]


def _v1_encode(message: dict) -> bytes:
    return encode_frame(message)


def _v1_decode(frame: bytes) -> dict:
    return decode_frame(frame[4:])


def _v2_encode(message: dict) -> bytes:
    return b"".join(encode_frame_v2(message))


def _v2_decode(frame: bytes) -> dict:
    code = _V2_HEADER.unpack_from(frame)[2]
    return decode_frame_v2(bytes(frame[_V2_HEADER.size :]), code)


def collect_codec() -> dict:
    """Race the two codecs over the identical submit batch."""
    message = _codec_message()
    modulus = message["modulus"]
    expected = [(int(a), int(b)) for a, b in message["pairs"]]

    def forward(decoded: dict) -> dict:
        return {
            "type": "job",
            "id": decoded["id"],
            "kind": "pairs",
            "modulus": modulus,
            "payload": decoded["pairs"],
        }

    def dispatch(encode, decode) -> bytes:
        # Client -> router -> placed worker's socket: encode the submit,
        # decode it at the router, re-encode the job the router places.
        return encode(forward(decode(encode(message))))

    def path(encode, decode) -> list:
        # dispatch() plus the worker's side: decode the job and
        # materialize the operand pairs it computes on.
        job = decode(dispatch(encode, decode))
        return _materialize(job["payload"])

    frame1, frame2 = _v1_encode(message), _v2_encode(message)
    decoded1, decoded2 = _v1_decode(frame1), _v2_decode(frame2)
    pairs1 = path(_v1_encode, _v1_decode)
    pairs2 = path(_v2_encode, _v2_decode)
    assert pairs1 == expected and pairs2 == expected, (
        "codec round trips must reproduce the operand pairs exactly"
    )
    assert decoded1["modulus"] == decoded2["modulus"] == modulus

    enc1_ms, enc2_ms = _race(
        lambda: _v1_encode(message), lambda: _v2_encode(message)
    )
    dec1_ms, dec2_ms = _race(
        lambda: _v1_decode(frame1), lambda: _v2_decode(frame2)
    )
    disp1_ms, disp2_ms = _race(
        lambda: dispatch(_v1_encode, _v1_decode),
        lambda: dispatch(_v2_encode, _v2_decode),
    )
    path1_ms, path2_ms = _race(
        lambda: path(_v1_encode, _v1_decode),
        lambda: path(_v2_encode, _v2_decode),
    )
    return {
        "workload": f"{CODEC_PAIRS} pairs x {CODEC_BIT_WIDTH}-bit (bn254)",
        "pairs": CODEC_PAIRS,
        "bit_width": CODEC_BIT_WIDTH,
        "frame_bytes": {"v1": len(frame1), "v2": len(frame2)},
        "v1": {
            "encode_ms": enc1_ms,
            "decode_ms": dec1_ms,
            "total_ms": enc1_ms + dec1_ms,
        },
        "v2": {
            "encode_ms": enc2_ms,
            "decode_ms": dec2_ms,
            "total_ms": enc2_ms + dec2_ms,
        },
        "one_hop_speedup": (enc1_ms + dec1_ms) / (enc2_ms + dec2_ms),
        "dispatch_path": {
            "description": (
                "client encode -> router decode -> router re-encode"
            ),
            "v1_ms": disp1_ms,
            "v2_ms": disp2_ms,
            "speedup": disp1_ms / disp2_ms,
        },
        "wire_path": {
            "description": (
                "client encode -> router decode -> router re-encode -> "
                "worker decode + materialize"
            ),
            "v1_ms": path1_ms,
            "v2_ms": path2_ms,
            "speedup": path1_ms / path2_ms,
        },
    }


def _fleet_traffic() -> list:
    """Deterministic wire-heavy request list (seeded operands)."""
    moduli = [
        CURVE_SPECS["bn254"].field_modulus,
        CURVE_SPECS["secp256k1"].field_modulus,
    ]
    rng = random.Random(0x31BE + 1)
    requests = []
    for index in range(FLEET_REQUESTS):
        modulus = moduli[index % len(moduli)]
        pairs = tuple(
            (rng.randrange(modulus), rng.randrange(modulus))
            for _ in range(FLEET_PAIRS)
        )
        requests.append((modulus, pairs))
    return requests


def collect_fleet() -> dict:
    """The same traffic through a 2-node fleet, once per wire version."""
    requests = _fleet_traffic()
    multiplications = sum(len(pairs) for _, pairs in requests)
    points = {}
    values_by_wire = {}

    async def run_fleet(wire: int) -> None:
        async with LocalFleet(workers=2, wire=wire) as fleet:
            async with ClusterClient(
                "127.0.0.1", fleet.port, tenant="bench", wire=wire
            ) as client:
                for modulus in dict.fromkeys(m for m, _ in requests):
                    await client.multiply_batch([(1, 1)], modulus=modulus)
                started = time.perf_counter()
                responses = await asyncio.gather(*(
                    client.multiply_batch(list(pairs), modulus=modulus)
                    for modulus, pairs in requests
                ))
                elapsed = time.perf_counter() - started
            rollup = fleet.router.metrics.rollup()
        values_by_wire[wire] = [list(r.values) for r in responses]
        points[wire] = {
            "wire": wire,
            "seconds": elapsed,
            "requests_per_second": FLEET_REQUESTS / elapsed,
            "mul_per_second": multiplications / elapsed,
            "wire_frames": rollup.get("wire_frames", {}),
        }

    for wire in (1, 2):
        asyncio.run(run_fleet(wire))

    return {
        "workload": (
            f"{FLEET_REQUESTS} requests x {FLEET_PAIRS} pairs, "
            "2 moduli, compiled backend, 2 nodes"
        ),
        "requests": FLEET_REQUESTS,
        "multiplications": multiplications,
        "cpu_count": os.cpu_count(),
        "points": [points[1], points[2]],
        "speedup": points[1]["seconds"] / points[2]["seconds"],
        "products_identical_across_wires": (
            values_by_wire[1] == values_by_wire[2]
        ),
    }


def write_payload(payload: dict) -> str:
    path = _output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def run_benchmark() -> dict:
    payload = {
        "benchmark": "wire",
        "codec": collect_codec(),
        "fleet": collect_fleet(),
    }
    path = write_payload(payload)
    payload["output"] = path
    return payload


#: One run shared by every test in the module (the collection is the
#: expensive part; the assertions are cheap).
_PAYLOAD: dict = {}


def _payload() -> dict:
    if not _PAYLOAD:
        _PAYLOAD.update(run_benchmark())
    return _PAYLOAD


def test_codec_path_speedup():
    """Acceptance: v2 dispatches a batch >= 5x faster than JSON.

    The dispatch path is every codec operation between a client and its
    placed worker — the client's encode plus the router's decode and
    forward re-encode, the per-request work the fleet's one shared
    router must keep up with.  The full wire path (plus the worker's
    decode and operand materialization, so no byte-to-int conversion is
    amortized away) is floor-asserted alongside; it sits lower because
    both wires bottom out in the same per-int conversions at the
    endpoints.  Single-threaded races, so asserted on any runner.
    """
    codec = _payload()["codec"]
    print(
        f"one hop: v1 {codec['v1']['total_ms']:.2f} ms "
        f"(enc {codec['v1']['encode_ms']:.2f} / dec {codec['v1']['decode_ms']:.2f}), "
        f"v2 {codec['v2']['total_ms']:.2f} ms "
        f"(enc {codec['v2']['encode_ms']:.2f} / dec {codec['v2']['decode_ms']:.2f}) "
        f"-> {codec['one_hop_speedup']:.2f}x"
    )
    dispatch = codec["dispatch_path"]
    wire_path = codec["wire_path"]
    print(
        f"dispatch path: v1 {dispatch['v1_ms']:.2f} ms, "
        f"v2 {dispatch['v2_ms']:.2f} ms -> {dispatch['speedup']:.2f}x"
    )
    print(
        f"wire path: v1 {wire_path['v1_ms']:.2f} ms, "
        f"v2 {wire_path['v2_ms']:.2f} ms -> {wire_path['speedup']:.2f}x"
    )
    print(
        f"frame bytes: v1 {codec['frame_bytes']['v1']}, "
        f"v2 {codec['frame_bytes']['v2']}"
    )
    assert codec["frame_bytes"]["v2"] < codec["frame_bytes"]["v1"], (
        "binary frames must be smaller than their JSON equivalents"
    )
    assert dispatch["speedup"] >= REQUIRED_DISPATCH_SPEEDUP, (
        f"expected >= {REQUIRED_DISPATCH_SPEEDUP}x dispatch-path speedup, "
        f"got {dispatch['speedup']:.2f}x"
    )
    assert wire_path["speedup"] >= REQUIRED_WIRE_PATH_SPEEDUP, (
        f"expected >= {REQUIRED_WIRE_PATH_SPEEDUP}x wire-path speedup, "
        f"got {wire_path['speedup']:.2f}x"
    )


def test_fleet_wire_parity_and_speedup():
    """Acceptance: wires agree bit-for-bit; v2 >= 2x on many cores.

    Parity is asserted unconditionally.  The throughput claim holds on
    multi-core runners where the fleet actually runs concurrently; on
    one CPU the race still lands in the JSON but is not asserted (force
    it either way with ``BENCH_WIRE_REQUIRE_SPEEDUP=1``).
    """
    fleet = _payload()["fleet"]
    for point in fleet["points"]:
        print(
            f"wire v{point['wire']}: {point['mul_per_second']:.0f} mul/s "
            f"({point['seconds']:.2f} s)"
        )
    print(f"speedup {fleet['speedup']:.2f}x on {fleet['cpu_count']} CPU(s)")
    assert fleet["products_identical_across_wires"], (
        "wire v1 and v2 fleets must produce bit-identical products"
    )
    require = os.environ.get("BENCH_WIRE_REQUIRE_SPEEDUP")
    multicore = (os.cpu_count() or 1) >= 2
    if require == "1" or (require is None and multicore):
        assert fleet["speedup"] >= REQUIRED_FLEET_SPEEDUP, (
            f"expected >= {REQUIRED_FLEET_SPEEDUP}x v2-over-v1 fleet "
            f"throughput, got {fleet['speedup']:.2f}x"
        )
    else:
        print(f"(speedup assertion skipped: {os.cpu_count()} CPU(s) < 2)")


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
