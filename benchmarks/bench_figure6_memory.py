"""Figure 6: data organisation / row utilisation across SRAM PIM designs.

Regenerates the row requirements of MeNTT, BP-NTT and ModSRAM for one
256-bit modular multiplication and ModSRAM's region breakdown (operands,
intermediates, LUTs) inside its 64-row array.
"""

from __future__ import annotations

from repro.analysis import reproduce_figure6
from repro.baselines import mentt_rows


def test_figure6_row_requirements(benchmark):
    """Rows needed at 256 bits: MeNTT 1282, BP-NTT 6, ModSRAM 18 (of 64)."""
    result = benchmark(reproduce_figure6)
    assert result.rows_by_design["mentt"] == 1282
    assert result.rows_by_design["bpntt"] == 6
    assert result.rows_by_design["modsram"] == 18
    assert result.modsram_utilization.lut_rows == 13
    assert result.modsram_utilization.intermediate_rows == 2
    assert result.modsram_utilization.free_rows == 46
    print()
    print(result.render())


def test_figure6_mentt_row_explosion_with_bitwidth(benchmark):
    """The bit-serial layout's row count grows linearly and overflows a bank."""
    def sweep():
        return {bitwidth: mentt_rows(bitwidth) for bitwidth in (16, 32, 64, 128, 256)}

    rows = benchmark(sweep)
    assert rows[256] == 1282
    assert rows[16] == 82
    # Linear growth: doubling the bitwidth roughly doubles the rows.
    assert rows[256] / rows[128] > 1.9
    # A 64-row ModSRAM-style bank stops fitting the working set beyond ~12 bits.
    assert all(value > 64 for value in rows.values())


def test_figure6_modsram_supports_point_addition_operands(benchmark):
    """§5.2: the array accommodates the operands of an EC point addition."""
    result = benchmark(reproduce_figure6)
    utilization = result.modsram_utilization
    # A Jacobian point addition keeps ~12 coordinates/temporaries resident,
    # which fits comfortably in the 49-row operand region.
    assert utilization.operand_capacity >= 12 + 3
