"""§5.3 headline claims: the paper-versus-reproduction scorecard.

One benchmark per claim group: cycles (767 / 3n-1 / direct form), physical
design (420 MHz, 0.053 mm², 32% overhead) and the end-to-end scorecard.
"""

from __future__ import annotations

from repro.analysis import reproduce_headline_claims
from repro.ecc.curves_data import CURVE_SPECS
from repro.modsram import AreaModel, ModSRAMAccelerator, PAPER_CONFIG


def test_headline_scorecard(benchmark):
    """Every headline claim evaluated (analytic models only)."""
    result = benchmark(reproduce_headline_claims, measure=False)
    assert result.all_hold()
    print()
    print(result.render())


def test_headline_767_cycles_measured(benchmark):
    """One measured 256-bit multiplication: exactly 767 main-loop cycles."""
    modulus = CURVE_SPECS["bn254"].field_modulus
    accelerator = ModSRAMAccelerator(PAPER_CONFIG)
    a = (modulus * 2) // 3
    b = (modulus * 4) // 9

    def run():
        return accelerator.multiply(a, b, modulus)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.product == (a * b) % modulus
    assert result.report.iteration_cycles == 767
    assert result.report.extra_overflow_folds == 0


def test_headline_physical_design(benchmark):
    """420 MHz clock, 0.053 mm² macro, 32% overhead over plain SRAM."""
    def evaluate():
        model = AreaModel(PAPER_CONFIG)
        return {
            "frequency_mhz": PAPER_CONFIG.frequency_mhz,
            "total_mm2": model.total_mm2(),
            "overhead_percent": model.overhead_percent(),
        }

    figures = benchmark(evaluate)
    assert abs(figures["frequency_mhz"] - 420.0) < 5
    assert abs(figures["total_mm2"] - 0.053) < 0.003
    assert abs(figures["overhead_percent"] - 32.0) < 4
