"""Serial vs parallel vs warm-cache wall time of the quick report.

PR 2's claim: routing ``report`` through the Experiment API turns it from
serial re-computation into parallel execution with content-hash cache
reuse.  This benchmark times the three modes on ``report --quick`` and
enforces the acceptance criteria:

* every mode produces byte-identical report text, and
* the warm-cache pass performs zero recomputation (every section is a
  cache hit) and beats the serial cold pass.

Run with ``python -m pytest benchmarks/bench_experiments.py -s``.
"""

from __future__ import annotations

import time

from repro.analysis.report import REPORT_EXPERIMENTS, build_report
from repro.experiments import ExperimentSpec, Runner


def _timed(function):
    start = time.perf_counter()
    value = function()
    return value, time.perf_counter() - start


def test_report_quick_serial_parallel_and_warm_cache(tmp_path):
    cache_dir = str(tmp_path / "experiment-cache")

    serial, serial_s = _timed(lambda: build_report(quick=True))
    parallel, parallel_s = _timed(
        lambda: build_report(quick=True, parallel=True)
    )
    cold, cold_s = _timed(
        lambda: build_report(quick=True, use_cache=True, cache_dir=cache_dir)
    )
    warm, warm_s = _timed(
        lambda: build_report(quick=True, use_cache=True, cache_dir=cache_dir)
    )

    assert parallel == serial, "parallel report must be byte-identical"
    assert cold == serial and warm == serial, "cached report must be byte-identical"

    # Zero recomputation on the warm pass: every section is a cache hit.
    warm_runner = Runner(use_cache=True, cache_dir=cache_dir)
    warm_results = warm_runner.run_specs(
        [ExperimentSpec(name) for name in REPORT_EXPERIMENTS], quick=True
    )
    assert all(result.cache_hit for result in warm_results)
    assert warm_s < serial_s, (
        f"warm cache ({warm_s:.3f}s) must beat serial recomputation "
        f"({serial_s:.3f}s)"
    )

    print("\nreport --quick wall time")
    print(f"  serial (no cache)   : {serial_s:8.3f} s")
    print(f"  parallel (no cache) : {parallel_s:8.3f} s")
    print(f"  cold cache          : {cold_s:8.3f} s")
    print(f"  warm cache          : {warm_s:8.3f} s "
          f"({serial_s / max(warm_s, 1e-9):.1f}x vs serial)")
