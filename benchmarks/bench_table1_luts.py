"""Tables 1a / 1b / 2: encoder truth table and precomputation LUT generation.

Regenerates the paper's definitional tables and measures how long the LUT
precomputation takes — the cost that ModSRAM amortises across every
multiplication that shares a multiplicand or modulus.
"""

from __future__ import annotations

from repro.analysis import reproduce_tables
from repro.core.luts import build_overflow_lut, build_radix4_lut


def test_table1_regeneration(benchmark, bn254_modulus):
    """Regenerate Tables 1a/1b/2 for a BN254-sized multiplicand."""
    result = benchmark(reproduce_tables, 0x1234567890ABCDEF, bn254_modulus)
    assert len(result.encoder_rows) == 8
    assert len(result.radix4_rows) == 5
    assert len(result.overflow_rows) == 8
    assert result.encoder_rows[4] == (1, 0, 0, -2)
    print()
    print(result.render())


def test_table1b_radix4_lut_precomputation(benchmark, bn254_modulus, operands):
    """Time the radix-4 LUT precomputation (three modular computations)."""
    _, b = operands
    lut = benchmark(build_radix4_lut, b, bn254_modulus)
    assert lut.computed_entry_count() == 3
    assert lut[+2] == (2 * b) % bn254_modulus


def test_table2_overflow_lut_precomputation(benchmark, bn254_modulus):
    """Time the overflow LUT precomputation (Table 2, eight residues)."""
    lut = benchmark(build_overflow_lut, bn254_modulus, 257, 8)
    assert len(lut) == 8
    assert lut[1] == (1 << 257) % bn254_modulus
