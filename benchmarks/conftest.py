"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import os
import random
import sys

import pytest

# Allow running the benchmarks from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.ecc.curves_data import CURVE_SPECS  # noqa: E402


@pytest.fixture(scope="session")
def bn254_modulus() -> int:
    """The BN254 base-field prime (the paper's ZKP-oriented 256-bit target)."""
    return CURVE_SPECS["bn254"].field_modulus


@pytest.fixture(scope="session")
def operands(bn254_modulus) -> tuple:
    """A fixed operand pair below the BN254 modulus."""
    rng = random.Random(42)
    return rng.randrange(bn254_modulus), rng.randrange(bn254_modulus)
