"""Fidelity-tier speedup and chip scale-out throughput, machine-readable.

Two claims of the layered simulation core, measured and emitted as
``BENCH_chip_scaling.json``:

1. **Fidelity-tier speedup** — the functional tier runs a *full ECDSA
   signing operation* (one ``k·G`` scalar multiplication over P-256 through
   the shared R4CSA-LUT kernel) at least 10x faster than the cycle-accurate
   tier.  The functional sign is measured end to end; the cycle tier's
   full-sign time is derived from its measured per-multiplication cost times
   the sign's exact multiplication count (legitimate because the ModSRAM
   schedule is data-independent — asserted by
   ``tests/modsram/test_accelerator.py``).  Set ``BENCH_FULL=1`` to run the
   true cycle-accurate sign end to end as well (~10 minutes).

2. **Chip scale-out** — throughput versus macro count for the
   LUT-reuse-aware chip scheduler on the ECDSA and NTT streams.

Run as a pytest benchmark (``pytest benchmarks/bench_chip_scaling.py``) or
directly (``python benchmarks/bench_chip_scaling.py``); both write the JSON
next to the repository root (override with ``BENCH_OUTPUT``).
"""

from __future__ import annotations

import json
import os
import time

from repro.analysis.chip_scaling import reproduce_chip_scaling
from repro.ecc.ecdsa import Ecdsa
from repro.engine import Engine, ModSRAMFastBackend
from repro.modsram import FunctionalModSRAM, ModSRAMAccelerator, ModSRAMConfig

#: Required fidelity-tier advantage on a full ECDSA sign (acceptance floor).
REQUIRED_SPEEDUP = 10.0
#: Cycle-accurate multiplications timed to derive the per-multiply cost.
CYCLE_TIER_SAMPLES = 3

P256_P = (1 << 256) - (1 << 224) + (1 << 192) + (1 << 96) - 1


def _output_path() -> str:
    override = os.environ.get("BENCH_OUTPUT")
    if override:
        return override
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(repo_root, "BENCH_chip_scaling.json")


def _measure_sign(engine: Engine, message: bytes = b"bench") -> dict:
    """Time one full deterministic ECDSA sign; count its multiplications."""
    ecdsa = Ecdsa(engine.curve("p256"))
    before = engine.stats().multiplications
    start = time.perf_counter()
    signature = ecdsa.sign(0x1CE1CE1CE1CE1CE, message)
    elapsed = time.perf_counter() - start
    multiplications = engine.stats().multiplications - before
    assert signature.r and signature.s
    return {"seconds": elapsed, "multiplications": multiplications}


def _measure_cycle_tier_per_multiply() -> float:
    """Measured wall time of one cycle-accurate 256-bit multiplication."""
    accelerator = ModSRAMAccelerator(ModSRAMConfig())
    a, b = P256_P // 3, P256_P // 5
    accelerator.multiply(a, b, P256_P)  # warm the LUT rows
    start = time.perf_counter()
    for offset in range(CYCLE_TIER_SAMPLES):
        accelerator.multiply(a - offset, b, P256_P)
    return (time.perf_counter() - start) / CYCLE_TIER_SAMPLES


def _measure_functional_per_multiply() -> float:
    functional = FunctionalModSRAM(ModSRAMConfig())
    a, b = P256_P // 3, P256_P // 5
    functional.multiply(a, b, P256_P)
    rounds = 20
    start = time.perf_counter()
    for offset in range(rounds):
        functional.multiply(a - offset, b, P256_P)
    return (time.perf_counter() - start) / rounds


def collect_fidelity_speedup() -> dict:
    """The fidelity-tier section of the benchmark payload."""
    functional_engine = Engine(
        backend=ModSRAMFastBackend(fidelity="functional"), curve="p256"
    )
    functional_sign = _measure_sign(functional_engine)
    cycle_per_multiply = _measure_cycle_tier_per_multiply()
    functional_per_multiply = _measure_functional_per_multiply()

    cycle_sign_seconds = cycle_per_multiply * functional_sign["multiplications"]
    cycle_sign_measured = False
    if os.environ.get("BENCH_FULL"):
        cycle_engine = Engine(backend="modsram", curve="p256")
        cycle_sign_seconds = _measure_sign(cycle_engine)["seconds"]
        cycle_sign_measured = True

    speedup = cycle_sign_seconds / functional_sign["seconds"]
    return {
        "workload": "full ECDSA sign (P-256, deterministic nonce)",
        "sign_multiplications": functional_sign["multiplications"],
        "functional_sign_seconds": functional_sign["seconds"],
        "cycle_sign_seconds": cycle_sign_seconds,
        "cycle_sign_measured_end_to_end": cycle_sign_measured,
        "cycle_per_multiply_seconds": cycle_per_multiply,
        "functional_per_multiply_seconds": functional_per_multiply,
        "per_multiply_speedup": cycle_per_multiply / functional_per_multiply,
        "full_sign_speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
    }


def collect_chip_scaling() -> dict:
    """The chip scale-out section: modelled throughput versus macro count."""
    payload = {}
    for workload, kwargs in (
        ("ecdsa-sign", {"scalar_bits": 256}),
        ("ntt", {"vector_size": 4096}),
    ):
        result = reproduce_chip_scaling(
            workload=workload, macro_counts=(1, 2, 4, 8, 16), **kwargs
        )
        payload[workload] = [point.to_dict() for point in result.points]
    return payload


def write_payload(payload: dict) -> str:
    path = _output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def run_benchmark() -> dict:
    payload = {
        "benchmark": "chip_scaling",
        "fidelity": collect_fidelity_speedup(),
        "chip_scaling": collect_chip_scaling(),
    }
    path = write_payload(payload)
    payload["output"] = path
    return payload


def test_functional_tier_signs_at_least_10x_faster():
    """Acceptance: functional full ECDSA sign >= 10x the cycle tier."""
    payload = run_benchmark()
    fidelity = payload["fidelity"]
    print(
        f"\nfull P-256 sign ({fidelity['sign_multiplications']} muls): "
        f"functional {fidelity['functional_sign_seconds']:.2f} s, "
        f"cycle tier {fidelity['cycle_sign_seconds']:.1f} s "
        f"({'measured' if fidelity['cycle_sign_measured_end_to_end'] else 'derived'}) "
        f"=> {fidelity['full_sign_speedup']:.0f}x"
    )
    assert fidelity["full_sign_speedup"] >= REQUIRED_SPEEDUP, (
        "functional tier must sign >= 10x faster than the cycle tier, got "
        f"{fidelity['full_sign_speedup']:.1f}x"
    )

    scaling = payload["chip_scaling"]["ecdsa-sign"]
    throughputs = [point["throughput_mops"] for point in scaling]
    print("ecdsa-sign Mmul/s vs macros:",
          {point["macros"]: round(point["throughput_mops"], 2) for point in scaling})
    assert throughputs == sorted(throughputs), (
        "chip throughput must not regress as macros are added"
    )
    print(f"benchmark JSON written to {payload['output']}")


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2))
