"""Batch execution through the Engine versus the per-call loop.

The Engine API argues that NTT/MSM-sized workloads should go through
``multiply_batch``: the modulus is resolved and its context fetched once,
operands are validated in one pass, and the loop calls the backend's
algorithm body directly.  This benchmark proves the claim on a 2^10-point
NTT-sized workload (1024 operand pairs, 254-bit BN254 operands): batch mode
must beat calling ``engine.multiply`` once per pair.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.engine import Engine

#: 2^10 pairs — one NTT stage's worth of twiddle multiplications at the
#: paper's Figure 7 scale granularity.
WORKLOAD_SIZE = 1 << 10
#: Timing rounds; the minimum is compared to suppress scheduler noise.
ROUNDS = 5


def _make_pairs(modulus: int, count: int = WORKLOAD_SIZE, seed: int = 42):
    rng = random.Random(seed)
    return [(rng.randrange(modulus), rng.randrange(modulus)) for _ in range(count)]


def _time_best(function, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("backend", ("schoolbook", "montgomery", "barrett"))
def test_batch_beats_per_call_loop(backend, bn254_modulus):
    """multiply_batch outruns the equivalent engine.multiply loop."""
    engine = Engine(backend=backend, curve="bn254")
    pairs = _make_pairs(bn254_modulus)
    expected = [(a * b) % bn254_modulus for a, b in pairs]

    assert list(engine.multiply_batch(pairs)) == expected  # warm the context

    loop_time = _time_best(
        lambda: [engine.multiply(a, b) for a, b in pairs]
    )
    batch_time = _time_best(lambda: engine.multiply_batch(pairs))

    speedup = loop_time / batch_time
    print(
        f"\n[{backend}] 2^10-pair workload: per-call loop {loop_time * 1e3:.2f} ms, "
        f"batch {batch_time * 1e3:.2f} ms ({speedup:.2f}x)"
    )
    assert batch_time < loop_time, (
        f"batch mode should beat the per-call loop for {backend!r}: "
        f"{batch_time:.6f}s vs {loop_time:.6f}s"
    )


def test_batch_context_reuse_on_ntt_sized_r4csa_workload(bn254_modulus):
    """R4CSA-LUT: one per-modulus context serves the whole 2^10 batch.

    The paper's data-reuse argument — the multiplicand/modulus LUTs stay
    resident — shows up as a precomputation counter that does not grow with
    the batch size.
    """
    engine = Engine(backend="r4csa-lut", curve="bn254")
    rng = random.Random(7)
    multiplicand = rng.randrange(bn254_modulus)
    pairs = [
        (rng.randrange(bn254_modulus), multiplicand)
        for _ in range(WORKLOAD_SIZE)
    ]
    batch = engine.multiply_batch(pairs)
    assert list(batch) == [(a * b) % bn254_modulus for a, b in pairs]
    assert batch.stats.precomputations == 1
    assert batch.stats.multiplications == WORKLOAD_SIZE
    assert engine.cache_stats.misses == 1


def test_batch_throughput(benchmark, bn254_modulus):
    """pytest-benchmark figure for batched Montgomery at 2^10 pairs."""
    engine = Engine(backend="montgomery", curve="bn254")
    pairs = _make_pairs(bn254_modulus)
    result = benchmark(engine.multiply_batch, pairs)
    assert result.count == WORKLOAD_SIZE
