"""Figure 1: cycles per modular multiplication versus bitwidth.

Regenerates the three curves of Figure 1 (MeNTT, MeNTT projected, this work)
over the paper's bitwidth sweep and checks the measured (cycle-accurate)
series against the analytic law.  The benchmark timing itself measures the
cycle-accurate simulator, i.e. how long reproducing one sweep takes.
"""

from __future__ import annotations

from repro.analysis import measure_modsram_cycles, reproduce_figure1
from repro.core.complexity import cycles_mentt_bit_serial, cycles_r4csa_lut


def test_figure1_analytic_sweep(benchmark):
    """The closed-form series over the paper's bitwidths (8..256)."""
    result = benchmark(reproduce_figure1, measure=False)
    assert result.analytic_series["mentt"][-1] == 66049
    assert result.analytic_series["r4csa-lut"][-1] == 767
    assert result.analytic_series["mentt-projected"][-1] == 32896
    print()
    print(result.render())
    print("speedup over MeNTT per bitwidth:",
          [round(s, 1) for s in result.speedup_over_mentt()])


def test_figure1_measured_small_widths(benchmark):
    """Cycle-accurate measurement of the 8/16/32/64-bit points."""
    def sweep():
        return [measure_modsram_cycles(bitwidth) for bitwidth in (8, 16, 32, 64)]

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert measured == [cycles_r4csa_lut(b) for b in (8, 16, 32, 64)]


def test_figure1_measured_256_bit_point(benchmark):
    """Cycle-accurate measurement of the paper's 256-bit operating point."""
    measured = benchmark.pedantic(measure_modsram_cycles, args=(256,), rounds=1, iterations=1)
    assert measured == 767
    assert cycles_mentt_bit_serial(256) / measured > 86
