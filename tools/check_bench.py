#!/usr/bin/env python
"""Schema-validate the ``BENCH_*.json`` benchmark artifacts.

Every benchmark in ``benchmarks/`` emits a machine-readable JSON
artifact whose fields are documented in ``docs/artifacts.md``.  Those
artifacts are consumed downstream (CI uploads them, the docs quote
them), so silent schema drift — a renamed key, a section dropped by a
refactor — must fail fast.  This tool is that gate: the CI benchmarks
job runs it (with explicit paths) against the freshly-written
artifacts before uploading them.

Usage::

    python tools/check_bench.py                 # every BENCH_*.json in repo root
    python tools/check_bench.py BENCH_foo.json  # explicit paths

Exit status 0 when every artifact matches its schema, 1 otherwise.

The schema language is deliberately tiny (this file is the single
source of truth, next to the prose in ``docs/artifacts.md``):

* a ``dict`` spec requires those keys, each validated recursively
  (extra keys are allowed — benchmarks may grow fields);
* a ``[spec]`` list requires a non-empty list whose elements all match;
* a type or tuple of types is an ``isinstance`` check;
* ``Value(x)`` requires the exact value ``x``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class Value:
    """Spec leaf requiring one exact value (e.g. the benchmark name)."""

    def __init__(self, expected: Any) -> None:
        self.expected = expected


NUMBER = (int, float)

#: Router-observed latency percentiles (shared by several artifacts).
LATENCY = {
    "count": NUMBER,
    "mean_ms": NUMBER,
    "p50_ms": NUMBER,
    "p95_ms": NUMBER,
    "p99_ms": NUMBER,
}

#: The cluster loadtest report (``repro cluster loadtest --json``,
#: ``run_loadtest`` and the kill_recovery benchmark section).
LOADTEST_REPORT = {
    "sent": int,
    "completed": int,
    "rejected": int,
    "deadline_misses": int,
    "failed": int,
    "lost": int,
    "mismatches": int,
    "latency": LATENCY,
    "per_tenant_completed": dict,
    "tenants": list,
    "events": int,
    "seed": int,
    "duration_s": NUMBER,
    "cluster": {
        "redispatches": int,
        "lost_nodes": int,
        "live_nodes": int,
        "rate_limited": int,
        "protocol_errors": int,
    },
    "workers": int,
    "kill_worker": bool,
}

SCHEMAS = {
    "BENCH_serve.json": {
        "benchmark": Value("serve"),
        "graph_vs_flat": dict,
        "bit_identical": {"graph_results": list, "chain_results": list},
        "serving": {
            "completed_requests": int,
            "requests_per_second": NUMBER,
            "latency": dict,
            "context_cache": dict,
            "executor": dict,
        },
        "executor_scaling": {
            "inline_seconds": NUMBER,
            "pool_seconds": NUMBER,
            "speedup": NUMBER,
            "products_identical": Value(True),
            "cpu_count": int,
            "workers": int,
        },
    },
    "BENCH_chip_scaling.json": {
        "benchmark": Value("chip_scaling"),
        "fidelity": {
            "sign_multiplications": int,
            "functional_sign_seconds": NUMBER,
            "cycle_sign_seconds": NUMBER,
            "per_multiply_speedup": NUMBER,
            "full_sign_speedup": NUMBER,
            "required_speedup": NUMBER,
        },
        "chip_scaling": dict,
    },
    "BENCH_cluster.json": {
        "benchmark": Value("cluster"),
        "node_scaling": {
            "requests": int,
            "multiplications": int,
            "points": [
                {
                    "nodes": int,
                    "seconds": NUMBER,
                    "requests_per_second": NUMBER,
                    "mul_per_second": NUMBER,
                    "redispatches": int,
                    "per_node_dispatched": dict,
                }
            ],
            "speedup": NUMBER,
            "products_identical_across_fleets": Value(True),
        },
        "bit_identical": {"products_identical": Value(True)},
        "kill_recovery": LOADTEST_REPORT,
    },
    "BENCH_wire.json": {
        "benchmark": Value("wire"),
        "codec": {
            "pairs": int,
            "bit_width": int,
            "frame_bytes": {"v1": int, "v2": int},
            "v1": {"encode_ms": NUMBER, "decode_ms": NUMBER, "total_ms": NUMBER},
            "v2": {"encode_ms": NUMBER, "decode_ms": NUMBER, "total_ms": NUMBER},
            "one_hop_speedup": NUMBER,
            "dispatch_path": {
                "v1_ms": NUMBER,
                "v2_ms": NUMBER,
                "speedup": NUMBER,
            },
            "wire_path": {
                "v1_ms": NUMBER,
                "v2_ms": NUMBER,
                "speedup": NUMBER,
            },
        },
        "fleet": {
            "requests": int,
            "multiplications": int,
            "cpu_count": int,
            "points": [
                {
                    "wire": int,
                    "seconds": NUMBER,
                    "requests_per_second": NUMBER,
                    "mul_per_second": NUMBER,
                    "wire_frames": dict,
                }
            ],
            "speedup": NUMBER,
            "products_identical_across_wires": Value(True),
        },
    },
    "BENCH_hdl.json": {
        "benchmark": Value("hdl"),
        "agreement": {
            "seed": int,
            "all_match": Value(True),
            "rows": [
                {
                    "bitwidth": int,
                    "cases": int,
                    "iterations": int,
                    "iteration_cycles": int,
                    "products_match": Value(True),
                    "cycles_match": Value(True),
                    "sim_events": int,
                    "events_per_second": NUMBER,
                    "hdl_seconds": NUMBER,
                    "cycle_seconds": NUMBER,
                    "slowdown": NUMBER,
                }
            ],
        },
        "paper_point": {
            "bitwidth": int,
            "iteration_cycles": int,
            "expected_iteration_cycles": int,
            "ok": Value(True),
        },
        "simulator": {
            "sim_events": int,
            "events_per_second": NUMBER,
            "slowdown_vs_cycle_tier": NUMBER,
            "required_events_per_second": NUMBER,
        },
    },
    "BENCH_dse.json": {
        "benchmark": Value("dse"),
        "expansion": {
            "spec": str,
            "points": int,
            "expand_seconds": NUMBER,
            "points_per_second": NUMBER,
            "deterministic": Value(True),
        },
        "pool": {
            "workers": int,
            "cpu_count": int,
            "cold_seconds": NUMBER,
            "warm_seconds": NUMBER,
            "cold_points_per_second": NUMBER,
            "warm_points_per_second": NUMBER,
            "cold_cache_hits": int,
            "warm_cache_hits": int,
            "warm_speedup": NUMBER,
            "required_warm_speedup": NUMBER,
        },
        "frontier": {
            "size": int,
            "dominated": int,
            "swept_points": int,
            "objectives": [{"metric": str, "maximize": bool}],
            "non_empty": Value(True),
        },
    },
    "BENCH_compiled.json": {
        "benchmark": Value("compiled"),
        "kernel": {
            "modulus_bits": int,
            "pairs": int,
            "compiled_seconds": NUMBER,
            "r4csa_seconds": NUMBER,
            "compiled_mul_per_second": NUMBER,
            "r4csa_mul_per_second": NUMBER,
            "speedup": NUMBER,
            "required_speedup": NUMBER,
            "products_identical": Value(True),
            "r4csa_sample_pairs": int,
        },
        "pool": {
            "backends": dict,
            "workers": int,
            "cpu_count": int,
            "speedup": NUMBER,
        },
        "fleet": {
            "nodes": int,
            "backends": dict,
            "speedup": NUMBER,
            "products_identical": Value(True),
        },
        "numpy": {
            "requested": bool,
            "available": bool,
        },
    },
}


def _validate(spec: Any, value: Any, path: str, errors: List[str]) -> None:
    if isinstance(spec, Value):
        if value != spec.expected:
            errors.append(f"{path}: expected {spec.expected!r}, got {value!r}")
    elif isinstance(spec, dict):
        if not isinstance(value, dict):
            errors.append(f"{path}: expected object, got {type(value).__name__}")
            return
        for key, sub in spec.items():
            if key not in value:
                errors.append(f"{path}.{key}: missing")
            else:
                _validate(sub, value[key], f"{path}.{key}", errors)
    elif isinstance(spec, list):
        if not isinstance(value, list):
            errors.append(f"{path}: expected array, got {type(value).__name__}")
            return
        if not value:
            errors.append(f"{path}: expected a non-empty array")
            return
        for index, item in enumerate(value):
            _validate(spec[0], item, f"{path}[{index}]", errors)
    else:  # a type or tuple of types
        if isinstance(value, bool) and spec in (int, NUMBER):
            errors.append(f"{path}: expected number, got bool")
        elif not isinstance(value, spec):
            expected = getattr(spec, "__name__", str(spec))
            errors.append(
                f"{path}: expected {expected}, got {type(value).__name__}"
            )


def check_file(path: str) -> List[str]:
    """Validate one artifact; returns the (possibly empty) error list."""
    name = os.path.basename(path)
    schema = SCHEMAS.get(name)
    if schema is None:
        return [
            f"{name}: no schema registered (known: {sorted(SCHEMAS)}); "
            "add one to tools/check_bench.py and document the fields in "
            "docs/artifacts.md"
        ]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{name}: unreadable ({exc})"]
    errors: List[str] = []
    _validate(schema, payload, name, errors)
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "paths",
        nargs="*",
        help="artifact files to validate (default: BENCH_*.json in the "
        "repository root)",
    )
    arguments = parser.parse_args(argv)
    paths = arguments.paths or sorted(
        glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
    )
    if not paths:
        print("no BENCH_*.json artifacts found")
        return 1
    failed = False
    for path in paths:
        errors = check_file(path)
        if errors:
            failed = True
            for error in errors:
                print(f"FAIL {error}")
        else:
            print(f"ok   {os.path.basename(path)}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
