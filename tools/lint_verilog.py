#!/usr/bin/env python3
"""Structural lint for the emitted ModSRAM Verilog.

A pure-Python check (no external toolchain, so CI stays hermetic) over the
subset of Verilog-2001 that :mod:`repro.hdl.verilog` emits:

* balanced ``module``/``endmodule`` and ``begin``/``end`` blocks;
* every identifier used in an expression is declared earlier in the file
  (port, reg, wire, memory or localparam);
* every ``reg`` is written by exactly one ``always`` block and every
  ``wire`` (or output port) is driven by exactly one ``assign`` — or one
  instance output connection;
* instance connections name real ports of the instantiated module and
  connect signals of the exact same bit-width (checked across all linted
  files).

Usage::

    python tools/lint_verilog.py FILE.v [FILE.v ...]

Exits non-zero and prints one line per finding if anything is wrong.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_RE_MODULE = re.compile(rf"^\s*module\s+({_IDENT})\s*\(")
_RE_ENDMODULE = re.compile(r"^\s*endmodule\b")
_RE_PORT = re.compile(
    rf"^\s*(input|output)\s+(wire|reg)\s*(\[(\d+):(\d+)\])?\s*({_IDENT})\s*[,)]?"
)
_RE_DECL = re.compile(
    rf"^\s*(reg|wire)\s*(\[(\d+):(\d+)\])?\s*({_IDENT})\s*(\[0:(\d+)\])?\s*;"
)
_RE_LOCALPARAM = re.compile(
    rf"^\s*localparam\s*(\[(\d+):(\d+)\])?\s*({_IDENT})\s*="
)
_RE_ASSIGN = re.compile(rf"^\s*assign\s+({_IDENT})\s*=\s*(.*);\s*$")
_RE_ALWAYS = re.compile(r"^\s*always\s*@\s*\(\s*posedge\s+clk\s*\)")
_RE_NB_ASSIGN = re.compile(rf"^\s*({_IDENT})\s*(\[[^\]]*\])?\s*<=")
_RE_INSTANCE = re.compile(rf"^\s*({_IDENT})\s+({_IDENT})\s+\(\s*$")
_RE_CONNECT = re.compile(rf"^\s*\.({_IDENT})\s*\(\s*({_IDENT})\s*\)\s*,?\s*$")
_RE_LITERAL = re.compile(r"\d+\s*'\s*[bodh][0-9a-fA-F_xzXZ]+|\b\d+\b")
_KEYWORDS = {
    "begin", "end", "if", "else", "posedge", "negedge", "always", "assign",
    "module", "endmodule", "input", "output", "wire", "reg", "localparam",
}


@dataclass
class _ModuleInfo:
    """Everything the lint learns about one module."""

    name: str
    file: str
    ports: Dict[str, Tuple[str, int]] = field(default_factory=dict)  # dir, width
    widths: Dict[str, int] = field(default_factory=dict)
    memories: Dict[str, int] = field(default_factory=dict)  # name -> depth
    declared_order: List[str] = field(default_factory=list)
    assign_targets: List[Tuple[int, str]] = field(default_factory=list)
    reg_writes: Dict[str, set] = field(default_factory=dict)  # name -> block ids
    instances: List[Tuple[int, str, str, Dict[str, str]]] = field(
        default_factory=list
    )
    regs: set = field(default_factory=set)
    wires: set = field(default_factory=set)


def _strip_comments(line: str) -> str:
    return line.split("//", 1)[0]


def _identifiers(expression: str) -> List[str]:
    without_literals = _RE_LITERAL.sub(" ", expression)
    return [
        token
        for token in re.findall(_IDENT, without_literals)
        if token not in _KEYWORDS
    ]


def lint_file(path: Path) -> Tuple[List[str], List[_ModuleInfo]]:
    """Lint one file; returns (findings, parsed module tables)."""
    findings: List[str] = []
    modules: List[_ModuleInfo] = []
    current: Optional[_ModuleInfo] = None
    begin_depth = 0
    always_id = -1
    in_always = False
    pending_instance: Optional[Tuple[int, str, str, Dict[str, str]]] = None
    in_header = False

    def err(line_number: int, message: str) -> None:
        findings.append(f"{path}:{line_number}: {message}")

    for line_number, raw in enumerate(path.read_text().splitlines(), start=1):
        line = _strip_comments(raw)
        if not line.strip():
            continue

        match = _RE_MODULE.match(line)
        if match:
            if current is not None:
                err(line_number, "nested module declaration")
            current = _ModuleInfo(match.group(1), str(path))
            modules.append(current)
            in_header = ");" not in line
            continue
        if current is None:
            err(line_number, "content outside any module")
            continue
        if _RE_ENDMODULE.match(line):
            if begin_depth:
                err(line_number, f"endmodule with {begin_depth} open begin(s)")
            current = None
            continue

        if in_header:
            match = _RE_PORT.match(line)
            if match:
                direction, _, _, msb, _, name = match.groups()
                width = int(msb) + 1 if msb is not None else 1
                current.ports[name] = (direction, width)
                current.widths[name] = width
                current.declared_order.append(name)
                if direction == "output":
                    current.wires.add(name)
            if ");" in line:
                in_header = False
            continue

        match = _RE_LOCALPARAM.match(line)
        if match:
            _, msb, _, name = match.groups()
            current.widths[name] = int(msb) + 1 if msb is not None else 1
            current.declared_order.append(name)
            continue

        match = _RE_DECL.match(line)
        if match:
            kind, _, msb, _, name, mem, depth = match.groups()
            width = int(msb) + 1 if msb is not None else 1
            current.widths[name] = width
            current.declared_order.append(name)
            if mem:
                current.memories[name] = int(depth) + 1
            elif kind == "reg":
                current.regs.add(name)
            else:
                current.wires.add(name)
            continue

        declared = set(current.widths)

        match = _RE_ASSIGN.match(line)
        if match:
            target, expression = match.groups()
            if target not in declared:
                err(line_number, f"assign to undeclared signal {target!r}")
            current.assign_targets.append((line_number, target))
            for name in _identifiers(expression):
                if name not in declared and name not in current.memories:
                    err(line_number, f"use of undeclared identifier {name!r}")
            continue

        if _RE_ALWAYS.match(line):
            always_id += 1
            in_always = True
            begin_depth += line.count("begin") - line.count("end")
            continue

        match = _RE_INSTANCE.match(line)
        if match and not in_always:
            pending_instance = (line_number, match.group(1), match.group(2), {})
            current.instances.append(pending_instance)
            continue
        if pending_instance is not None:
            match = _RE_CONNECT.match(line)
            if match:
                pending_instance[3][match.group(1)] = match.group(2)
                continue
            if line.strip() in (");", ")"):
                pending_instance = None
                continue

        opened = line.count("begin")
        closed = len(re.findall(r"\bend\b", line))
        if in_always:
            match = _RE_NB_ASSIGN.match(line)
            if match:
                target = match.group(1)
                if target not in declared and target not in current.memories:
                    err(
                        line_number,
                        f"nonblocking assign to undeclared {target!r}",
                    )
                current.reg_writes.setdefault(target, set()).add(always_id)
            for name in _identifiers(line):
                if name not in declared and name not in current.memories:
                    err(line_number, f"use of undeclared identifier {name!r}")
        begin_depth += opened - closed
        if begin_depth < 0:
            err(line_number, "more 'end' than 'begin'")
            begin_depth = 0
        if in_always and begin_depth == 0:
            in_always = False

    if current is not None:
        findings.append(f"{path}: missing endmodule")
    return findings, modules


def _check_drivers(info: _ModuleInfo) -> List[str]:
    findings: List[str] = []
    driven: Dict[str, int] = {}
    for line_number, target in info.assign_targets:
        driven[target] = driven.get(target, 0) + 1
        if driven[target] > 1:
            findings.append(
                f"{info.file}: {info.name}: wire {target!r} driven by "
                "multiple assigns"
            )
        if target in info.regs:
            findings.append(
                f"{info.file}:{line_number}: {info.name}: continuous assign "
                f"to reg {target!r}"
            )
    for name, blocks in info.reg_writes.items():
        if name in info.memories:
            continue
        if name not in info.regs:
            findings.append(
                f"{info.file}: {info.name}: nonblocking assign to non-reg "
                f"{name!r}"
            )
        if len(blocks) > 1:
            findings.append(
                f"{info.file}: {info.name}: reg {name!r} written from "
                f"{len(blocks)} always blocks"
            )
    for name, (direction, _) in info.ports.items():
        if direction != "output":
            continue
        instance_driven = any(
            port_map.get(port) == name
            for _, _, _, port_map in info.instances
            for port in port_map
        )
        if name not in driven and not instance_driven:
            findings.append(
                f"{info.file}: {info.name}: output port {name!r} is never "
                "driven"
            )
    return findings


def _check_instances(
    info: _ModuleInfo, registry: Dict[str, _ModuleInfo]
) -> List[str]:
    findings: List[str] = []
    for line_number, module_name, instance_name, port_map in info.instances:
        child = registry.get(module_name)
        if child is None:
            findings.append(
                f"{info.file}:{line_number}: instance {instance_name!r} of "
                f"unknown module {module_name!r}"
            )
            continue
        for port in child.ports:
            if port not in port_map:
                findings.append(
                    f"{info.file}:{line_number}: {instance_name}: port "
                    f"{port!r} unconnected"
                )
        for port, signal in port_map.items():
            if port not in child.ports:
                findings.append(
                    f"{info.file}:{line_number}: {instance_name}: no port "
                    f"{port!r} on {module_name}"
                )
                continue
            if signal not in info.widths:
                findings.append(
                    f"{info.file}:{line_number}: {instance_name}.{port}: "
                    f"undeclared signal {signal!r}"
                )
                continue
            expected = child.ports[port][1]
            actual = info.widths[signal]
            if expected != actual:
                findings.append(
                    f"{info.file}:{line_number}: {instance_name}.{port}: "
                    f"width {expected} connected to {signal!r} "
                    f"of width {actual}"
                )
    return findings


def lint_files(paths: List[Path]) -> List[str]:
    """Lint a set of files together (instances resolve across files)."""
    findings: List[str] = []
    registry: Dict[str, _ModuleInfo] = {}
    parsed: List[_ModuleInfo] = []
    for path in paths:
        file_findings, modules = lint_file(path)
        findings.extend(file_findings)
        for info in modules:
            if info.name in registry:
                findings.append(
                    f"{path}: duplicate module {info.name!r} (also in "
                    f"{registry[info.name].file})"
                )
            registry[info.name] = info
            parsed.append(info)
    for info in parsed:
        findings.extend(_check_drivers(info))
        findings.extend(_check_instances(info, registry))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="structural lint for emitted Verilog"
    )
    parser.add_argument("files", nargs="+", type=Path, help="Verilog files")
    arguments = parser.parse_args(argv)
    missing = [str(p) for p in arguments.files if not p.is_file()]
    if missing:
        print(f"lint_verilog: no such file: {', '.join(missing)}")
        return 2
    findings = lint_files(list(arguments.files))
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_verilog: {len(findings)} finding(s)")
        return 1
    print(f"lint_verilog: {len(arguments.files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
