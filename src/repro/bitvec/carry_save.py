"""Redundant (carry-save) number representation.

R4CSA-LUT never resolves carries during its main loop: the accumulator is
kept as a *sum* word and a *carry* word whose ordinary sum is the logical
value.  :class:`CarrySaveValue` models that redundant pair together with the
small overflow side-channel that the ModSRAM near-memory circuit keeps in
flip-flops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bitvec.bitvector import BitVector, maj3, xor3
from repro.errors import BitWidthError

__all__ = ["CarrySaveValue", "csa_step"]


def csa_step(addend: int, sum_word: int, carry_word: int) -> Tuple[int, int]:
    """One unconstrained carry-save addition step.

    Returns ``(new_sum, new_carry)`` with ``new_sum + new_carry ==
    addend + sum_word + carry_word`` and no width truncation.  The carry word
    is already shifted left by one (the weight of a generated carry).
    """
    new_sum = xor3(addend, sum_word, carry_word)
    new_carry = maj3(addend, sum_word, carry_word) << 1
    return new_sum, new_carry


@dataclass(frozen=True)
class CarrySaveValue:
    """A value held as ``sum + carry`` in two fixed-width registers.

    The pair of registers has the same width (``width`` bits); any bits that
    escape the registers during shifts or carry-save additions are returned
    to the caller so they can be folded back in via the overflow LUT, exactly
    as the ModSRAM near-memory circuit does.
    """

    sum_word: BitVector
    carry_word: BitVector

    def __post_init__(self) -> None:
        if self.sum_word.width != self.carry_word.width:
            raise BitWidthError(
                "sum and carry registers must share a width, got "
                f"{self.sum_word.width} and {self.carry_word.width}"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zero(cls, width: int) -> "CarrySaveValue":
        """A carry-save zero of the requested register width."""
        return cls(BitVector.zeros(width), BitVector.zeros(width))

    @classmethod
    def from_int(cls, value: int, width: int) -> "CarrySaveValue":
        """Represent ``value`` with the whole value in the sum word."""
        return cls(BitVector(value, width), BitVector.zeros(width))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        """Register width shared by the sum and carry words."""
        return self.sum_word.width

    def resolve(self) -> int:
        """Collapse the redundant representation into an ordinary integer.

        In hardware this is the final full addition performed near-memory
        after the last iteration.
        """
        return self.sum_word.value + self.carry_word.value

    def __int__(self) -> int:
        return self.resolve()

    # ------------------------------------------------------------------ #
    # the two operations the main loop needs
    # ------------------------------------------------------------------ #
    def shifted_left(self, amount: int) -> Tuple["CarrySaveValue", int, int]:
        """Shift both words left, returning the two overflow fields.

        Returns ``(shifted, sum_overflow, carry_overflow)`` where the overflow
        fields are the ``amount`` bits shifted out of each register.  The
        logical value satisfies::

            4 * old == shifted.resolve()
                       + (sum_overflow + carry_overflow) * 2**width
        """
        new_sum, sum_overflow = self.sum_word.shift_left(amount)
        new_carry, carry_overflow = self.carry_word.shift_left(amount)
        return CarrySaveValue(new_sum, new_carry), sum_overflow, carry_overflow

    def add(self, addend: int) -> Tuple["CarrySaveValue", int]:
        """Carry-save add an ``addend`` (an ordinary integer < 2**width).

        Returns ``(new_value, carry_overflow)`` where ``carry_overflow`` is
        the single bit (or bits) of the shifted majority word that escaped
        the register::

            old.resolve() + addend == new_value.resolve()
                                      + carry_overflow * 2**width
        """
        if addend < 0:
            raise BitWidthError(f"addend must be non-negative, got {addend}")
        if addend >> self.width:
            raise BitWidthError(
                f"addend {addend:#x} does not fit in {self.width} bits"
            )
        new_sum = xor3(addend, self.sum_word.value, self.carry_word.value)
        shifted_major = maj3(addend, self.sum_word.value, self.carry_word.value) << 1
        overflow = shifted_major >> self.width
        new_carry = shifted_major & self.sum_word.mask
        return (
            CarrySaveValue(
                BitVector(new_sum, self.width), BitVector(new_carry, self.width)
            ),
            overflow,
        )

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        return (
            f"CarrySave(sum={self.sum_word.to_binary()}, "
            f"carry={self.carry_word.to_binary()})"
        )
