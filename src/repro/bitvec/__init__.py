"""Fixed-width bit vectors and carry-save (redundant) values.

These are the behavioural models of the registers and redundant accumulators
that the ModSRAM hardware manipulates.
"""

from repro.bitvec.bitvector import BitVector, maj3, xor3
from repro.bitvec.carry_save import CarrySaveValue, csa_step

__all__ = ["BitVector", "CarrySaveValue", "csa_step", "maj3", "xor3"]
