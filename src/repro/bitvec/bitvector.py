"""Fixed-width bit vectors.

The ModSRAM hardware operates on fixed-width registers (SRAM rows, near-memory
flip-flops).  :class:`BitVector` is the behavioural model of such a register:
an immutable, fixed-width, unsigned value that tracks bits shifted out of the
register, because the R4CSA-LUT algorithm folds exactly those "overflow" bits
back into the computation through the overflow LUT (Table 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import BitWidthError

__all__ = ["BitVector", "xor3", "maj3"]


def xor3(a: int, b: int, c: int) -> int:
    """Bitwise three-input XOR — the *sum* output of a carry-save adder.

    This is the logic function the logic-SA module produces when the RBL
    discharge level corresponds to an odd number of stored ones among the
    three activated rows.
    """
    return a ^ b ^ c


def maj3(a: int, b: int, c: int) -> int:
    """Bitwise three-input majority — the *carry* output of a carry-save adder.

    The logic-SA module produces this when at least two of the three
    activated cells on a read bitline store a one.
    """
    return (a & b) | (a & c) | (b & c)


@dataclass(frozen=True)
class BitVector:
    """An immutable unsigned value constrained to ``width`` bits.

    Parameters
    ----------
    value:
        Non-negative integer.  Must fit in ``width`` bits.
    width:
        Register width in bits.  Must be positive.
    """

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise BitWidthError(f"width must be positive, got {self.width}")
        if self.value < 0:
            raise BitWidthError(f"value must be non-negative, got {self.value}")
        if self.value >> self.width:
            raise BitWidthError(
                f"value {self.value:#x} does not fit in {self.width} bits"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, width: int) -> "BitVector":
        """An all-zero register of the requested width."""
        return cls(0, width)

    @classmethod
    def ones(cls, width: int) -> "BitVector":
        """An all-one register of the requested width."""
        return cls((1 << width) - 1, width)

    @classmethod
    def from_bits(cls, bits: List[int], width: int | None = None) -> "BitVector":
        """Build from a list of bits, least-significant bit first."""
        if width is None:
            width = max(len(bits), 1)
        if len(bits) > width:
            raise BitWidthError(f"{len(bits)} bits do not fit in width {width}")
        value = 0
        for index, bit in enumerate(bits):
            if bit not in (0, 1):
                raise BitWidthError(f"bit {index} is {bit!r}, expected 0 or 1")
            value |= bit << index
        return cls(value, width)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def mask(self) -> int:
        """The all-ones mask for this register width."""
        return (1 << self.width) - 1

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = least significant)."""
        if not 0 <= index < self.width:
            raise BitWidthError(
                f"bit index {index} out of range for width {self.width}"
            )
        return (self.value >> index) & 1

    def bits(self) -> List[int]:
        """All bits as a list, least-significant first."""
        return [(self.value >> i) & 1 for i in range(self.width)]

    def msb(self, count: int = 1) -> int:
        """Return the ``count`` most significant bits as an integer."""
        if not 0 < count <= self.width:
            raise BitWidthError(
                f"cannot take {count} MSBs of a {self.width}-bit vector"
            )
        return self.value >> (self.width - count)

    def lsb(self, count: int = 1) -> int:
        """Return the ``count`` least significant bits as an integer."""
        if not 0 < count <= self.width:
            raise BitWidthError(
                f"cannot take {count} LSBs of a {self.width}-bit vector"
            )
        return self.value & ((1 << count) - 1)

    def slice(self, low: int, high: int) -> int:
        """Return bits ``[low, high)`` as an integer (verilog ``[high-1:low]``)."""
        if not 0 <= low < high <= self.width:
            raise BitWidthError(
                f"slice [{low}, {high}) out of range for width {self.width}"
            )
        return (self.value >> low) & ((1 << (high - low)) - 1)

    def popcount(self) -> int:
        """Number of set bits."""
        return bin(self.value).count("1")

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __len__(self) -> int:
        return self.width

    def __iter__(self) -> Iterator[int]:
        return iter(self.bits())

    def __bool__(self) -> bool:
        return bool(self.value)

    # ------------------------------------------------------------------ #
    # register operations
    # ------------------------------------------------------------------ #
    def resized(self, width: int) -> "BitVector":
        """Return a copy with a new width (truncating or zero-extending)."""
        if width <= 0:
            raise BitWidthError(f"width must be positive, got {width}")
        return BitVector(self.value & ((1 << width) - 1), width)

    def shift_left(self, amount: int) -> Tuple["BitVector", int]:
        """Shift left by ``amount`` and return ``(shifted, overflow)``.

        ``overflow`` is the integer formed by the ``amount`` bits that were
        shifted out of the top of the register.  This mirrors the hardware,
        where the shifted-out bits are latched into small near-memory
        flip-flops and later folded back via the overflow LUT.
        """
        if amount < 0:
            raise BitWidthError(f"shift amount must be non-negative, got {amount}")
        full = self.value << amount
        overflow = full >> self.width
        return BitVector(full & self.mask, self.width), overflow

    def shift_right(self, amount: int) -> Tuple["BitVector", int]:
        """Shift right by ``amount`` and return ``(shifted, dropped_bits)``."""
        if amount < 0:
            raise BitWidthError(f"shift amount must be non-negative, got {amount}")
        dropped = self.value & ((1 << amount) - 1) if amount else 0
        return BitVector(self.value >> amount, self.width), dropped

    def _coerce(self, other: "BitVector | int") -> int:
        if isinstance(other, BitVector):
            if other.width != self.width:
                raise BitWidthError(
                    f"width mismatch: {self.width} vs {other.width}"
                )
            return other.value
        return int(other) & self.mask

    def __xor__(self, other: "BitVector | int") -> "BitVector":
        return BitVector(self.value ^ self._coerce(other), self.width)

    def __and__(self, other: "BitVector | int") -> "BitVector":
        return BitVector(self.value & self._coerce(other), self.width)

    def __or__(self, other: "BitVector | int") -> "BitVector":
        return BitVector(self.value | self._coerce(other), self.width)

    def __invert__(self) -> "BitVector":
        return BitVector(self.value ^ self.mask, self.width)

    def __add__(self, other: "BitVector | int") -> "BitVector":
        """Modular (wrapping) addition within the register width."""
        return BitVector((self.value + self._coerce(other)) & self.mask, self.width)

    def add_with_carry(self, other: "BitVector | int") -> Tuple["BitVector", int]:
        """Full addition returning ``(sum_in_register, carry_out)``."""
        total = self.value + self._coerce(other)
        return BitVector(total & self.mask, self.width), total >> self.width

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def to_binary(self, group: int = 0) -> str:
        """Render as a binary string, optionally grouped every ``group`` bits."""
        raw = format(self.value, f"0{self.width}b")
        if group <= 0:
            return raw
        chunks = []
        position = len(raw)
        while position > 0:
            start = max(position - group, 0)
            chunks.append(raw[start:position])
            position = start
        return "_".join(reversed(chunks))

    def __str__(self) -> str:
        return f"{self.width}'b{self.to_binary()}"

    def __repr__(self) -> str:
        return f"BitVector(value={self.value:#x}, width={self.width})"
