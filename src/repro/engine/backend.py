"""The backend protocol behind the unified Engine API.

Every arithmetic backend the library knows about — the software
:class:`~repro.core.ModularMultiplier` family, the cycle-accurate ModSRAM
accelerator adapter and the prior-work PIM designs of Table 3 — is exposed
through one :class:`Backend` interface:

* :class:`BackendInfo` carries the capability metadata a caller needs to
  pick a backend (``has_cycle_model``, ``direct_form``,
  ``supported_bitwidths``, backend kind);
* :meth:`Backend.create_context` builds a *warmed* per-modulus
  :class:`EngineContext` — Montgomery/Barrett constants, R4CSA-LUT overflow
  tables and ModSRAM macro sizing are derived exactly once per modulus and
  then shared by every caller through the engine's context cache.

The registry mirrors the multiplier registry (same names: ``"r4csa-lut"``,
``"montgomery"``, ``"modsram"``, ...) and adds the Table 3 PIM baselines
under ``pim-*`` aliases (``"pim-mentt"``, ``"pim-bpntt"``, ...), whose
functional results come from the schoolbook oracle while their cycle models
come from the published design data.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.algorithms.base import (
    ModularMultiplier,
    available_multipliers,
    get_multiplier,
)
from repro.core.algorithms.schoolbook import SchoolbookMultiplier
from repro.errors import ConfigurationError, ModulusError

__all__ = [
    "BackendInfo",
    "EngineContext",
    "Backend",
    "MultiplierBackend",
    "ModSRAMBackend",
    "ModSRAMChipBackend",
    "ModSRAMFastBackend",
    "PimBaselineBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]


@dataclass(frozen=True)
class BackendInfo:
    """Capability metadata of one arithmetic backend."""

    #: Registry name (``"r4csa-lut"``, ``"modsram"``, ``"pim-mentt"``, ...).
    name: str
    #: Human-readable description for reports and ``repro backends``.
    description: str
    #: ``"software"``, ``"accelerator"`` or ``"pim-baseline"``.
    kind: str
    #: Whether :meth:`Backend.modeled_cycles` returns a hardware cycle count.
    has_cycle_model: bool
    #: Whether results come out in direct (non-Montgomery) form.
    direct_form: bool
    #: Bitwidths the original design natively supports (``None`` = any).
    supported_bitwidths: Optional[Tuple[int, ...]] = None
    #: Simulation fidelity tier of accelerator backends (``"cycle"``,
    #: ``"analytical"``, ``"functional"``; ``None`` for non-tiered backends).
    fidelity: Optional[str] = None
    #: Macro count of chip-level backends (``None`` for single-macro ones).
    macros: Optional[int] = None
    #: Code-generation metadata of compiled backends (emission strategy,
    #: feature-flag state); ``None`` for backends that do not generate code.
    codegen: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        """Metadata as a plain dictionary (for ``--json`` output)."""
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "has_cycle_model": self.has_cycle_model,
            "direct_form": self.direct_form,
            "supported_bitwidths": (
                list(self.supported_bitwidths)
                if self.supported_bitwidths is not None
                else None
            ),
            "fidelity": self.fidelity,
            "macros": self.macros,
            "codegen": None if self.codegen is None else dict(self.codegen),
        }


@dataclass
class EngineContext:
    """Warmed per-modulus state of one backend.

    Holds a multiplier instance dedicated to this modulus (so its internal
    depth-one caches never thrash between moduli) plus a scratch area for
    derived objects the engine builds lazily (the :class:`PrimeField`, the
    engine-backed curve, NTT contexts).
    """

    info: BackendInfo
    modulus: int
    bitwidth: int
    multiplier: ModularMultiplier
    #: Analytic cycles of one multiplication at this bitwidth, resolved once
    #: at context creation so the hot paths never recompute it.
    modeled_cycles_per_multiply: Optional[int] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def multiply(self, a: int, b: int) -> int:
        """One validated multiplication through this context's backend."""
        return self.multiplier.multiply(a, b, self.modulus)

    @property
    def stats(self):
        """The operation counters of this context's multiplier."""
        return self.multiplier.stats

    def __repr__(self) -> str:
        return (
            f"EngineContext(backend={self.info.name!r}, "
            f"modulus={self.modulus:#x}, bitwidth={self.bitwidth})"
        )


class Backend(abc.ABC):
    """One arithmetic backend: metadata plus per-modulus context creation."""

    info: BackendInfo

    @abc.abstractmethod
    def create_context(self, modulus: int) -> EngineContext:
        """Build a warmed context for ``modulus`` (precomputation included)."""

    def modeled_cycles(self, bitwidth: int) -> Optional[int]:
        """Hardware cycles of one multiplication, ``None`` without a model."""
        return None

    @staticmethod
    def _validate_modulus(modulus: int) -> None:
        if modulus <= 2:
            raise ModulusError(f"modulus must be greater than 2, got {modulus}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.info.name!r})"


class MultiplierBackend(Backend):
    """Adapter exposing a registered :class:`ModularMultiplier` as a backend.

    ``create_context`` instantiates a fresh multiplier per modulus and warms
    it through :meth:`ModularMultiplier.prepare` (Montgomery constants,
    Barrett reciprocals, R4CSA-LUT overflow tables, ModSRAM macro sizing),
    so the first batched call already runs hot.
    """

    def __init__(
        self,
        multiplier_name: str,
        kind: str = "software",
        supported_bitwidths: Optional[Tuple[int, ...]] = None,
        info_fidelity: Optional[str] = None,
        info_macros: Optional[int] = None,
        **multiplier_kwargs: Any,
    ) -> None:
        self._multiplier_cls = get_multiplier(multiplier_name)
        self._multiplier_kwargs = dict(multiplier_kwargs)
        probe = self._new_multiplier()
        self.info = BackendInfo(
            name=multiplier_name,
            description=probe.description or type(probe).__doc__ or "",
            kind=kind,
            has_cycle_model=probe.cycles(256) is not None,
            direct_form=probe.direct_form,
            supported_bitwidths=supported_bitwidths,
            fidelity=info_fidelity,
            macros=info_macros,
        )

    def _new_multiplier(self) -> ModularMultiplier:
        return self._multiplier_cls(**self._multiplier_kwargs)

    def create_context(self, modulus: int) -> EngineContext:
        self._validate_modulus(modulus)
        multiplier = self._new_multiplier()
        multiplier.prepare(modulus)
        bitwidth = modulus.bit_length()
        return EngineContext(
            info=self.info,
            modulus=modulus,
            bitwidth=bitwidth,
            multiplier=multiplier,
            modeled_cycles_per_multiply=multiplier.cycles(bitwidth),
        )

    def modeled_cycles(self, bitwidth: int) -> Optional[int]:
        if not self.info.has_cycle_model:
            return None
        return self._new_multiplier().cycles(bitwidth)


class ModSRAMBackend(MultiplierBackend):
    """The cycle-accurate ModSRAM accelerator behind the backend interface.

    Warming a context provisions the simulated macro for the modulus
    bitwidth; the adapter's cycle reports stay reachable through
    ``context.multiplier.reports`` for callers that want measured rather
    than analytic cycle counts.
    """

    def __init__(self, config: Optional[object] = None) -> None:
        import repro.modsram.multiplier  # noqa: F401 - registers the adapters

        kwargs = {"config": config} if config is not None else {}
        super().__init__(
            "modsram", kind="accelerator", info_fidelity="cycle", **kwargs
        )


class ModSRAMFastBackend(MultiplierBackend):
    """The fast fidelity tiers (``modsram-fast``) behind the backend interface.

    Products are kernel-identical to ``modsram``; the default
    ``fidelity="analytical"`` keeps the exact cycle model while
    ``fidelity="functional"`` trades it away for raw throughput (the
    backend then reports ``has_cycle_model=False``).
    """

    def __init__(
        self, config: Optional[object] = None, fidelity: str = "analytical"
    ) -> None:
        import repro.modsram.multiplier  # noqa: F401 - registers the adapters
        from repro.modsram.fidelity import Fidelity

        tier = Fidelity.coerce(fidelity)
        kwargs: Dict[str, Any] = {"fidelity": tier}
        if config is not None:
            kwargs["config"] = config
        super().__init__(
            "modsram-fast",
            kind="accelerator",
            info_fidelity=tier.value,
            **kwargs,
        )


class ModSRAMChipBackend(MultiplierBackend):
    """An N-macro ModSRAM chip (``modsram-chip``) behind the backend interface.

    Each multiplication is dispatched LUT-reuse-aware across ``macros``
    analytical macros; ``context.multiplier.activity()`` exposes the
    chip-level schedule (per-macro load, reuse rate, throughput).
    """

    def __init__(self, config: Optional[object] = None, macros: int = 4) -> None:
        import repro.modsram.multiplier  # noqa: F401 - registers the adapters

        kwargs: Dict[str, Any] = {"macros": macros}
        if config is not None:
            kwargs["config"] = config
        super().__init__(
            "modsram-chip",
            kind="accelerator",
            info_fidelity="analytical",
            info_macros=macros,
            **kwargs,
        )


class PimBaselineBackend(Backend):
    """A Table 3 prior-work PIM design as an engine backend.

    The published designs compute the same mathematical function, so the
    functional result comes from the schoolbook oracle; the value a caller
    gets from this backend is the design's *cycle model* (when the paper
    derives one) and its capability metadata.
    """

    def __init__(self, design_key: str) -> None:
        from repro.baselines.base import get_design

        self._spec = get_design(design_key)
        self.info = BackendInfo(
            name=f"pim-{design_key}",
            description=(
                f"{self._spec.label} ({self._spec.reference}): "
                f"{self._spec.computation_method} on {self._spec.cell_type} "
                f"at {self._spec.technology_nm} nm; functional results via "
                "the schoolbook oracle."
            ),
            kind="pim-baseline",
            has_cycle_model=self._spec.cycle_model is not None,
            direct_form="montgomery" not in self._spec.computation_method.lower(),
            supported_bitwidths=tuple(self._spec.native_bitwidths),
        )

    @property
    def design(self):
        """The underlying :class:`~repro.baselines.base.PimDesignSpec`."""
        return self._spec

    def create_context(self, modulus: int) -> EngineContext:
        self._validate_modulus(modulus)
        bitwidth = modulus.bit_length()
        return EngineContext(
            info=self.info,
            modulus=modulus,
            bitwidth=bitwidth,
            multiplier=SchoolbookMultiplier(),
            modeled_cycles_per_multiply=self._spec.cycles(bitwidth),
        )

    def modeled_cycles(self, bitwidth: int) -> Optional[int]:
        return self._spec.cycles(bitwidth)


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, Backend] = {}
_DEFAULTS_BUILT = False


def _build_default_backends() -> None:
    global _DEFAULTS_BUILT
    if _DEFAULTS_BUILT:
        return
    # Importing these modules registers the multiplier adapter and the
    # Table 3 design specs as side effects.
    import repro.baselines  # noqa: F401
    import repro.modsram.multiplier  # noqa: F401
    from repro.baselines.base import available_designs
    from repro.compiled.multiplier import CompiledBackend
    from repro.hdl.multiplier import ModSRAMHdlBackend

    # Backends needing a richer adapter than the plain MultiplierBackend.
    special_backends = {
        "modsram": ModSRAMBackend,
        "modsram-fast": ModSRAMFastBackend,
        "modsram-chip": ModSRAMChipBackend,
        "modsram-hdl": ModSRAMHdlBackend,
        "compiled": CompiledBackend,
    }
    for name in available_multipliers():
        if name in _REGISTRY:
            continue
        backend_cls = special_backends.get(name)
        if backend_cls is not None:
            _REGISTRY[name] = backend_cls()
        else:
            _REGISTRY[name] = MultiplierBackend(name)
    for key in available_designs():
        if key == "modsram":  # covered by the accelerator backend above
            continue
        alias = f"pim-{key}"
        if alias not in _REGISTRY:
            _REGISTRY[alias] = PimBaselineBackend(key)
    _DEFAULTS_BUILT = True


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Add a backend to the registry (``replace=True`` to overwrite)."""
    _build_default_backends()
    key = backend.info.name
    if key in _REGISTRY and not replace:
        raise ConfigurationError(f"backend {key!r} already registered")
    _REGISTRY[key] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend by name."""
    _build_default_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    _build_default_backends()
    return sorted(_REGISTRY)
