"""Unified Engine API: one batched, context-cached entry point.

The engine layer unifies every arithmetic backend — the software
:class:`~repro.core.ModularMultiplier` family, the cycle-accurate ModSRAM
accelerator and the Table 3 PIM baselines — behind a single facade with
per-modulus context caching and batch execution::

    from repro.engine import Engine

    engine = Engine(backend="r4csa-lut", curve="bn254")
    result = engine.multiply(12345, 67890)          # MultiplyResult
    batch = engine.multiply_batch([(1, 2), (3, 4)]) # BatchResult
    field = engine.field()                           # engine-backed GF(p)
    ntt = engine.ntt(1024)                           # engine-backed NTT

See :mod:`repro.engine.engine` for the facade, :mod:`repro.engine.backend`
for the backend protocol and registry, and :mod:`repro.engine.cache` for
the LRU context cache.
"""

from repro.engine.backend import (
    Backend,
    BackendInfo,
    EngineContext,
    ModSRAMBackend,
    ModSRAMChipBackend,
    ModSRAMFastBackend,
    MultiplierBackend,
    PimBaselineBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.cache import (
    CacheStats,
    ContextCache,
    global_cache_stats,
    reset_global_cache_stats,
)
from repro.engine.engine import BatchResult, Engine, EngineStats, MultiplyResult
from repro.engine.spec import EngineSpec

__all__ = [
    "Backend",
    "BackendInfo",
    "BatchResult",
    "CacheStats",
    "ContextCache",
    "Engine",
    "EngineContext",
    "EngineSpec",
    "EngineStats",
    "ModSRAMBackend",
    "ModSRAMChipBackend",
    "ModSRAMFastBackend",
    "MultiplierBackend",
    "MultiplyResult",
    "PimBaselineBackend",
    "available_backends",
    "get_backend",
    "global_cache_stats",
    "register_backend",
    "reset_global_cache_stats",
]
