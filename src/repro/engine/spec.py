"""A cheap, pickle-safe recipe for rebuilding an :class:`Engine`.

The sharded serving pool (:mod:`repro.service.pool`) runs each shard in
its own OS process, and every worker needs an engine of its own — engines
hold live multiplier state and an LRU context cache, neither of which
should cross a process boundary.  :class:`EngineSpec` captures the four
constructor inputs that *define* an engine (backend registry name, curve
name, default modulus, cache capacity) as plain picklable values, so the
parent ships the spec over the wire and each worker calls
:meth:`EngineSpec.build` to warm its own private engine.

Only registry-resolvable backends can be specced: a backend passed to the
engine as a live instance has no portable name to rebuild from, unless
that name is also registered (custom backends registered through
:func:`~repro.engine.backend.register_backend` work fine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.engine.engine import Engine

__all__ = ["EngineSpec"]


@dataclass(frozen=True)
class EngineSpec:
    """Everything needed to reconstruct an equivalent :class:`Engine`.

    Two engines built from equal specs are arithmetically interchangeable:
    same backend algorithm, same default modulus resolution, same cache
    capacity.  Their *runtime* state (context caches, operation counters)
    is of course independent — that is the point.
    """

    #: Backend registry name (``"compiled"``, ``"r4csa-lut"``,
    #: ``"montgomery"``, ...).  The default is the codegen backend: a
    #: spec is what ships to pool shards and cluster worker nodes, and
    #: those want the fastest bit-identical kernel unless told otherwise.
    backend: str = "compiled"
    #: Named curve whose base field becomes the default modulus.
    curve: Optional[str] = None
    #: Explicit default modulus (overrides ``curve``'s base field).
    modulus: Optional[int] = None
    #: Maximum resident ``(backend, modulus)`` contexts.
    cache_size: int = 32

    def __post_init__(self) -> None:
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigurationError(
                f"EngineSpec needs a backend registry name, got {self.backend!r}"
            )
        if self.cache_size < 1:
            raise ConfigurationError(
                f"cache_size must be positive, got {self.cache_size}"
            )

    def validate(self) -> "EngineSpec":
        """Fail fast (in the parent) if the backend name cannot resolve."""
        from repro.engine.backend import get_backend

        get_backend(self.backend)  # raises ConfigurationError when unknown
        return self

    def build(self) -> "Engine":
        """A fresh engine with this spec's configuration (cold caches)."""
        from repro.engine.engine import Engine

        return Engine(
            backend=self.backend,
            curve=self.curve,
            modulus=self.modulus,
            cache_size=self.cache_size,
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-value form (what actually crosses the process boundary)."""
        return {
            "backend": self.backend,
            "curve": self.curve,
            "modulus": self.modulus,
            "cache_size": self.cache_size,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EngineSpec":
        """Rebuild a spec from :meth:`as_dict` output."""
        modulus = data.get("modulus")
        return cls(
            backend=str(data["backend"]),
            curve=(None if data.get("curve") is None else str(data["curve"])),
            modulus=None if modulus is None else int(modulus),
            cache_size=int(data.get("cache_size", 32)),
        )
