"""The unified entry point for every arithmetic backend.

:class:`Engine` is the facade the rest of the library (and external users)
go through instead of wiring multipliers, accelerators and fields together
by hand::

    >>> from repro.engine import Engine
    >>> engine = Engine(backend="r4csa-lut", curve="bn254")
    >>> int(engine.multiply(12345, 67890))  # doctest: +SKIP
    838102050

Behind the facade sits an LRU context cache keyed by ``(backend, modulus)``:
R4CSA-LUT overflow tables, Montgomery/Barrett constants and ModSRAM macro
sizing are derived once per modulus and shared across the ECC, ZKP and
analysis layers.  :meth:`Engine.multiply_batch` validates once and runs the
backend's inner loop directly, which is measurably faster than per-call
dispatch on NTT/MSM-sized workloads (see
``benchmarks/bench_engine_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.algorithms.base import ModularMultiplier, MultiplierStats
from repro.engine.backend import (
    Backend,
    BackendInfo,
    EngineContext,
    get_backend,
)
from repro.engine.cache import CacheStats, ContextCache
from repro.errors import ConfigurationError, ModulusError, OperandRangeError

__all__ = ["Engine", "EngineStats", "MultiplyResult", "BatchResult"]


def _resolve_curve_spec(name: str):
    """Look up a named curve spec, with the engine's error message."""
    from repro.ecc.curves_data import CURVE_SPECS

    key = name.lower()
    if key not in CURVE_SPECS:
        raise ConfigurationError(
            f"unknown curve {name!r}; available: {sorted(CURVE_SPECS)}"
        )
    return CURVE_SPECS[key]


@dataclass(frozen=True)
class MultiplyResult:
    """One modular product plus the execution metadata around it."""

    value: int
    backend: str
    modulus: int
    bitwidth: int
    #: Analytic hardware cycles of the operation(s), ``None`` when the
    #: backend has no cycle model.
    modeled_cycles: Optional[int]
    #: Whether the per-modulus context was already resident in the cache.
    cache_hit: bool
    #: Backend multiplications performed (1 for multiply, more for power).
    operations: int = 1

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MultiplyResult):
            return other.value == self.value and other.modulus == self.modulus
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        # Must match the int it compares equal to; results under different
        # moduli may collide, which is fine.
        return hash(self.value)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by ``repro --json``)."""
        return {
            "value": self.value,
            "value_hex": hex(self.value),
            "backend": self.backend,
            "modulus": self.modulus,
            "bitwidth": self.bitwidth,
            "modeled_cycles": self.modeled_cycles,
            "cache_hit": self.cache_hit,
            "operations": self.operations,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MultiplyResult":
        """Rebuild a result (value plus cycle metadata) from :meth:`as_dict`.

        Lets experiment payloads and cached JSON carry engine results
        without losing the execution metadata around the product.
        """
        cycles = data.get("modeled_cycles")
        return cls(
            value=int(data["value"]),
            backend=str(data["backend"]),
            modulus=int(data["modulus"]),
            bitwidth=int(data["bitwidth"]),
            modeled_cycles=None if cycles is None else int(cycles),
            cache_hit=bool(data.get("cache_hit", False)),
            operations=int(data.get("operations", 1)),
        )


@dataclass(frozen=True)
class BatchResult:
    """Products of one batched run plus aggregate statistics."""

    values: Tuple[int, ...]
    backend: str
    modulus: int
    bitwidth: int
    #: Analytic hardware cycles for the whole batch (``None`` without a model).
    modeled_cycles: Optional[int]
    #: Whether the per-modulus context was already resident in the cache.
    cache_hit: bool
    #: Operation-counter deltas accumulated by the backend over the batch.
    stats: MultiplierStats

    @property
    def count(self) -> int:
        """Number of products in the batch."""
        return len(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __getitem__(self, index: int) -> int:
        return self.values[index]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by ``repro batch --json``)."""
        return {
            "values": list(self.values),
            "count": self.count,
            "backend": self.backend,
            "modulus": self.modulus,
            "bitwidth": self.bitwidth,
            "modeled_cycles": self.modeled_cycles,
            "cache_hit": self.cache_hit,
            "stats": self.stats.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BatchResult":
        """Rebuild a batch result (values, cycles, stats) from :meth:`as_dict`."""
        cycles = data.get("modeled_cycles")
        return cls(
            values=tuple(int(value) for value in data["values"]),
            backend=str(data["backend"]),
            modulus=int(data["modulus"]),
            bitwidth=int(data["bitwidth"]),
            modeled_cycles=None if cycles is None else int(cycles),
            cache_hit=bool(data.get("cache_hit", False)),
            stats=MultiplierStats.from_dict(dict(data.get("stats", {}))),
        )


@dataclass(frozen=True)
class EngineStats:
    """One engine's operation counters plus its context-cache counters.

    Behaves like the :class:`MultiplierStats` it wraps (every counter
    attribute delegates), with the cache hit/miss/eviction accounting the
    serving layer watches exposed alongside as :attr:`cache`.
    """

    operations: MultiplierStats
    cache: CacheStats

    def __getattr__(self, name: str):
        # Only reached for attributes not on EngineStats itself: delegate
        # the MultiplierStats counters (multiplications, iterations, ...).
        # Dunder/field names must fail plainly (pickling probes them before
        # the fields exist, which would otherwise recurse).
        if name.startswith("_") or name in ("operations", "cache"):
            raise AttributeError(name)
        return getattr(self.operations, name)

    def as_dict(self) -> Dict[str, object]:
        """Counters as a plain dictionary, cache counters under ``cache``."""
        return {**self.operations.as_dict(), "cache": self.cache.as_dict()}


class Engine:
    """One batched, context-cached entry point for every arithmetic backend.

    Parameters
    ----------
    backend:
        Registry name (``"r4csa-lut"``, ``"montgomery"``, ``"modsram"``,
        ``"pim-bpntt"``, ...) or a :class:`Backend` instance.
    curve:
        Optional named curve (``"bn254"``, ``"secp256k1"``, ``"p256"``);
        its base-field prime becomes the default modulus and its scalar
        field the default NTT modulus.
    modulus:
        Explicit default modulus (overrides ``curve``'s base field).
    cache_size:
        Maximum number of resident ``(backend, modulus)`` contexts.
    """

    def __init__(
        self,
        backend: Union[str, Backend] = "r4csa-lut",
        curve: Optional[str] = None,
        modulus: Optional[int] = None,
        cache_size: int = 32,
    ) -> None:
        self._backend = backend if isinstance(backend, Backend) else get_backend(backend)
        self._retired_stats = MultiplierStats()
        self._cache = ContextCache(cache_size, on_evict=self._retire_context)
        self._curve_spec = None if curve is None else _resolve_curve_spec(curve)
        self._default_modulus = modulus
        if self._default_modulus is None and self._curve_spec is not None:
            self._default_modulus = self._curve_spec.field_modulus

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> Backend:
        """The backend this engine drives."""
        return self._backend

    @property
    def info(self) -> BackendInfo:
        """Capability metadata of the configured backend."""
        return self._backend.info

    @property
    def default_modulus(self) -> Optional[int]:
        """The modulus used when a call does not pass one explicitly."""
        return self._default_modulus

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss statistics of the context cache."""
        return self._cache.stats

    @property
    def cache_size(self) -> int:
        """Number of contexts currently resident."""
        return len(self._cache)

    def stats(self) -> EngineStats:
        """Aggregate operation counters across every context (live + evicted).

        Always a fresh snapshot — mutating it never touches the engine's
        own accounting.  The returned :class:`EngineStats` also carries the
        context cache's hit/miss/eviction counters (``stats().cache``), so
        serving-layer cache behaviour is observable from one call.
        """
        merged = self._retired_stats.merged_with(MultiplierStats())
        for context in self._cache.contexts():
            merged = merged.merged_with(context.stats)
        return EngineStats(operations=merged, cache=self._cache.stats.snapshot())

    def spec(self) -> "EngineSpec":
        """This engine's configuration as a portable, pickle-safe recipe.

        The serving pool ships the spec to worker processes, each of which
        rebuilds an equivalent engine with :meth:`EngineSpec.build`.  Only
        registry-resolvable backends can be specced: an engine wrapping an
        unregistered :class:`Backend` *instance* has no portable name.
        """
        from repro.engine.backend import get_backend
        from repro.engine.spec import EngineSpec

        name = self.info.name
        try:
            registered = get_backend(name)
        except ConfigurationError:
            registered = None
        if registered is not self._backend:
            raise ConfigurationError(
                f"engine backend {name!r} is an unregistered instance; "
                "register it (register_backend) before deriving a spec"
            )
        return EngineSpec(
            backend=name,
            curve=None if self._curve_spec is None else self._curve_spec.name,
            modulus=self._default_modulus,
            cache_size=self._cache.max_entries,
        )

    def describe(self) -> Dict[str, object]:
        """Engine configuration and state as a JSON-friendly dictionary."""
        return {
            "backend": self.info.as_dict(),
            "curve": self._curve_spec.name if self._curve_spec else None,
            "default_modulus": self._default_modulus,
            "cache": {
                "resident_contexts": len(self._cache),
                "max_entries": self._cache.max_entries,
                **self._cache.stats.as_dict(),
            },
            # Operation counters only: the cache counters already appear
            # (with residency) under "cache" above.
            "stats": self.stats().operations.as_dict(),
        }

    def _retire_context(self, context: EngineContext) -> None:
        self._retired_stats = self._retired_stats.merged_with(context.stats)

    def clear_cache(self) -> None:
        """Evict every cached context (their stats are retained)."""
        self._cache.clear()

    # ------------------------------------------------------------------ #
    # context access
    # ------------------------------------------------------------------ #
    def _resolve_modulus(self, modulus: Optional[int]) -> int:
        if modulus is not None:
            return modulus
        if self._default_modulus is None:
            raise ModulusError(
                "no modulus given and the engine has no default; construct "
                "the Engine with curve=... or modulus=..., or pass modulus "
                "explicitly"
            )
        return self._default_modulus

    def context(self, modulus: Optional[int] = None) -> EngineContext:
        """The warmed per-modulus context (created and cached on first use)."""
        context, _ = self._lookup(modulus)
        return context

    def _lookup(self, modulus: Optional[int]) -> Tuple[EngineContext, bool]:
        return self._cache.get_or_create(self._backend, self._resolve_modulus(modulus))

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def multiply(self, a: int, b: int, modulus: Optional[int] = None) -> MultiplyResult:
        """One validated modular multiplication through the backend."""
        context, hit = self._lookup(modulus)
        value = context.multiplier.multiply(a, b, context.modulus)
        return MultiplyResult(
            value=value,
            backend=context.info.name,
            modulus=context.modulus,
            bitwidth=context.bitwidth,
            modeled_cycles=context.modeled_cycles_per_multiply,
            cache_hit=hit,
        )

    def multiply_batch(
        self,
        pairs: Iterable[Tuple[int, int]],
        modulus: Optional[int] = None,
    ) -> BatchResult:
        """Multiply many operand pairs against one cached context.

        The modulus is resolved and its context fetched exactly once, the
        operands are validated in a single pass, and the loop then calls the
        backend's algorithm body directly — skipping the per-call dispatch,
        validation and result-object overhead of :meth:`multiply`.  The
        per-modulus precomputation therefore does not grow with the batch
        size (see ``tests/engine/test_engine.py``).

        Multipliers that define a ``_multiply_batch(pairs, modulus)`` hook
        (the ``compiled`` backend's flattened kernel loop) get the whole
        validated batch in one call instead of a Python-level loop of
        ``_multiply`` dispatches.
        """
        context, hit = self._lookup(modulus)
        p = context.modulus
        work: List[Tuple[int, int]] = list(pairs)
        for a, b in work:
            if not 0 <= a < p:
                raise OperandRangeError(
                    f"operand a must satisfy 0 <= a < p, got a={a}, p={p}"
                )
            if not 0 <= b < p:
                raise OperandRangeError(
                    f"operand b must satisfy 0 <= b < p, got b={b}, p={p}"
                )

        multiplier = context.multiplier
        before = multiplier.stats.as_dict()
        batch_hook = getattr(multiplier, "_multiply_batch", None)
        if batch_hook is not None:
            values = tuple(batch_hook(work, p))
        else:
            raw = multiplier._multiply
            values = tuple(raw(a, b, p) for a, b in work)
        multiplier.stats.multiplications += len(work)

        delta = MultiplierStats()
        after = multiplier.stats.as_dict()
        for name, total in after.items():
            setattr(delta, name, total - before[name])

        per_call = context.modeled_cycles_per_multiply
        return BatchResult(
            values=values,
            backend=context.info.name,
            modulus=p,
            bitwidth=context.bitwidth,
            modeled_cycles=None if per_call is None else per_call * len(work),
            cache_hit=hit,
            stats=delta,
        )

    def power(
        self, base: int, exponent: int, modulus: Optional[int] = None
    ) -> MultiplyResult:
        """``base ** exponent mod p`` by square-and-multiply on the backend."""
        if exponent < 0:
            raise OperandRangeError(
                f"exponent must be non-negative, got {exponent}"
            )
        context, hit = self._lookup(modulus)
        p = context.modulus
        multiplier = context.multiplier
        result = 1 % p
        square = base % p
        remaining = exponent
        operations = 0
        while remaining:
            if remaining & 1:
                result = multiplier.multiply(result, square, p)
                operations += 1
            remaining >>= 1
            if remaining:
                square = multiplier.multiply(square, square, p)
                operations += 1
        per_call = context.modeled_cycles_per_multiply
        return MultiplyResult(
            value=result,
            backend=context.info.name,
            modulus=p,
            bitwidth=context.bitwidth,
            modeled_cycles=None if per_call is None else per_call * operations,
            cache_hit=hit,
            operations=operations,
        )

    # ------------------------------------------------------------------ #
    # application substrates
    # ------------------------------------------------------------------ #
    def field(self, modulus: Optional[int] = None):
        """A :class:`~repro.ecc.field.PrimeField` backed by this engine.

        The field shares the cached context's multiplier, so ECC code built
        on it reuses the same per-modulus precomputation as every other
        caller of this engine.
        """
        from repro.ecc.field import PrimeField

        context = self.context(modulus)
        cached = context.extras.get("field")
        if cached is None:
            cached = PrimeField(context.modulus, multiplier=context.multiplier)
            context.extras["field"] = cached
        return cached

    def curve(self, name: Optional[str] = None):
        """An engine-backed :class:`~repro.ecc.curve.EllipticCurve`.

        ``name`` defaults to the curve the engine was constructed with.
        """
        from repro.ecc.curves_data import build_curve

        if name is None:
            if self._curve_spec is None:
                raise ConfigurationError(
                    "no curve name given and the engine was constructed "
                    "without one"
                )
            spec = self._curve_spec
        else:
            spec = _resolve_curve_spec(name)
        context = self.context(spec.field_modulus)
        cache_key = f"curve:{spec.name}"
        cached = context.extras.get(cache_key)
        if cached is None:
            cached = build_curve(spec, field=self.field(spec.field_modulus))
            context.extras[cache_key] = cached
        return cached

    def ntt(self, size: int, modulus: Optional[int] = None):
        """An engine-backed :class:`~repro.zkp.ntt.NttContext`.

        When the engine was constructed with a curve that defines a scalar
        field (BN254), that NTT-friendly prime is the default modulus here —
        the base field prime generally is not NTT friendly.
        """
        from repro.zkp.ntt import NttContext

        if modulus is None and self._curve_spec is not None:
            modulus = self._curve_spec.scalar_field_modulus
        context = self.context(modulus)
        cache_key = f"ntt:{size}"
        cached = context.extras.get(cache_key)
        if cached is None:
            cached = NttContext(
                context.modulus, size, multiplier=context.multiplier
            )
            context.extras[cache_key] = cached
        return cached

    def __repr__(self) -> str:
        default = (
            f", default_modulus={self._default_modulus:#x}"
            if self._default_modulus is not None
            else ""
        )
        return f"Engine(backend={self.info.name!r}{default})"
