"""LRU cache of per-modulus backend contexts.

The paper's data-reuse argument — LUT word lines stay resident in the array
while the modulus is unchanged — generalises to every backend: Montgomery
and Barrett constants, R4CSA-LUT overflow tables and ModSRAM macro sizing
all depend only on ``(backend, modulus)``.  The :class:`ContextCache` keeps
one warmed :class:`~repro.engine.backend.EngineContext` per such pair so the
ECC, ZKP and analysis layers share precomputation instead of re-deriving it
per call.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.engine.backend import Backend, EngineContext

__all__ = [
    "CacheStats",
    "ContextCache",
    "global_cache_stats",
    "reset_global_cache_stats",
]


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ContextCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, float]:
        """Stats as a plain dictionary (for reports and ``--json`` output)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """A new stats object with both operands' counters summed.

        The serving pool uses this to roll the per-worker context-cache
        counters (each worker process owns a private cache) into one
        cross-process view.
        """
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "CacheStats":
        """Rebuild counters from :meth:`as_dict` output (wire format)."""
        return cls(
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            evictions=int(data.get("evictions", 0)),
        )

    def snapshot(self) -> "CacheStats":
        """An independent copy (mutating it never touches the original)."""
        return CacheStats(
            hits=self.hits, misses=self.misses, evictions=self.evictions
        )

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.evictions = 0


#: Process-wide observability: every live :class:`ContextCache` registers
#: here, and the counters of collected caches fold into a retired total,
#: so ``repro backends --json`` and the serving layer can report
#: process-wide cache behaviour *without* the hot lookup path ever taking
#: a global lock — the totals are summed lazily at read time.
_CACHES: "weakref.WeakSet[ContextCache]" = weakref.WeakSet()
_RETIRED = CacheStats()
_BASELINE = CacheStats()
# Re-entrant: a GC pass triggered by an allocation made while this lock is
# held can run a dead cache's finalize callback (_fold_retired) on the same
# thread, which must be able to re-acquire the lock instead of deadlocking.
_GLOBAL_LOCK = threading.RLock()


def _fold_retired(stats: CacheStats) -> None:
    with _GLOBAL_LOCK:
        _RETIRED.hits += stats.hits
        _RETIRED.misses += stats.misses
        _RETIRED.evictions += stats.evictions


def _current_totals() -> CacheStats:
    with _GLOBAL_LOCK:
        totals = _RETIRED.snapshot()
        for cache in _CACHES:
            stats = cache.stats
            totals.hits += stats.hits
            totals.misses += stats.misses
            totals.evictions += stats.evictions
    return totals


def global_cache_stats() -> CacheStats:
    """Snapshot of the process-wide context-cache counters."""
    totals = _current_totals()
    with _GLOBAL_LOCK:
        return CacheStats(
            hits=max(totals.hits - _BASELINE.hits, 0),
            misses=max(totals.misses - _BASELINE.misses, 0),
            evictions=max(totals.evictions - _BASELINE.evictions, 0),
        )


def reset_global_cache_stats() -> None:
    """Zero the process-wide view (test isolation).

    Live caches keep their own counters; the global view simply rebases
    against the current totals.
    """
    totals = _current_totals()
    with _GLOBAL_LOCK:
        _BASELINE.hits = totals.hits
        _BASELINE.misses = totals.misses
        _BASELINE.evictions = totals.evictions


class ContextCache:
    """Least-recently-used cache keyed by ``(backend name, modulus)``.

    ``on_evict`` (if given) is called with every evicted context, letting the
    owning :class:`~repro.engine.engine.Engine` fold the evicted context's
    operation statistics into its retired totals.

    Every operation (lookup, eviction, stats accounting) runs under one
    re-entrant lock, so concurrent runner threads can share a cache without
    corrupting the LRU order or double-building a context for the same
    modulus.
    """

    def __init__(
        self,
        max_entries: int = 32,
        on_evict: Optional[Callable[["EngineContext"], None]] = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"context cache needs at least one entry, got {max_entries}"
            )
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._on_evict = on_evict
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple[str, int], EngineContext]" = OrderedDict()
        # Process-wide observability: registered while alive, counters
        # folded into the retired totals on collection.
        with _GLOBAL_LOCK:
            _CACHES.add(self)
        weakref.finalize(self, _fold_retired, self.stats)

    def get_or_create(
        self, backend: "Backend", modulus: int
    ) -> Tuple["EngineContext", bool]:
        """Return ``(context, cache_hit)`` for ``(backend, modulus)``.

        On a miss the backend builds (and warms) a fresh context; the least
        recently used entry is evicted once the cache is full.  Context
        creation happens under the lock, so two threads racing on the same
        modulus warm it exactly once.
        """
        key = (backend.info.name, modulus)
        with self._lock:
            context = self._entries.get(key)
            if context is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return context, True

            self.stats.misses += 1
            context = backend.create_context(modulus)
            self._entries[key] = context
            if len(self._entries) > self.max_entries:
                _, evicted = self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self._on_evict is not None:
                    self._on_evict(evicted)
            return context, False

    def contexts(self) -> Tuple["EngineContext", ...]:
        """Every resident context, least recently used first."""
        with self._lock:
            return tuple(self._entries.values())

    def clear(self) -> None:
        """Evict every entry (notifying ``on_evict``) and keep the stats."""
        with self._lock:
            while self._entries:
                _, evicted = self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self._on_evict is not None:
                    self._on_evict(evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ContextCache(entries={len(self._entries)}/{self.max_entries}, "
                f"hits={self.stats.hits}, misses={self.stats.misses})"
            )
