"""Common description of the prior-work PIM designs used in Table 3.

Table 3 of the paper compares ModSRAM against five published PIM designs
(MeNTT, BP-NTT, RM-NTT, CryptoPIM, X-Poly).  Each baseline is captured as a
:class:`PimDesignSpec` — the static facts the table reports (technology,
cell type, array size, frequency, native bitwidths, area) — plus, for the
designs where the paper derives a scaled per-multiplication cycle count, a
cycle model and a row-usage model implemented in the per-design module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, OperandRangeError

__all__ = ["PimDesignSpec", "register_design", "get_design", "available_designs"]


@dataclass(frozen=True)
class PimDesignSpec:
    """Static facts about one PIM design (one column of Table 3)."""

    key: str
    label: str
    application: str
    computation_method: str
    technology_nm: int
    cell_type: str
    array_size: str
    frequency_mhz: float
    native_bitwidths: Tuple[int, ...]
    area_mm2: Optional[float]
    reference: str
    #: Cycles of one modular multiplication scaled to ``n``-bit operands
    #: (``None`` when the source work does not expose a per-multiplication
    #: cycle count, as for the ReRAM designs in Table 3).
    cycle_model: Optional[Callable[[int], int]] = None
    #: SRAM rows (word lines) the design needs to hold one ``n``-bit
    #: modular multiplication's working set (used by Figure 6).
    row_model: Optional[Callable[[int], int]] = None
    notes: str = ""

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Scaled per-multiplication cycle count at ``bitwidth`` bits."""
        if bitwidth <= 0:
            raise OperandRangeError(f"bitwidth must be positive, got {bitwidth}")
        if self.cycle_model is None:
            return None
        return self.cycle_model(bitwidth)

    def rows_required(self, bitwidth: int) -> Optional[int]:
        """Word lines needed for one multiplication's working set."""
        if bitwidth <= 0:
            raise OperandRangeError(f"bitwidth must be positive, got {bitwidth}")
        if self.row_model is None:
            return None
        return self.row_model(bitwidth)

    def latency_us(self, bitwidth: int) -> Optional[float]:
        """Wall-clock latency of one multiplication at the design's clock."""
        cycles = self.cycles(bitwidth)
        if cycles is None:
            return None
        return cycles / self.frequency_mhz

    def as_row(self, bitwidth: int) -> Dict[str, object]:
        """One Table 3 column rendered as a dictionary."""
        return {
            "design": self.label,
            "application": self.application,
            "method": self.computation_method,
            "technology_nm": self.technology_nm,
            "cell_type": self.cell_type,
            "array_size": self.array_size,
            "frequency_mhz": self.frequency_mhz,
            "native_bitwidths": list(self.native_bitwidths),
            "cycles": self.cycles(bitwidth),
            "area_mm2": self.area_mm2,
        }


_REGISTRY: Dict[str, PimDesignSpec] = {}


def register_design(spec: PimDesignSpec) -> PimDesignSpec:
    """Add a design to the global registry (used by the per-design modules)."""
    if spec.key in _REGISTRY:
        raise ConfigurationError(f"design {spec.key!r} already registered")
    _REGISTRY[spec.key] = spec
    return spec


def get_design(key: str) -> PimDesignSpec:
    """Look up a registered design by key."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown design {key!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_designs() -> List[str]:
    """Sorted keys of every registered design."""
    return sorted(_REGISTRY)
