"""MeNTT (Li et al., TVLSI 2022) — bit-serial 6T SRAM PIM for PQC NTT.

MeNTT is the main quantitative baseline of the paper: its bit-serial
modular multiplication needs ``(n+1)**2`` cycles once scaled to an ``n``-bit
operand (66 049 cycles at 256 bits — Table 3), and because operands are
stored *along a bitline* the row requirement grows linearly with the
bitwidth (the paper quotes 1282 rows at 256 bits, §5.4), which is why the
approach cannot scale from the 14/16-bit PQC fields it was built for to ECC
field sizes.
"""

from __future__ import annotations

from repro.baselines.base import PimDesignSpec, register_design

__all__ = ["mentt_cycles", "mentt_rows", "MENTT"]


def mentt_cycles(bitwidth: int) -> int:
    """Scaled cycles of one bit-serial modular multiplication: ``(n+1)**2``."""
    return (bitwidth + 1) ** 2


def mentt_rows(bitwidth: int) -> int:
    """Rows needed when every operand and intermediate lives on one bitline.

    The bit-serial layout keeps the multiplier, multiplicand, modulus and
    the double-width partial result stacked along the bitline: ``5n + 2``
    rows, i.e. 1282 rows for 256-bit operands — the paper's argument for
    why the layout "is impractical for an SRAM bank" at ECC bitwidths.
    """
    return 5 * bitwidth + 2


MENTT = register_design(
    PimDesignSpec(
        key="mentt",
        label="MeNTT",
        application="PQC NTT",
        computation_method="direct",
        technology_nm=65,
        cell_type="6T SRAM",
        array_size="4x162x256",
        frequency_mhz=151.0,
        native_bitwidths=(14, 16, 32),
        area_mm2=0.36,
        reference="Li et al., IEEE TVLSI 30(5), 2022",
        cycle_model=mentt_cycles,
        row_model=mentt_rows,
        notes=(
            "Bit-serial access pattern: operands stored along bitlines, "
            "cycles and rows scale quadratically/linearly with bitwidth."
        ),
    )
)
