"""ReRAM PIM baselines of Table 3: RM-NTT, CryptoPIM and X-Poly.

The three ReRAM designs compute modular multiplication with reduction
*after* a full (analogue, crossbar-based) multiplication, so the paper's
Table 3 carries no per-multiplication cycle count for them; what it reports
— and what these specs capture — is the application, reduction method,
technology, array organisation, frequency, native bitwidths and area, plus
the qualitative criticism of §5.4 (more than 70 % of the RM-NTT / X-Poly
area is analogue-to-digital converters, and CryptoPIM restricts the modulus
to a few friendly values).
"""

from __future__ import annotations

from repro.baselines.base import PimDesignSpec, register_design

__all__ = ["RMNTT", "CRYPTOPIM", "XPOLY", "adc_area_fraction"]

#: Fraction of the RM-NTT / X-Poly macro area occupied by ADCs (§5.4:
#: "more than 70% of the total architecture").
ADC_AREA_FRACTION = 0.70


def adc_area_fraction() -> float:
    """The ADC share of the ReRAM designs' area the paper cites (>70 %)."""
    return ADC_AREA_FRACTION


RMNTT = register_design(
    PimDesignSpec(
        key="rm-ntt",
        label="RM-NTT",
        application="HE NTT",
        computation_method="Montgomery",
        technology_nm=28,
        cell_type="ReRAM",
        array_size="64x4x128x128",
        frequency_mhz=400.0,
        native_bitwidths=(14, 16),
        area_mm2=None,
        reference="Park et al., IEEE JxCDC 8(2), 2022",
        cycle_model=None,
        row_model=None,
        notes=(
            "Crossbar compute-in-memory with reduction after multiplication; "
            "no per-multiplication cycle count; ADC-dominated area."
        ),
    )
)

CRYPTOPIM = register_design(
    PimDesignSpec(
        key="cryptopim",
        label="CryptoPIM",
        application="PQC NTT",
        computation_method="Montgomery/Barrett",
        technology_nm=45,
        cell_type="ReRAM",
        array_size="512x512",
        frequency_mhz=909.0,
        native_bitwidths=(16, 32),
        area_mm2=0.152,
        reference="Nejatollahi et al., DAC 2020",
        cycle_model=None,
        row_model=None,
        notes=(
            "Supports only a small set of friendly moduli, which simplifies "
            "reduction but limits generality (§5.4)."
        ),
    )
)

XPOLY = register_design(
    PimDesignSpec(
        key="x-poly",
        label="X-Poly",
        application="PQC NTT",
        computation_method="Barrett",
        technology_nm=45,
        cell_type="ReRAM",
        array_size="16x128x128",
        frequency_mhz=400.0,
        native_bitwidths=(16,),
        area_mm2=0.27,
        reference="Li et al., arXiv:2307.14557, 2023",
        cycle_model=None,
        row_model=None,
        notes=(
            "Takes the modulus as an input (general), evaluated only in a "
            "simulator; ADCs occupy more than 70% of the architecture."
        ),
    )
)
