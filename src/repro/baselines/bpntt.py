"""BP-NTT (Zhang et al., 2023) — bit-parallel 6T SRAM PIM with Montgomery.

BP-NTT improves on MeNTT by processing operand words bit-parallel and using
Montgomery multiplication to avoid carry propagation inside the NTT
butterfly.  The paper scales its per-multiplication cost to 256 bits as
1465 cycles (Table 3) and criticises the hidden cost: the operands must
already be in Montgomery form, and the transformation cost stops being
negligible at ECC bitwidths.

The cycle model here is a two-parameter fit (``5 n + 185``) through the
published scaled point, structured as ``n`` bit-parallel Montgomery
iterations of five array operations each plus a fixed transform/reduction
overhead; DESIGN.md records it as a fit, not a derivation.
"""

from __future__ import annotations

from repro.baselines.base import PimDesignSpec, register_design

__all__ = ["bpntt_cycles", "bpntt_rows", "bpntt_transform_cycles", "BPNTT"]

#: Array operations per Montgomery iteration in the bit-parallel scheme.
_CYCLES_PER_ITERATION = 5
#: Fixed overhead (operand staging, final reduction) of one multiplication.
_FIXED_OVERHEAD_CYCLES = 185


def bpntt_cycles(bitwidth: int) -> int:
    """Scaled cycles of one bit-parallel Montgomery multiplication."""
    return _CYCLES_PER_ITERATION * bitwidth + _FIXED_OVERHEAD_CYCLES


def bpntt_transform_cycles(bitwidth: int) -> int:
    """Extra cycles to move one operand into (or out of) Montgomery form.

    BP-NTT assumes the Montgomery-form operands are precomputed; the paper's
    §5.4 argues this cost stops being negligible as the bitwidth grows.  The
    conversion is itself one Montgomery multiplication (by ``R² mod p``).
    """
    return bpntt_cycles(bitwidth)


def bpntt_rows(bitwidth: int) -> int:
    """Rows holding one multiplication's working set in the bit-parallel layout.

    Operands are spread bit-parallel across word lines; the working set is
    the two operands, the modulus, the Montgomery constant and two
    double-width intermediates — constant in row count (the *width* is what
    grows), matching the 256-wide / handful-of-rows organisation sketched in
    Figure 6.
    """
    del bitwidth  # the row count is width-independent in this layout
    return 6


BPNTT = register_design(
    PimDesignSpec(
        key="bpntt",
        label="BP-NTT",
        application="PQC NTT",
        computation_method="Montgomery",
        technology_nm=45,
        cell_type="6T SRAM",
        array_size="4x256x256",
        frequency_mhz=3800.0,
        native_bitwidths=(2, 4, 8, 16, 32, 64),
        area_mm2=0.063,
        reference="Zhang et al., arXiv:2303.00173, 2023",
        cycle_model=bpntt_cycles,
        row_model=bpntt_rows,
        notes=(
            "Bit-parallel Montgomery multiplication; assumes operands are "
            "already in Montgomery form (transformation cost excluded)."
        ),
    )
)
