"""Prior-work PIM designs (and this work) used by the Table 3 / Figure 6 comparisons."""

from repro.baselines.base import (
    PimDesignSpec,
    available_designs,
    get_design,
    register_design,
)
from repro.baselines.bpntt import BPNTT, bpntt_cycles, bpntt_rows, bpntt_transform_cycles
from repro.baselines.mentt import MENTT, mentt_cycles, mentt_rows
from repro.baselines.modsram_entry import MODSRAM, modsram_rows
from repro.baselines.reram import CRYPTOPIM, RMNTT, XPOLY, adc_area_fraction

__all__ = [
    "BPNTT",
    "CRYPTOPIM",
    "MENTT",
    "MODSRAM",
    "PimDesignSpec",
    "RMNTT",
    "XPOLY",
    "adc_area_fraction",
    "available_designs",
    "bpntt_cycles",
    "bpntt_rows",
    "bpntt_transform_cycles",
    "get_design",
    "mentt_cycles",
    "mentt_rows",
    "modsram_rows",
    "register_design",
]
