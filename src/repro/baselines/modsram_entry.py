"""Registry entry for this work (ModSRAM) so Table 3 can be built uniformly.

The numbers are produced by the library's own models — the cycle count by
the schedule/accelerator, the area by :class:`repro.modsram.AreaModel`, the
frequency by the timing model — rather than hard-coded, so the Table 3
harness reflects whatever configuration it is asked about.
"""

from __future__ import annotations

from repro.baselines.base import PimDesignSpec, register_design
from repro.core.complexity import cycles_r4csa_lut
from repro.modsram.area import AreaModel
from repro.modsram.config import PAPER_CONFIG


def modsram_rows(bitwidth: int) -> int:
    """Working-set rows: A, B, p, sum, carry and the 13 LUT word lines."""
    del bitwidth  # row count is width-independent; the row *width* scales
    return 3 + 2 + 13


_PAPER_AREA = AreaModel(PAPER_CONFIG)

MODSRAM = register_design(
    PimDesignSpec(
        key="modsram",
        label="This work (ModSRAM)",
        application="ECC",
        computation_method="direct",
        technology_nm=PAPER_CONFIG.technology_nm,
        cell_type="8T SRAM",
        array_size=f"{PAPER_CONFIG.rows}x{PAPER_CONFIG.columns}",
        frequency_mhz=round(PAPER_CONFIG.frequency_mhz, 1),
        native_bitwidths=(256,),
        area_mm2=round(_PAPER_AREA.total_mm2(), 3),
        reference="Ku et al., DAC 2024 (this reproduction)",
        cycle_model=cycles_r4csa_lut,
        row_model=modsram_rows,
        notes="R4CSA-LUT executed in-memory; results in direct form.",
    )
)
