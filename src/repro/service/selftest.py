"""Synthetic multi-tenant traffic against an in-process server.

``repro serve --self-test`` and the ``serving-throughput`` experiment both
drive this: ``tenants`` concurrent clients each fire ``requests`` requests
(operand batches, with every ``graph_every``-th request an executable
product-tree graph), every product is verified against the big-int
reference, and the server's metrics summary comes back as the payload.
Operands are seeded per tenant, so the *work* is reproducible even though
the wall-clock figures are not.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.service.client import Client
from repro.service.server import Server, ServerConfig
from repro.workloads.builders import product_tree_graph

__all__ = ["run_self_test", "self_test"]


async def self_test(
    backend: str = "r4csa-lut",
    curve: str = "bn254",
    tenants: int = 4,
    requests: int = 32,
    pairs_per_request: int = 8,
    graph_every: int = 8,
    graph_leaves: int = 16,
    max_batch: int = 64,
    batch_window_ms: float = 1.0,
    seed: int = 2024,
    workers: int = 0,
) -> Dict[str, object]:
    """Run the traffic mix and return the metrics payload (async form).

    ``workers=0`` (the default) serves inline on the event loop;
    ``workers=N`` shards batch execution across N worker processes
    (:class:`~repro.service.pool.PoolExecutor`) — same products, verified
    the same way, with the pool's per-shard rollup in the summary.
    """
    config = ServerConfig(max_batch=max_batch, batch_window_ms=batch_window_ms)
    async with Server(
        backend=backend, curve=curve, config=config, workers=workers or None
    ) as server:
        modulus = server.engine.default_modulus
        assert modulus is not None
        verified = 0
        failures = 0

        async def tenant_traffic(tenant_index: int) -> None:
            nonlocal verified, failures
            client = Client(server, tenant=f"tenant-{tenant_index}")
            rng = random.Random(seed + tenant_index)
            for request in range(requests):
                if graph_every and request % graph_every == graph_every - 1:
                    leaves = [
                        rng.randrange(1, modulus) for _ in range(graph_leaves)
                    ]
                    response = await client.submit_graph(
                        product_tree_graph(leaves)
                    )
                    reference = 1
                    for leaf in leaves:
                        reference = reference * leaf % modulus
                    expected = (reference,)
                else:
                    batch = [
                        (rng.randrange(modulus), rng.randrange(modulus))
                        for _ in range(pairs_per_request)
                    ]
                    response = await client.multiply_batch(batch)
                    expected = tuple(a * b % modulus for a, b in batch)
                if response.values == expected:
                    verified += 1
                else:  # pragma: no cover - would be an arithmetic bug
                    failures += 1
                # Yield so tenants interleave and the batcher sees mixed
                # traffic rather than one tenant's burst at a time.
                await asyncio.sleep(0)

        await asyncio.gather(
            *(tenant_traffic(index) for index in range(tenants))
        )
        summary = server.metrics_summary()
    summary["verified_requests"] = verified
    summary["failed_requests"] = failures
    summary["tenants"] = tenants
    summary["requests_per_tenant"] = requests
    summary["pairs_per_request"] = pairs_per_request
    summary["workers"] = workers
    if failures:
        raise ServiceError(
            f"self-test verified {verified} requests but {failures} "
            "returned wrong products"
        )
    return summary


def run_self_test(quick: bool = False, **kwargs) -> Dict[str, object]:
    """Synchronous wrapper; ``quick`` shrinks the traffic for CI smoke."""
    if quick:
        kwargs.setdefault("tenants", 2)
        kwargs.setdefault("requests", 8)
        kwargs.setdefault("pairs_per_request", 4)
        kwargs.setdefault("graph_leaves", 8)
    return asyncio.run(self_test(**kwargs))
