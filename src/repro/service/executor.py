"""The execution seam of the serving layer: where coalesced batches run.

The :class:`~repro.service.server.Server` owns admission, batching and
fairness; *where* a formed batch executes is an :class:`Executor`:

* :class:`InlineExecutor` — today's behaviour: the batch runs
  synchronously on the event loop against the server's own engine.  Zero
  overhead, but the GIL caps throughput at one core.
* :class:`~repro.service.pool.PoolExecutor` — the batch is shipped to one
  of N worker processes, each owning a pinned engine with its own warm
  context cache, selected by stable modulus hashing (with spill to the
  least-loaded shard on skew).

Both executors are arithmetically interchangeable: the pool workers build
their engines from the same :class:`~repro.engine.EngineSpec`, so products
are bit-identical across executors (parity-locked by the test suite and
``benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import abc
from typing import ClassVar, Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.engine import CacheStats, Engine
from repro.errors import ServiceError
from repro.workloads.execute import GraphExecution, execute_graph

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.engine.engine import BatchResult
    from repro.workloads.graph import WorkloadGraph

__all__ = ["Executor", "InlineExecutor"]


class Executor(abc.ABC):
    """Where the server's coalesced batches execute.

    The server calls :meth:`execute_pairs` / :meth:`execute_graph` with
    already-validated work (operands range-checked, modulus resolved at
    admission).  Both return the engine-layer result object plus the shard
    index that ran it (``None`` for inline execution).  Executors whose
    :attr:`inline` flag is true are additionally called through the
    synchronous fast path, preserving the single-process server's exact
    dispatch timing.
    """

    #: True when execution happens synchronously on the event loop; the
    #: server then skips task creation and runs the batch in the
    #: dispatcher, exactly like the pre-pool server did.
    inline: ClassVar[bool] = False

    async def start(self) -> None:
        """Bring up execution resources (idempotent)."""

    async def close(self) -> None:
        """Tear down execution resources (idempotent)."""

    def backlog(self) -> int:
        """Dispatched-but-unfinished jobs buffered inside the executor.

        The server adds this to its own queue depth when enforcing
        ``max_pending``: an inline executor finishes each batch before
        the dispatcher forms the next (backlog 0), while a pool buffers
        work in worker queues — without this, admission control would
        stop bounding in-flight work the moment batches leave the
        server's queue.
        """
        return 0

    def execute_pairs_sync(
        self, pairs: Sequence[Tuple[int, int]], modulus: int
    ) -> "BatchResult":
        """Synchronous fast path; required when :attr:`inline` is true."""
        raise ServiceError(
            f"{type(self).__name__} sets inline=True but does not "
            "implement execute_pairs_sync"
        )

    def execute_graph_sync(
        self, graph: "WorkloadGraph", modulus: int
    ) -> GraphExecution:
        """Synchronous fast path; required when :attr:`inline` is true."""
        raise ServiceError(
            f"{type(self).__name__} sets inline=True but does not "
            "implement execute_graph_sync"
        )

    @abc.abstractmethod
    async def execute_pairs(
        self, pairs: Sequence[Tuple[int, int]], modulus: int
    ) -> Tuple["BatchResult", Optional[int]]:
        """Run one flattened operand batch; returns ``(result, shard)``."""

    @abc.abstractmethod
    async def execute_graph(
        self, graph: "WorkloadGraph", modulus: int
    ) -> Tuple[GraphExecution, Optional[int]]:
        """Run one operand-carrying graph; returns ``(execution, shard)``."""

    @abc.abstractmethod
    def cache_stats(self) -> CacheStats:
        """Context-cache counters across every engine this executor drives."""

    @abc.abstractmethod
    def engine_multiplications(self) -> int:
        """Total engine multiplications across every engine it drives."""

    @abc.abstractmethod
    def describe(self) -> Dict[str, object]:
        """JSON-friendly description (kind, workers, per-shard rollups)."""


class InlineExecutor(Executor):
    """Execute batches synchronously on the event loop (the classic path).

    Wraps the server's own engine; the async methods exist for interface
    uniformity but the server uses the ``*_sync`` fast path so dispatch
    behaviour is identical to the pre-executor server.
    """

    inline: ClassVar[bool] = True

    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    # -- synchronous fast path (what the server actually calls) -------- #
    def execute_pairs_sync(
        self, pairs: Sequence[Tuple[int, int]], modulus: int
    ) -> "BatchResult":
        return self.engine.multiply_batch(pairs, modulus)

    def execute_graph_sync(
        self, graph: "WorkloadGraph", modulus: int
    ) -> GraphExecution:
        return execute_graph(self.engine, graph, modulus)

    # -- Executor interface -------------------------------------------- #
    async def execute_pairs(
        self, pairs: Sequence[Tuple[int, int]], modulus: int
    ) -> Tuple["BatchResult", Optional[int]]:
        return self.execute_pairs_sync(pairs, modulus), None

    async def execute_graph(
        self, graph: "WorkloadGraph", modulus: int
    ) -> Tuple[GraphExecution, Optional[int]]:
        return self.execute_graph_sync(graph, modulus), None

    def cache_stats(self) -> CacheStats:
        return self.engine.stats().cache

    def engine_multiplications(self) -> int:
        return self.engine.stats().multiplications

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "inline",
            "workers": 1,
            "backend": self.engine.info.name,
        }

    def __repr__(self) -> str:
        return f"InlineExecutor(engine={self.engine!r})"
