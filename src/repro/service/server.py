"""The asyncio serving layer: admission, batching, fairness, dispatch.

:class:`Server` turns the synchronous, single-caller
:class:`~repro.engine.Engine` into an online service:

* **submission queues** — every request (single multiply, operand batch,
  or operand-carrying :class:`~repro.workloads.graph.WorkloadGraph`)
  enqueues per tenant and resolves an ``asyncio`` future;
* **admission control / backpressure** — global and per-tenant pending
  caps reject new work with :class:`AdmissionError` instead of letting the
  queue grow without bound;
* **deadline-aware batching** — the dispatcher lingers up to the batch
  window to coalesce small requests into one
  :meth:`~repro.engine.Engine.multiply_batch` call per modulus, but never
  lingers past the tightest deadline in the batch, and expires jobs whose
  deadline passed while queued;
* **per-tenant fairness** — the collector drains tenant queues round-robin
  so one chatty tenant cannot starve the rest;
* **metrics** — latency percentiles, throughput, batch sizes, per-tenant
  completions and the engine's context-cache counters
  (:meth:`Server.metrics_summary`).

*Where* a formed batch executes is pluggable (the :class:`Executor`
seam): by default batches run inline on the event loop — zero overhead,
one core — while ``workers=N`` (or an explicit
:class:`~repro.service.pool.PoolExecutor`) shards them across N worker
processes with per-shard warm context caches, escaping the GIL.  Either
way the serving value starts with the coalescing — many tiny requests
become few hot, context-cached batch calls.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.engine import Engine
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineError,
    OperandRangeError,
    ServiceError,
)
from repro.service.executor import Executor, InlineExecutor
from repro.service.metrics import ServiceMetrics
from repro.workloads.graph import WorkloadGraph

__all__ = ["ServerConfig", "Response", "Server"]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the serving layer."""

    #: Operand pairs coalesced into one ``multiply_batch`` call at most
    #: (a single request larger than this still runs, alone).
    max_batch: int = 64
    #: How long the dispatcher lingers for more work before flushing (ms).
    batch_window_ms: float = 1.0
    #: Global admission limit: queued requests beyond this are rejected.
    max_pending: int = 1024
    #: Per-tenant admission limit (fairness at the door).
    max_pending_per_tenant: int = 256
    #: Default per-request deadline (``None`` = no deadline).
    default_deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.max_pending < 1 or self.max_pending_per_tenant < 1:
            raise ConfigurationError("pending limits must be positive")
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )


@dataclass(frozen=True)
class Response:
    """What a completed request resolves to."""

    #: Products, in request order (one for a single multiply; the sink
    #: products for a graph).
    values: Tuple[int, ...]
    kind: str
    backend: str
    modulus: int
    tenant: str
    #: Operand pairs that shared this request's ``multiply_batch`` call
    #: (graph requests: the graph's node count).
    batched_pairs: int
    #: Analytic hardware cycles of this request's share (``None`` without
    #: a cycle model).
    modeled_cycles: Optional[int]
    #: Queue wait plus execution, as observed by the server.
    latency_ms: float
    queue_ms: float
    #: Pool shard that executed the request (``None`` for inline execution).
    shard: Optional[int] = None

    @property
    def value(self) -> int:
        """The single product (raises unless exactly one)."""
        if len(self.values) != 1:
            raise ConfigurationError(
                f"response carries {len(self.values)} values; use .values"
            )
        return self.values[0]


@dataclass
class _Job:
    kind: str  # "pairs" | "graph"
    payload: object
    modulus: Optional[int]
    tenant: str
    priority: int
    deadline: Optional[float]  # absolute loop time, None = none
    enqueued_at: float
    future: "asyncio.Future[Response]"
    pairs: int  # batching weight


class Server:
    """Async serving facade over one :class:`~repro.engine.Engine`.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`::

        async with Server(backend="r4csa-lut", curve="bn254") as server:
            response = await server.multiply(3, 5)
            tree_response = await server.submit_graph(tree)

    One dispatcher task forms the batches; submissions only enqueue, so
    any number of client tasks can share a server.  Execution is the
    executor's business: the default :class:`InlineExecutor` runs batches
    on the event loop exactly like the classic single-process server,
    while ``workers=N`` shards them across N engine-owning OS processes
    (:class:`~repro.service.pool.PoolExecutor`) — same products, more
    cores.
    """

    def __init__(
        self,
        engine: Optional[Engine] = None,
        backend: str = "r4csa-lut",
        curve: Optional[str] = None,
        modulus: Optional[int] = None,
        config: Optional[ServerConfig] = None,
        executor: Optional[Executor] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.engine = engine or Engine(
            backend=backend, curve=curve, modulus=modulus
        )
        if executor is not None and workers:
            raise ConfigurationError(
                "pass either executor= or workers=, not both"
            )
        if executor is not None:
            self._executor = executor
            self._owns_executor = False
        elif workers:
            from repro.service.pool import PoolExecutor

            self._executor = PoolExecutor(
                spec=self.engine.spec(), workers=workers
            )
            self._owns_executor = True
        else:
            self._executor = InlineExecutor(self.engine)
            self._owns_executor = True
        self.config = config or ServerConfig()
        self.metrics = ServiceMetrics()
        self._tenants: "OrderedDict[str, Deque[_Job]]" = OrderedDict()
        self._rr: List[str] = []
        self._pending = 0
        self._pending_by_tenant: Dict[str, int] = {}
        #: Queued jobs with a non-default priority, per tenant: lets the
        #: dispatcher take the O(1) FIFO pop in the common all-equal case.
        self._priority_pending: Dict[str, int] = {}
        self._wakeup: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._inflight: Set[asyncio.Task] = set()
        #: Requests handed to a non-inline executor and not yet resolved
        #: (admission still counts them against ``max_pending``).
        self._executing = 0
        self._stopping = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        """Whether the dispatcher task is live."""
        return self._dispatcher is not None and not self._dispatcher.done()

    @property
    def executor(self) -> Executor:
        """The execution seam batches run through (inline or pool)."""
        return self._executor

    async def start(self) -> "Server":
        """Start the executor and the dispatcher (idempotent)."""
        if self.running:
            return self
        self._stopping = False
        self._wakeup = asyncio.Event()
        await self._executor.start()
        self.metrics.start()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the dispatcher; ``drain`` finishes queued work first."""
        if self._dispatcher is None:
            return
        self._stopping = True
        if not drain:
            for queue in self._tenants.values():
                for job in queue:
                    if not job.future.done():
                        job.future.set_exception(
                            ServiceError("server stopped before dispatch")
                        )
            self._tenants.clear()
            self._rr.clear()
            self._pending_by_tenant.clear()
            self._priority_pending.clear()
            self._pending = 0
        assert self._wakeup is not None
        self._wakeup.set()
        await self._dispatcher
        self._dispatcher = None
        if not drain:
            for task in list(self._inflight):
                task.cancel()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self.metrics.stop()
        if self._owns_executor:
            await self._executor.close()

    async def __aenter__(self) -> "Server":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop(drain=exc_info[0] is None)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    async def multiply(
        self,
        a: int,
        b: int,
        modulus: Optional[int] = None,
        tenant: str = "default",
        priority: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> Response:
        """Submit one multiplication; resolves when its batch executes."""
        return await self._submit(
            "pairs", [(int(a), int(b))], modulus, tenant, priority,
            deadline_ms, pairs=1,
        )

    async def multiply_batch(
        self,
        pairs: Sequence[Tuple[int, int]],
        modulus: Optional[int] = None,
        tenant: str = "default",
        priority: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> Response:
        """Submit a batch of operand pairs as one request."""
        work = [(int(a), int(b)) for a, b in pairs]
        if not work:
            raise ConfigurationError("multiply_batch needs at least one pair")
        return await self._submit(
            "pairs", work, modulus, tenant, priority, deadline_ms, pairs=len(work)
        )

    async def submit_graph(
        self,
        graph: WorkloadGraph,
        modulus: Optional[int] = None,
        tenant: str = "default",
        priority: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> Response:
        """Submit an operand-carrying workload graph as one request."""
        if not graph.executable:
            raise ConfigurationError(
                f"graph {graph.name!r} is structural; the server can only "
                "execute operand-carrying graphs"
            )
        return await self._submit(
            "graph", graph, modulus, tenant, priority, deadline_ms,
            pairs=len(graph),
        )

    def _resolve_modulus(self, modulus: Optional[int]) -> int:
        """The effective modulus of a request, resolved at admission.

        Resolving here (rather than at dispatch) means requests passing
        the default explicitly coalesce with requests passing ``None``,
        and a missing modulus fails the submitting caller instead of a
        whole batch.
        """
        if modulus is not None:
            return modulus
        default = self.engine.default_modulus
        if default is None:
            from repro.errors import ModulusError

            raise ModulusError(
                "no modulus given and the server's engine has no default"
            )
        return default

    async def _submit(
        self,
        kind: str,
        payload: object,
        modulus: Optional[int],
        tenant: str,
        priority: int,
        deadline_ms: Optional[float],
        pairs: int,
    ) -> Response:
        if not self.running:
            raise ServiceError("server is not running; use 'async with Server(...)'")
        if self._stopping:
            raise ServiceError("server is stopping; submission refused")
        modulus = self._resolve_modulus(modulus)
        if kind == "pairs":
            # Validate at admission: a bad operand fails *this* caller,
            # never the other requests its batch would have coalesced with.
            for a, b in payload:  # type: ignore[union-attr]
                if not 0 <= a < modulus or not 0 <= b < modulus:
                    raise OperandRangeError(
                        f"operands must satisfy 0 <= a, b < p, got "
                        f"a={a}, b={b}, p={modulus}"
                    )
        # The admission bound covers work buffered anywhere between here
        # and completion: requests in the server's own queues plus
        # requests inside batches already handed to the executor (a pool
        # buffers jobs in worker queues; inline execution finishes before
        # the next batch forms, keeping the second term at zero).
        if self._pending + self._executing >= self.config.max_pending:
            self.metrics.rejected_requests += 1
            raise AdmissionError(
                f"server queue full ({self.config.max_pending} pending)"
            )
        if (
            self._pending_by_tenant.get(tenant, 0)
            >= self.config.max_pending_per_tenant
        ):
            self.metrics.rejected_requests += 1
            raise AdmissionError(
                f"tenant {tenant!r} queue full "
                f"({self.config.max_pending_per_tenant} pending)"
            )
        loop = asyncio.get_running_loop()
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        job = _Job(
            kind=kind,
            payload=payload,
            modulus=modulus,
            tenant=tenant,
            priority=priority,
            deadline=(
                None if deadline_ms is None else loop.time() + deadline_ms / 1e3
            ),
            enqueued_at=loop.time(),
            future=loop.create_future(),
            pairs=pairs,
        )
        if tenant not in self._tenants:
            self._tenants[tenant] = deque()
            self._rr.append(tenant)
        self._tenants[tenant].append(job)
        self._pending += 1
        self._pending_by_tenant[tenant] = (
            self._pending_by_tenant.get(tenant, 0) + 1
        )
        if priority:
            self._priority_pending[tenant] = (
                self._priority_pending.get(tenant, 0) + 1
            )
        assert self._wakeup is not None
        self._wakeup.set()
        return await job.future

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _take_ready(self) -> Optional[_Job]:
        """Pop the next job round-robin across non-empty tenant queues.

        ``_rr`` is the rotation itself: the tenant at its head serves one
        job and moves to the tail.  Within a tenant's queue the
        highest-priority job goes first (FIFO among equals); across
        tenants the rotation stays fair regardless of priorities.  A
        tenant whose queue drains is forgotten entirely (queue, rotation
        slot and pending counter), so a long-lived server visited by many
        distinct tenants never accumulates empty state and dispatch stays
        proportional to the *active* tenant count.
        """
        while self._rr:
            tenant = self._rr.pop(0)
            queue = self._tenants[tenant]
            if not queue:
                self._forget(tenant)
                continue
            if self._priority_pending.get(tenant, 0):
                best_index = 0
                best_priority = None
                for index, candidate in enumerate(queue):
                    if best_priority is None or candidate.priority > best_priority:
                        best_index, best_priority = index, candidate.priority
                job = queue[best_index]
                del queue[best_index]
            else:
                job = queue.popleft()  # all default priority: O(1) FIFO
            if job.priority:
                self._priority_pending[tenant] -= 1
            self._pending -= 1
            self._pending_by_tenant[tenant] -= 1
            if queue:
                self._rr.append(tenant)
            else:
                self._forget(tenant)
            return job
        return None

    def _forget(self, tenant: str) -> None:
        """Drop a drained tenant's queue and counters (not its metrics)."""
        del self._tenants[tenant]
        self._pending_by_tenant.pop(tenant, None)
        self._priority_pending.pop(tenant, None)

    def _push_front(self, job: _Job) -> None:
        """Return a popped job to the head of its tenant queue (unpop)."""
        if job.tenant not in self._tenants:
            self._tenants[job.tenant] = deque()
            self._rr.insert(0, job.tenant)  # stays next in the rotation
        self._tenants[job.tenant].appendleft(job)
        self._pending += 1
        self._pending_by_tenant[job.tenant] = (
            self._pending_by_tenant.get(job.tenant, 0) + 1
        )
        if job.priority:
            self._priority_pending[job.tenant] = (
                self._priority_pending.get(job.tenant, 0) + 1
            )

    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        loop = asyncio.get_running_loop()
        while True:
            job = self._take_ready()
            if job is None:
                if self._stopping:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            batch = [job]
            weight = job.pairs
            # Linger up to the batch window for more work, but never past
            # the tightest deadline already in the batch.
            flush_at = loop.time() + self.config.batch_window_ms / 1e3
            if job.deadline is not None:
                flush_at = min(flush_at, job.deadline)
            while weight < self.config.max_batch:
                more = self._take_ready()
                if more is not None:
                    if weight + more.pairs > self.config.max_batch:
                        # Honour the cap: the job waits for the next batch.
                        self._push_front(more)
                        break
                    batch.append(more)
                    weight += more.pairs
                    if more.deadline is not None:
                        flush_at = min(flush_at, more.deadline)
                    continue
                remaining = flush_at - loop.time()
                if remaining <= 0 or self._stopping:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(), remaining)
                except asyncio.TimeoutError:
                    break
            self._execute(batch)

    def _execute(self, batch: List[_Job]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[_Job] = []
        for job in batch:
            if job.deadline is not None and now > job.deadline:
                self.metrics.deadline_misses += 1
                if not job.future.done():
                    job.future.set_exception(
                        DeadlineError(
                            f"deadline exceeded before dispatch "
                            f"(queued {(now - job.enqueued_at) * 1e3:.2f} ms)"
                        )
                    )
                continue
            live.append(job)

        # One multiply_batch per modulus group (moduli were resolved at
        # admission, so None never splits a group); graphs run
        # level-batched.  Inline execution happens right here in the
        # dispatcher (the classic single-process behaviour); a pool
        # executor gets one task per group so the dispatcher keeps
        # forming batches while shards work.
        groups: "OrderedDict[int, List[_Job]]" = OrderedDict()
        graphs: List[_Job] = []
        for job in live:
            if job.kind == "pairs":
                groups.setdefault(job.modulus, []).append(job)
            else:
                graphs.append(job)
        if self._executor.inline:
            for modulus, jobs in groups.items():
                self._execute_pairs_group(jobs, modulus, now)
            for job in graphs:
                self._execute_graph_job(job, now)
        else:
            for modulus, jobs in groups.items():
                self._spawn(
                    self._execute_pairs_group_async(jobs, modulus, now),
                    requests=len(jobs),
                )
            for job in graphs:
                self._spawn(self._execute_graph_job_async(job, now), requests=1)

    def _spawn(self, coroutine, requests: int) -> None:
        """Track one in-flight execution task (drained by :meth:`stop`).

        ``requests`` keeps the admission bound honest while the batch is
        buffered inside the executor: the count rejoins ``_pending`` in
        spirit until every job in the group resolves.
        """
        self._executing += requests

        async def runner():
            try:
                await coroutine
            finally:
                self._executing -= requests

        task = asyncio.get_running_loop().create_task(runner())
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    @staticmethod
    def _fail_jobs(jobs: List[_Job], error: Exception) -> None:
        for job in jobs:
            if not job.future.done():
                job.future.set_exception(error)

    # -- pairs ---------------------------------------------------------- #
    def _execute_pairs_group(
        self, jobs: List[_Job], modulus: int, now: float
    ) -> None:
        """Run one modulus group inline as a single engine batch.

        Operands were validated at admission, so a failure here is
        unexpected; if the coalesced call still fails, fall back to one
        call per request so a single poisoned job cannot fail the others.
        """
        flat: List[Tuple[int, int]] = []
        for job in jobs:
            flat.extend(job.payload)  # type: ignore[arg-type]
        try:
            result = self._executor.execute_pairs_sync(flat, modulus)
        except Exception as error:
            if len(jobs) == 1:
                self._fail_jobs(jobs, error)
                return
            for job in jobs:
                self._execute_pairs_group([job], modulus, now)
            return
        self._resolve_pairs_group(jobs, result, len(flat), now, shard=None)

    async def _execute_pairs_group_async(
        self, jobs: List[_Job], modulus: int, now: float
    ) -> None:
        """Pooled variant of :meth:`_execute_pairs_group` (same fallback)."""
        flat: List[Tuple[int, int]] = []
        for job in jobs:
            flat.extend(job.payload)  # type: ignore[arg-type]
        try:
            result, shard = await self._executor.execute_pairs(flat, modulus)
        except asyncio.CancelledError:
            self._fail_jobs(
                jobs, ServiceError("server stopped before execution finished")
            )
            raise
        except Exception as error:
            if len(jobs) == 1:
                self._fail_jobs(jobs, error)
                return
            for job in jobs:
                await self._execute_pairs_group_async([job], modulus, now)
            return
        self._resolve_pairs_group(jobs, result, len(flat), now, shard)

    def _resolve_pairs_group(
        self,
        jobs: List[_Job],
        result,
        flat_count: int,
        now: float,
        shard: Optional[int],
    ) -> None:
        """Slice one batch result back into per-job responses."""
        loop = asyncio.get_running_loop()
        self.metrics.record_batch(flat_count)
        per_pair = (
            None
            if result.modeled_cycles is None
            else result.modeled_cycles // max(flat_count, 1)
        )
        offset = 0
        finished = loop.time()
        for job in jobs:
            values = result.values[offset:offset + job.pairs]
            offset += job.pairs
            self._resolve(
                job,
                Response(
                    values=values,
                    kind="pairs",
                    backend=result.backend,
                    modulus=result.modulus,
                    tenant=job.tenant,
                    batched_pairs=flat_count,
                    modeled_cycles=(
                        None if per_pair is None else per_pair * job.pairs
                    ),
                    latency_ms=(finished - job.enqueued_at) * 1e3,
                    queue_ms=(now - job.enqueued_at) * 1e3,
                    shard=shard,
                ),
            )

    # -- graphs --------------------------------------------------------- #
    def _execute_graph_job(self, job: _Job, now: float) -> None:
        """Run one operand-carrying graph inline (level-batched)."""
        try:
            execution = self._executor.execute_graph_sync(
                job.payload, job.modulus  # type: ignore[arg-type]
            )
        except Exception as error:
            self._fail_jobs([job], error)
            return
        self._resolve_graph_job(job, execution, now, shard=None)

    async def _execute_graph_job_async(self, job: _Job, now: float) -> None:
        """Pooled variant of :meth:`_execute_graph_job`."""
        try:
            execution, shard = await self._executor.execute_graph(
                job.payload, job.modulus  # type: ignore[arg-type]
            )
        except asyncio.CancelledError:
            self._fail_jobs(
                [job], ServiceError("server stopped before execution finished")
            )
            raise
        except Exception as error:
            self._fail_jobs([job], error)
            return
        self._resolve_graph_job(job, execution, now, shard)

    def _resolve_graph_job(
        self, job: _Job, execution, now: float, shard: Optional[int]
    ) -> None:
        loop = asyncio.get_running_loop()
        self.metrics.record_batch(len(execution.values))
        finished = loop.time()
        self._resolve(
            job,
            Response(
                values=execution.results,
                kind="graph",
                backend=execution.backend,
                modulus=execution.modulus,
                tenant=job.tenant,
                batched_pairs=len(execution.values),
                modeled_cycles=execution.modeled_cycles,
                latency_ms=(finished - job.enqueued_at) * 1e3,
                queue_ms=(now - job.enqueued_at) * 1e3,
                shard=shard,
            ),
        )

    def _resolve(self, job: _Job, response: Response) -> None:
        self.metrics.record_completion(
            tenant=job.tenant,
            multiplications=job.pairs,
            latency_s=response.latency_ms / 1e3,
            queued_s=response.queue_ms / 1e3,
        )
        if not job.future.done():
            job.future.set_result(response)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Requests admitted but not yet dispatched."""
        return self._pending

    def metrics_summary(self) -> Dict[str, object]:
        """Service metrics plus the executor's operation/cache counters.

        ``context_cache`` and ``engine_multiplications`` cover every
        engine the executor drives — the server's own engine inline, or
        the merged counters of all worker processes under a pool.
        """
        return {
            **self.metrics.summary(),
            "pending": self._pending,
            "executing": self._executing,
            "backend": self.engine.info.name,
            "engine_multiplications": self._executor.engine_multiplications(),
            "context_cache": self._executor.cache_stats().as_dict(),
            "executor": self._executor.describe(),
        }
