"""Sharded multi-process batch execution: escape the GIL.

:class:`PoolExecutor` dispatches the server's coalesced batches across N
OS processes.  Each worker owns a pinned :class:`~repro.engine.Engine`
rebuilt from the parent's :class:`~repro.engine.EngineSpec`, with its own
warm per-modulus context cache, so the arithmetic runs on N cores instead
of sharing one GIL.

**Shard routing.**  Jobs route to ``sha256(modulus) % workers`` — the
*home* shard — so a modulus's LUT/Montgomery/Barrett context warms once
and stays hot on one worker.  When the home shard's queue is deep
(skewed traffic, e.g. a single hot modulus), the job spills to the
least-loaded live shard instead: affinity when it is cheap, parallelism
when it matters.

**Worker lifecycle.**  A monitor task watches worker liveness.  When a
process dies, its slot is restarted with a fresh queue and every job that
was outstanding on it is re-dispatched to another live shard (jobs are
pure functions of their payload, so a retry is idempotent; results are
deduplicated by job id in case the dead worker had already answered).  A
job that outlives :attr:`PoolConfig.max_retries` crashes fails with
:class:`~repro.errors.WorkerCrashError`.  :meth:`PoolExecutor.close`
drains outstanding work, sends each worker a shutdown sentinel, joins the
processes and fails any stragglers' futures cleanly.

**Wire format.**  Requests are ``(kind, job_id, modulus, payload)``
tuples; replies are ``(shard, job_id, (status, payload), elapsed,
stats)`` where ``stats`` piggybacks the worker engine's multiplication
and context-cache counters, giving the parent a merged cross-process
cache view without a stats round-trip.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import multiprocessing
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.engine import CacheStats, EngineSpec
from repro.errors import ConfigurationError, ServiceError, WorkerCrashError
from repro.service.executor import Executor
from repro.service.metrics import PoolMetrics

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.engine.engine import BatchResult
    from repro.workloads.execute import GraphExecution
    from repro.workloads.graph import WorkloadGraph

__all__ = ["PoolConfig", "PoolExecutor", "shard_for"]

#: Reply-queue sentinel that stops the parent's reader thread.
_STOP_READER = ("__stop__",)


def shard_for(modulus: int, workers: int) -> int:
    """The home shard of a modulus: stable across processes and runs.

    ``hash()`` would do in-process but is salted per interpreter for
    strings and makes no cross-run guarantee; a digest keeps routing
    deterministic everywhere (tests, restarted workers, documentation).
    """
    digest = hashlib.sha256(
        modulus.to_bytes((modulus.bit_length() + 7) // 8 or 1, "little")
    ).digest()
    return int.from_bytes(digest[:8], "little") % workers


@dataclass(frozen=True)
class PoolConfig:
    """Tunables of the sharded worker pool."""

    #: ``multiprocessing`` start method.  ``"spawn"`` is the default: it
    #: is safe to combine with the parent's event loop and reader thread
    #: (``"fork"`` can inherit a locked queue and deadlock a child).
    start_method: str = "spawn"
    #: Outstanding jobs on the home shard before a new job spills to the
    #: least-loaded shard instead (affinity vs. skew trade-off).
    spill_threshold: int = 2
    #: Cross-shard re-dispatches a job survives before failing with
    #: :class:`WorkerCrashError`.
    max_retries: int = 2
    #: Whether crashed workers are replaced (fresh process, cold cache).
    restart_workers: bool = True
    #: Liveness poll interval of the monitor task (seconds).
    monitor_interval_s: float = 0.02
    #: How long :meth:`PoolExecutor.close` waits for outstanding work.
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"unknown start method {self.start_method!r}; available: "
                f"{multiprocessing.get_all_start_methods()}"
            )
        if self.spill_threshold < 1:
            raise ConfigurationError(
                f"spill_threshold must be >= 1, got {self.spill_threshold}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.monitor_interval_s <= 0 or self.drain_timeout_s <= 0:
            raise ConfigurationError("pool intervals must be positive")


def _worker_main(
    shard: int,
    generation: int,
    spec_data: Dict[str, object],
    requests,
    replies,
) -> None:
    """One worker process: build the engine, serve jobs until the sentinel.

    Runs in the child.  Job failures are *answered*, not fatal: the
    exception travels back on the reply queue (re-wrapped when it does not
    pickle) and the worker keeps serving.  ``generation`` identifies which
    incarnation of the shard slot this process is, so the parent can tell
    a live worker's stats report from a dead predecessor's late one.
    """
    from repro.workloads.execute import execute_graph

    engine = EngineSpec.from_dict(spec_data).build()

    def stats_payload() -> Dict[str, object]:
        stats = engine.stats()
        return {
            "multiplications": stats.multiplications,
            "cache": stats.cache.as_dict(),
        }

    while True:
        message = requests.get()
        if message is None:
            break
        kind, job_id, modulus, payload = message
        started = time.perf_counter()
        try:
            if kind == "pairs":
                outcome: Tuple[str, object] = (
                    "ok",
                    engine.multiply_batch(payload, modulus),
                )
            elif kind == "graph":
                outcome = ("ok", execute_graph(engine, payload, modulus))
            else:  # pragma: no cover - parent never sends other kinds
                outcome = ("error", ServiceError(f"unknown job kind {kind!r}"))
        except Exception as error:
            try:
                pickle.dumps(error)
            except Exception:
                error = ServiceError(f"{type(error).__name__}: {error}")
            outcome = ("error", error)
        replies.put(
            (
                shard,
                generation,
                job_id,
                outcome,
                time.perf_counter() - started,
                stats_payload(),
            )
        )


@dataclass
class _PendingJob:
    """Parent-side record of one dispatched-but-unanswered job."""

    job_id: int
    kind: str
    payload: object
    modulus: int
    weight: int
    future: "asyncio.Future[Tuple[object, int]]"
    shard: int = -1
    retries: int = 0


@dataclass
class _Shard:
    """One worker slot: the live process, its queue, its in-flight ids."""

    index: int
    #: Which incarnation of this slot the process is (bumped on restart).
    generation: int
    process: multiprocessing.process.BaseProcess
    requests: object  # multiprocessing queue (ctx-specific type)
    pending_ids: Set[int] = field(default_factory=set)
    #: Death already handled (counters folded, jobs re-dispatched); set
    #: only when the slot is *not* replaced, so the monitor fires once.
    crashed: bool = False

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def depth(self) -> int:
        """Outstanding jobs (the load figure routing balances on)."""
        return len(self.pending_ids)


class PoolExecutor(Executor):
    """Execute the server's batches across a pool of engine processes.

    Parameters
    ----------
    spec:
        The engine recipe every worker builds from (defaults to the
        default :class:`EngineSpec`).  Validated eagerly so an
        unresolvable backend fails the caller, not a worker.
    workers:
        Shard count.  Throughput scales with cores (see
        ``benchmarks/bench_serve.py``); one worker still isolates
        execution from the event loop but adds no parallelism.
    config:
        :class:`PoolConfig` tunables.
    """

    inline = False

    def __init__(
        self,
        spec: Optional[EngineSpec] = None,
        workers: int = 4,
        config: Optional[PoolConfig] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"pool needs >= 1 worker, got {workers}")
        self.spec = (spec or EngineSpec()).validate()
        self.workers = workers
        self.config = config or PoolConfig()
        self.metrics = PoolMetrics.for_workers(workers)
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._shards: List[_Shard] = []
        self._pending: Dict[int, _PendingJob] = {}
        self._job_ids = itertools.count()
        self._replies = None
        self._reader: Optional[threading.Thread] = None
        self._monitor: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closing = False
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._started

    async def start(self) -> None:
        """Spawn the workers, the reply reader and the liveness monitor."""
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._closing = False
        self.metrics.start()
        self._replies = self._ctx.Queue()
        self._shards = [self._spawn_shard(index) for index in range(self.workers)]
        self._reader = threading.Thread(
            target=self._read_replies, name="pool-replies", daemon=True
        )
        self._reader.start()
        self._monitor = self._loop.create_task(self._monitor_loop())
        self._started = True

    def _spawn_shard(self, index: int, generation: int = 0) -> _Shard:
        requests = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                index, generation, self.spec.as_dict(), requests,
                self._replies,
            ),
            name=f"repro-pool-{index}",
            daemon=True,
        )
        process.start()
        return _Shard(
            index=index,
            generation=generation,
            process=process,
            requests=requests,
        )

    async def close(self) -> None:
        """Drain outstanding work, stop the workers, fail any stragglers."""
        if not self._started:
            return
        self._closing = True
        # Outstanding jobs finish (or crash and get retried/failed by the
        # monitor, which keeps running until the drain completes).  Jobs
        # whose futures are already done — cancelled by an abortive
        # server stop — have no one waiting; forget them instead of
        # blocking the close on results nobody will read.
        deadline = time.perf_counter() + self.config.drain_timeout_s
        while True:
            self._forget_abandoned_jobs()
            if not self._pending or time.perf_counter() >= deadline:
                break
            await asyncio.sleep(self.config.monitor_interval_s)
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except asyncio.CancelledError:
                pass
            self._monitor = None
        for job in list(self._pending.values()):
            if not job.future.done():
                job.future.set_exception(
                    ServiceError("pool closed before the job completed")
                )
        self._pending.clear()
        for shard in self._shards:
            shard.pending_ids.clear()
            if shard.alive:
                try:
                    shard.requests.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    pass
        # Joins can wait on a worker finishing an abandoned batch; do the
        # waiting in a thread so the event loop stays responsive.
        await asyncio.get_running_loop().run_in_executor(
            None, self._join_workers
        )
        if self._replies is not None:
            self._replies.put(_STOP_READER)
        if self._reader is not None:
            self._reader.join(timeout=2.0)
            self._reader = None
        if self._replies is not None:
            self._replies.close()
            self._replies.join_thread()
            self._replies = None
        for shard in self._shards:
            try:
                shard.requests.close()
                shard.requests.join_thread()
            except Exception:  # pragma: no cover - queue already broken
                pass
        self._shards = []
        self._started = False

    def _forget_abandoned_jobs(self) -> None:
        """Drop pending jobs whose futures are already done (cancelled)."""
        for job_id, job in list(self._pending.items()):
            if job.future.done():
                self._pending.pop(job_id, None)
                for shard in self._shards:
                    shard.pending_ids.discard(job_id)

    def _join_workers(self) -> None:
        """Join (then terminate) every worker; runs off the event loop."""
        for shard in self._shards:
            shard.process.join(timeout=2.0)
            if shard.process.is_alive():  # pragma: no cover - stuck worker
                shard.process.terminate()
                shard.process.join(timeout=1.0)

    # ------------------------------------------------------------------ #
    # submission / routing
    # ------------------------------------------------------------------ #
    async def execute_pairs(
        self, pairs: Sequence[Tuple[int, int]], modulus: int
    ) -> Tuple["BatchResult", Optional[int]]:
        return await self._submit("pairs", tuple(pairs), modulus, len(pairs))

    async def execute_graph(
        self, graph: "WorkloadGraph", modulus: int
    ) -> Tuple["GraphExecution", Optional[int]]:
        return await self._submit("graph", graph, modulus, len(graph))

    async def _submit(
        self, kind: str, payload: object, modulus: int, weight: int
    ) -> Tuple[object, int]:
        if not self._started:
            raise ServiceError("pool executor is not started")
        if self._closing:
            raise ServiceError("pool executor is closing; submission refused")
        assert self._loop is not None
        job = _PendingJob(
            job_id=next(self._job_ids),
            kind=kind,
            payload=payload,
            modulus=modulus,
            weight=weight,
            future=self._loop.create_future(),
        )
        self._pending[job.job_id] = job
        self._dispatch(job, exclude=frozenset(), retry=False)
        return await job.future

    def home_shard(self, modulus: int) -> int:
        """The stable-hash home of a modulus in this pool."""
        return shard_for(modulus, self.workers)

    def _route(self, modulus: int, exclude: frozenset) -> Tuple[_Shard, bool]:
        """Pick a shard: home when its queue is shallow, else least-loaded."""
        live = [
            shard
            for shard in self._shards
            if shard.alive and shard.index not in exclude
        ]
        if not live:
            # Dead excluded shards may be restartable; fall back to any
            # live shard at all before giving up.
            live = [shard for shard in self._shards if shard.alive]
        if not live:
            raise WorkerCrashError("no live pool workers to dispatch to")
        home_index = self.home_shard(modulus)
        home = self._shards[home_index]
        if (
            home in live
            and home.depth < self.config.spill_threshold
        ):
            return home, False
        least = min(live, key=lambda shard: (shard.depth, shard.index))
        return least, least.index != home_index

    def _dispatch(self, job: _PendingJob, exclude: frozenset, retry: bool) -> None:
        shard, spilled = self._route(job.modulus, exclude)
        job.shard = shard.index
        shard.pending_ids.add(job.job_id)
        self.metrics.shards[shard.index].record_dispatch(
            pairs=job.weight, spilled=spilled, retry=retry
        )
        shard.requests.put((job.kind, job.job_id, job.modulus, job.payload))

    # ------------------------------------------------------------------ #
    # replies and failures
    # ------------------------------------------------------------------ #
    def _read_replies(self) -> None:
        """Reader thread: move worker replies onto the event loop."""
        assert self._replies is not None and self._loop is not None
        while True:
            try:
                item = self._replies.get()
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            if item == _STOP_READER:
                return
            try:
                self._loop.call_soon_threadsafe(self._on_reply, item)
            except RuntimeError:  # pragma: no cover - loop already closed
                return

    def _on_reply(self, item) -> None:
        shard_index, generation, job_id, (status, payload), elapsed, stats = item
        if shard_index >= len(self._shards):
            # The callback raced close(): the shards are gone and every
            # still-pending job was already failed there.
            return
        shard_metrics = self.metrics.shards[shard_index]
        if generation == self._shards[shard_index].generation:
            shard_metrics.record_report(
                elapsed_s=elapsed,
                multiplications=int(stats.get("multiplications", 0)),
                cache=dict(stats.get("cache", {})),
            )
        # A dead predecessor's late report is dropped: its counters were
        # already folded into the shard's retired totals on restart, and
        # re-recording them would double-count against the replacement
        # worker's.  (The carried *result* below is still honoured.)
        job = self._pending.pop(job_id, None)
        if job is None:
            # A re-dispatched job answered twice (the "dead" worker had
            # already replied): the first answer won, drop the duplicate.
            return
        for shard in self._shards:
            shard.pending_ids.discard(job_id)
        if job.future.done():  # pragma: no cover - cancelled by caller
            return
        if status == "ok":
            job.future.set_result((payload, shard_index))
        else:
            job.future.set_exception(payload)

    async def _monitor_loop(self) -> None:
        """Detect dead workers; restart them and re-dispatch their jobs."""
        while True:
            await asyncio.sleep(self.config.monitor_interval_s)
            for index in range(len(self._shards)):
                shard = self._shards[index]
                if shard.crashed or shard.alive or shard.process.exitcode is None:
                    continue
                self._handle_crash(index)

    def _handle_crash(self, index: int) -> None:
        shard = self._shards[index]
        self.metrics.shards[index].record_restart()
        orphan_ids = sorted(shard.pending_ids)
        shard.pending_ids.clear()
        if self.config.restart_workers and not self._closing:
            self._shards[index] = self._spawn_shard(
                index, generation=shard.generation + 1
            )
        else:
            # No replacement: mark the slot handled so the monitor does
            # not count the same death again, and bump the generation so
            # a late reply from the dead process cannot re-record folded
            # counters.
            shard.crashed = True
            shard.generation += 1
        exitcode = shard.process.exitcode
        for job_id in orphan_ids:
            job = self._pending.get(job_id)
            if job is None:
                continue
            job.retries += 1
            if job.retries > self.config.max_retries:
                self._pending.pop(job_id, None)
                self.metrics.failed_jobs += 1
                if not job.future.done():
                    job.future.set_exception(
                        WorkerCrashError(
                            f"job {job_id} lost worker {index} "
                            f"(exit code {exitcode}) "
                            f"{job.retries} times; giving up"
                        )
                    )
                continue
            # Prefer a *different* shard for the retry; with a single
            # worker the freshly restarted slot is the only choice.
            exclude = (
                frozenset({index})
                if any(s.alive for s in self._shards if s.index != index)
                else frozenset()
            )
            try:
                self._dispatch(job, exclude=exclude, retry=True)
            except WorkerCrashError as error:
                self._pending.pop(job_id, None)
                self.metrics.failed_jobs += 1
                if not job.future.done():
                    job.future.set_exception(error)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    @property
    def outstanding(self) -> int:
        """Jobs dispatched to workers but not yet answered."""
        return len(self._pending)

    def backlog(self) -> int:
        """Unfinished jobs buffered in the pool (admission accounting)."""
        return len(self._pending)

    def shard_depths(self) -> List[int]:
        """Outstanding jobs per shard (routing's load view)."""
        return [shard.depth for shard in self._shards]

    def cache_stats(self) -> CacheStats:
        """Context-cache counters merged across every worker engine."""
        return self.metrics.cache_stats()

    def engine_multiplications(self) -> int:
        return self.metrics.multiplications()

    def describe(self) -> Dict[str, object]:
        return {
            "kind": "pool",
            "backend": self.spec.backend,
            "spec": self.spec.as_dict(),
            "start_method": self.config.start_method,
            "spill_threshold": self.config.spill_threshold,
            **self.metrics.rollup(),
        }

    def __repr__(self) -> str:
        return (
            f"PoolExecutor(backend={self.spec.backend!r}, "
            f"workers={self.workers}, started={self._started})"
        )
