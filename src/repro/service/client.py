"""A thin per-tenant client over one :class:`~repro.service.server.Server`.

Binds a tenant name, a default priority and a default deadline once, so
call sites read like RPC stubs::

    client = Client(server, tenant="wallet-7", deadline_ms=50.0)
    response = await client.multiply(a, b)
    inverse_tree = await client.submit_graph(product_tree_graph(values))
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.service.server import Response, Server
from repro.workloads.graph import WorkloadGraph

__all__ = ["Client"]


class Client:
    """Tenant-scoped submission handle (any number may share a server)."""

    def __init__(
        self,
        server: Server,
        tenant: str = "default",
        priority: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.server = server
        self.tenant = tenant
        self.priority = priority
        self.deadline_ms = deadline_ms

    async def multiply(
        self, a: int, b: int, modulus: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Response:
        """One modular multiplication through the server's batcher."""
        return await self.server.multiply(
            a, b, modulus,
            tenant=self.tenant,
            priority=self.priority,
            deadline_ms=self.deadline_ms if deadline_ms is None else deadline_ms,
        )

    async def multiply_batch(
        self, pairs: Sequence[Tuple[int, int]], modulus: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Response:
        """A batch of operand pairs as one request."""
        return await self.server.multiply_batch(
            pairs, modulus,
            tenant=self.tenant,
            priority=self.priority,
            deadline_ms=self.deadline_ms if deadline_ms is None else deadline_ms,
        )

    async def submit_graph(
        self, graph: WorkloadGraph, modulus: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Response:
        """An operand-carrying workload graph as one request."""
        return await self.server.submit_graph(
            graph, modulus,
            tenant=self.tenant,
            priority=self.priority,
            deadline_ms=self.deadline_ms if deadline_ms is None else deadline_ms,
        )

    def __repr__(self) -> str:
        return f"Client(tenant={self.tenant!r}, server={self.server.engine!r})"
