"""Latency / throughput / queue metrics for the serving layer.

Pure-python accounting: the server records one sample per completed
request and one per executed batch; :meth:`ServiceMetrics.summary`
condenses them into the payload the ``serving-throughput`` experiment,
``repro serve --self-test`` and ``BENCH_serve.json`` report.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

__all__ = ["LatencyStats", "ServiceMetrics"]

#: Samples kept for percentile estimation; older samples roll off so a
#: long-lived server's memory stays bounded.
LATENCY_WINDOW = 4096


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


@dataclass
class LatencyStats:
    """Request latency accounting (seconds) with percentile summaries.

    Only the most recent :data:`LATENCY_WINDOW` samples are retained (a
    rolling window over recent traffic), so memory stays bounded on a
    long-lived server; ``count`` and ``mean_ms`` cover *every* recorded
    sample.
    """

    samples: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )
    total: int = 0
    total_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)
        self.total += 1
        self.total_seconds += seconds

    @property
    def count(self) -> int:
        return self.total

    @property
    def mean_ms(self) -> float:
        if not self.total:
            return 0.0
        return self.total_seconds / self.total * 1e3

    def percentile_ms(self, fraction: float) -> float:
        return _percentile(sorted(self.samples), fraction) * 1e3

    def as_dict(self) -> Dict[str, float]:
        window = sorted(self.samples)
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": _percentile(window, 0.50) * 1e3,
            "p95_ms": _percentile(window, 0.95) * 1e3,
            "p99_ms": _percentile(window, 0.99) * 1e3,
        }


@dataclass
class ServiceMetrics:
    """Everything the server counts while it runs."""

    latency: LatencyStats = field(default_factory=LatencyStats)
    queue_latency: LatencyStats = field(default_factory=LatencyStats)
    completed_requests: int = 0
    completed_multiplications: int = 0
    rejected_requests: int = 0
    deadline_misses: int = 0
    batches: int = 0
    batched_pairs: int = 0
    per_tenant_completed: Dict[str, int] = field(default_factory=dict)
    started_at: Optional[float] = None
    stopped_at: Optional[float] = None
    #: Serving time of completed start/stop cycles, so throughput stays
    #: honest across server restarts (counters span runs; so must time).
    accumulated_seconds: float = 0.0

    def start(self) -> None:
        if self.started_at is not None and self.stopped_at is not None:
            self.accumulated_seconds += max(
                self.stopped_at - self.started_at, 0.0
            )
        self.started_at = time.perf_counter()
        self.stopped_at = None

    def stop(self) -> None:
        self.stopped_at = time.perf_counter()

    @property
    def elapsed_seconds(self) -> float:
        if self.started_at is None:
            return self.accumulated_seconds
        end = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        return self.accumulated_seconds + max(end - self.started_at, 0.0)

    def record_completion(
        self, tenant: str, multiplications: int, latency_s: float, queued_s: float
    ) -> None:
        self.completed_requests += 1
        self.completed_multiplications += multiplications
        self.latency.record(latency_s)
        self.queue_latency.record(queued_s)
        self.per_tenant_completed[tenant] = (
            self.per_tenant_completed.get(tenant, 0) + 1
        )

    def record_batch(self, pairs: int) -> None:
        self.batches += 1
        self.batched_pairs += pairs

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return self.batched_pairs / self.batches

    @property
    def requests_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        return self.completed_requests / elapsed if elapsed else 0.0

    @property
    def multiplications_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        return self.completed_multiplications / elapsed if elapsed else 0.0

    def summary(self) -> Dict[str, object]:
        """The JSON-friendly metrics payload."""
        return {
            "completed_requests": self.completed_requests,
            "completed_multiplications": self.completed_multiplications,
            "rejected_requests": self.rejected_requests,
            "deadline_misses": self.deadline_misses,
            "elapsed_seconds": self.elapsed_seconds,
            "requests_per_second": self.requests_per_second,
            "multiplications_per_second": self.multiplications_per_second,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "latency": self.latency.as_dict(),
            "queue_latency": self.queue_latency.as_dict(),
            "per_tenant_completed": dict(sorted(self.per_tenant_completed.items())),
        }
