"""Latency / throughput / queue metrics for the serving layer.

Pure-python accounting: the server records one sample per completed
request and one per executed batch; :meth:`ServiceMetrics.summary`
condenses them into the payload the ``serving-throughput`` experiment,
``repro serve --self-test`` and ``BENCH_serve.json`` report.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.engine.cache import CacheStats

__all__ = ["LatencyStats", "PoolMetrics", "ServiceMetrics", "ShardMetrics"]

#: Samples kept for percentile estimation; older samples roll off so a
#: long-lived server's memory stays bounded.
LATENCY_WINDOW = 4096


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


@dataclass
class LatencyStats:
    """Request latency accounting (seconds) with percentile summaries.

    Only the most recent :data:`LATENCY_WINDOW` samples are retained (a
    rolling window over recent traffic), so memory stays bounded on a
    long-lived server; ``count`` and ``mean_ms`` cover *every* recorded
    sample.
    """

    samples: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )
    total: int = 0
    total_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)
        self.total += 1
        self.total_seconds += seconds

    @property
    def count(self) -> int:
        return self.total

    @property
    def mean_ms(self) -> float:
        if not self.total:
            return 0.0
        return self.total_seconds / self.total * 1e3

    def percentile_ms(self, fraction: float) -> float:
        return _percentile(sorted(self.samples), fraction) * 1e3

    def as_dict(self) -> Dict[str, float]:
        window = sorted(self.samples)
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": _percentile(window, 0.50) * 1e3,
            "p95_ms": _percentile(window, 0.95) * 1e3,
            "p99_ms": _percentile(window, 0.99) * 1e3,
        }


@dataclass
class ShardMetrics:
    """What one pool shard (worker slot) has done.

    A shard slot survives worker restarts: when the pool replaces a
    crashed process, the slot's cumulative counters keep counting and the
    counters the *worker* reports (its engine's multiplications and
    context-cache hits/misses, which die with the process) fold into
    ``retired_*`` totals so nothing resets to zero mid-flight.
    """

    shard: int
    #: Jobs dispatched to this shard (including re-dispatches after crashes).
    jobs: int = 0
    #: Operand pairs / graph nodes dispatched to this shard.
    pairs: int = 0
    #: Jobs this shard received although another shard was their hash home.
    spilled_jobs: int = 0
    #: Jobs re-dispatched *to* this shard after their worker crashed.
    retried_jobs: int = 0
    #: Times this slot's worker process was replaced after a crash.
    restarts: int = 0
    #: Per-job worker-side execution time (busy time, not queue time).
    execution: LatencyStats = field(default_factory=LatencyStats)
    #: Latest counters reported by the live worker's engine.
    worker_multiplications: int = 0
    worker_cache: CacheStats = field(default_factory=CacheStats)
    #: Counters of crashed predecessors, folded on restart.
    retired_multiplications: int = 0
    retired_cache: CacheStats = field(default_factory=CacheStats)

    def record_dispatch(self, pairs: int, spilled: bool, retry: bool) -> None:
        self.jobs += 1
        self.pairs += pairs
        if spilled:
            self.spilled_jobs += 1
        if retry:
            self.retried_jobs += 1

    def record_report(
        self, elapsed_s: float, multiplications: int, cache: Dict[str, float]
    ) -> None:
        """One worker result: execution time plus the engine's counters."""
        self.execution.record(elapsed_s)
        self.worker_multiplications = multiplications
        self.worker_cache = CacheStats.from_dict(cache)

    def record_restart(self) -> None:
        """Fold the dead worker's last-reported counters and count the loss."""
        self.restarts += 1
        self.retired_multiplications += self.worker_multiplications
        self.retired_cache = self.retired_cache.merged_with(self.worker_cache)
        self.worker_multiplications = 0
        self.worker_cache = CacheStats()

    @property
    def multiplications(self) -> int:
        """Engine multiplications across every worker this slot has run."""
        return self.retired_multiplications + self.worker_multiplications

    def cache_stats(self) -> CacheStats:
        """Context-cache counters across every worker this slot has run."""
        return self.retired_cache.merged_with(self.worker_cache)

    @property
    def busy_seconds(self) -> float:
        """Total worker-side execution time attributed to this shard."""
        return self.execution.total_seconds

    def utilization(self, elapsed_seconds: float) -> float:
        """Busy fraction of this shard over the pool's lifetime."""
        if elapsed_seconds <= 0:
            return 0.0
        return min(self.busy_seconds / elapsed_seconds, 1.0)

    def as_dict(self, elapsed_seconds: float) -> Dict[str, object]:
        """JSON-friendly per-shard rollup."""
        return {
            "shard": self.shard,
            "jobs": self.jobs,
            "pairs": self.pairs,
            "spilled_jobs": self.spilled_jobs,
            "retried_jobs": self.retried_jobs,
            "restarts": self.restarts,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization(elapsed_seconds),
            "execution": self.execution.as_dict(),
            "multiplications": self.multiplications,
            "cache": self.cache_stats().as_dict(),
        }


@dataclass
class PoolMetrics:
    """Per-shard accounting of one :class:`~repro.service.pool.PoolExecutor`.

    One :class:`ShardMetrics` per worker slot, plus the pool-level events
    no single shard owns (jobs that exhausted their retries).  The rollup
    is what ``Server.metrics_summary()`` exposes under ``executor``.
    """

    shards: List[ShardMetrics] = field(default_factory=list)
    #: Jobs that failed permanently because retries were exhausted.
    failed_jobs: int = 0
    started_at: Optional[float] = None

    @classmethod
    def for_workers(cls, workers: int) -> "PoolMetrics":
        return cls(shards=[ShardMetrics(shard=index) for index in range(workers)])

    def start(self) -> None:
        self.started_at = time.perf_counter()

    @property
    def elapsed_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        return max(time.perf_counter() - self.started_at, 0.0)

    @property
    def spilled_jobs(self) -> int:
        return sum(shard.spilled_jobs for shard in self.shards)

    @property
    def retried_jobs(self) -> int:
        return sum(shard.retried_jobs for shard in self.shards)

    @property
    def worker_restarts(self) -> int:
        return sum(shard.restarts for shard in self.shards)

    def cache_stats(self) -> CacheStats:
        """Context-cache counters merged across every shard."""
        merged = CacheStats()
        for shard in self.shards:
            merged = merged.merged_with(shard.cache_stats())
        return merged

    def multiplications(self) -> int:
        """Engine multiplications summed across every shard."""
        return sum(shard.multiplications for shard in self.shards)

    def rollup(self) -> Dict[str, object]:
        """Pool-level summary plus the per-shard breakdowns."""
        elapsed = self.elapsed_seconds
        utilizations = [shard.utilization(elapsed) for shard in self.shards]
        return {
            "workers": len(self.shards),
            "jobs": sum(shard.jobs for shard in self.shards),
            "pairs": sum(shard.pairs for shard in self.shards),
            "spilled_jobs": self.spilled_jobs,
            "retried_jobs": self.retried_jobs,
            "failed_jobs": self.failed_jobs,
            "worker_restarts": self.worker_restarts,
            "elapsed_seconds": elapsed,
            "mean_utilization": (
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            "multiplications": self.multiplications(),
            "cache": self.cache_stats().as_dict(),
            "per_shard": [shard.as_dict(elapsed) for shard in self.shards],
        }


@dataclass
class ServiceMetrics:
    """Everything the server counts while it runs."""

    latency: LatencyStats = field(default_factory=LatencyStats)
    queue_latency: LatencyStats = field(default_factory=LatencyStats)
    completed_requests: int = 0
    completed_multiplications: int = 0
    rejected_requests: int = 0
    deadline_misses: int = 0
    batches: int = 0
    batched_pairs: int = 0
    per_tenant_completed: Dict[str, int] = field(default_factory=dict)
    started_at: Optional[float] = None
    stopped_at: Optional[float] = None
    #: Serving time of completed start/stop cycles, so throughput stays
    #: honest across server restarts (counters span runs; so must time).
    accumulated_seconds: float = 0.0

    def start(self) -> None:
        if self.started_at is not None and self.stopped_at is not None:
            self.accumulated_seconds += max(
                self.stopped_at - self.started_at, 0.0
            )
        self.started_at = time.perf_counter()
        self.stopped_at = None

    def stop(self) -> None:
        self.stopped_at = time.perf_counter()

    @property
    def elapsed_seconds(self) -> float:
        if self.started_at is None:
            return self.accumulated_seconds
        end = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        return self.accumulated_seconds + max(end - self.started_at, 0.0)

    def record_completion(
        self, tenant: str, multiplications: int, latency_s: float, queued_s: float
    ) -> None:
        self.completed_requests += 1
        self.completed_multiplications += multiplications
        self.latency.record(latency_s)
        self.queue_latency.record(queued_s)
        self.per_tenant_completed[tenant] = (
            self.per_tenant_completed.get(tenant, 0) + 1
        )

    def record_batch(self, pairs: int) -> None:
        self.batches += 1
        self.batched_pairs += pairs

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        return self.batched_pairs / self.batches

    @property
    def requests_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        return self.completed_requests / elapsed if elapsed else 0.0

    @property
    def multiplications_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        return self.completed_multiplications / elapsed if elapsed else 0.0

    def summary(self) -> Dict[str, object]:
        """The JSON-friendly metrics payload."""
        return {
            "completed_requests": self.completed_requests,
            "completed_multiplications": self.completed_multiplications,
            "rejected_requests": self.rejected_requests,
            "deadline_misses": self.deadline_misses,
            "elapsed_seconds": self.elapsed_seconds,
            "requests_per_second": self.requests_per_second,
            "multiplications_per_second": self.multiplications_per_second,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "latency": self.latency.as_dict(),
            "queue_latency": self.queue_latency.as_dict(),
            "per_tenant_completed": dict(sorted(self.per_tenant_completed.items())),
        }
