"""Async serving layer over the Workload Graph API and the Engine.

The production-shaped path the roadmap asks for: many concurrent tenants
submit work (single multiplications, operand batches, operand-carrying
workload graphs) to one :class:`Server`, which admits, queues, coalesces
and dispatches it through a shared context-cached
:class:`~repro.engine.Engine`::

    import asyncio
    from repro.service import Client, Server
    from repro.workloads import product_tree_graph

    async def main():
        async with Server(backend="r4csa-lut", curve="bn254") as server:
            client = Client(server, tenant="alice")
            print(int((await client.multiply(3, 5)).value))
            tree = product_tree_graph(range(2, 18))
            print((await client.submit_graph(tree)).values)

    asyncio.run(main())

Execution is pluggable (the :class:`Executor` seam): batches run inline
on the event loop by default, or — ``Server(..., workers=N)`` /
:class:`PoolExecutor` — sharded across N engine-owning OS processes with
stable modulus→shard hashing, escaping the GIL (see
:mod:`repro.service.pool` and the serving/sharding how-to in ``docs/``).

``repro serve --self-test [--workers N]`` drives the built-in
multi-tenant traffic mix (:mod:`repro.service.selftest`), ``repro
submit`` sends one request from the shell, and the
``serving-throughput`` experiment plus ``benchmarks/bench_serve.py``
measure the layer end to end.
"""

from repro.errors import (
    AdmissionError,
    DeadlineError,
    ServiceError,
    WorkerCrashError,
)
from repro.service.client import Client
from repro.service.executor import Executor, InlineExecutor
from repro.service.metrics import (
    LatencyStats,
    PoolMetrics,
    ServiceMetrics,
    ShardMetrics,
)
from repro.service.pool import PoolConfig, PoolExecutor, shard_for
from repro.service.selftest import run_self_test, self_test
from repro.service.server import Response, Server, ServerConfig

__all__ = [
    "AdmissionError",
    "Client",
    "DeadlineError",
    "Executor",
    "InlineExecutor",
    "LatencyStats",
    "PoolConfig",
    "PoolExecutor",
    "PoolMetrics",
    "Response",
    "Server",
    "ServerConfig",
    "ServiceError",
    "ServiceMetrics",
    "ShardMetrics",
    "WorkerCrashError",
    "run_self_test",
    "self_test",
    "shard_for",
]
