"""Multi-scalar multiplication (MSM).

MSM — computing ``Σ k_i · P_i`` for thousands of points — is the other
dominant ZKP kernel in Figure 7; PipeZK (the paper's reference for the MSM
operation counts) accelerates it with the bucket (Pippenger) method.  Both a
naive MSM and the bucket method are implemented here over the instrumented
curve layer, so the modular-multiplication, memory-access and register-write
counts of Figure 7 can be measured directly (at small sizes) and the
closed-form model in :mod:`repro.zkp.opcount` can be validated against the
measurements before being evaluated at the paper's ``2**15`` operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro.ecc.curve import AffinePoint, EllipticCurve, JacobianPoint
from repro.ecc.scalar import scalar_multiply
from repro.errors import OperandRangeError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.engine.engine import Engine

__all__ = [
    "MsmStatistics",
    "msm_naive",
    "msm_pippenger",
    "msm_engine",
    "default_window_bits",
]


@dataclass
class MsmStatistics:
    """Structural counts of one bucket-method MSM run."""

    points: int = 0
    windows: int = 0
    window_bits: int = 0
    bucket_additions: int = 0
    bucket_reductions: int = 0
    doublings: int = 0
    point_additions: int = 0


def default_window_bits(point_count: int) -> int:
    """The usual Pippenger window choice ``c ≈ log2(N) - 1`` (at least 2).

    PipeZK uses a fixed 16-bit window for very large instances; for the
    sizes a Python model can execute, the logarithmic rule keeps the bucket
    count proportionate.
    """
    if point_count <= 0:
        raise OperandRangeError(f"point count must be positive, got {point_count}")
    if point_count < 4:
        return 2
    return max(2, int(math.log2(point_count)) - 1)


def msm_naive(
    curve: EllipticCurve, scalars: Sequence[int], points: Sequence[AffinePoint]
) -> AffinePoint:
    """Reference MSM: independent scalar multiplications, then a sum."""
    if len(scalars) != len(points):
        raise OperandRangeError(
            f"scalar/point count mismatch: {len(scalars)} vs {len(points)}"
        )
    accumulator = curve.infinity()
    for scalar, point in zip(scalars, points):
        accumulator = curve.add(accumulator, scalar_multiply(curve, scalar, point))
    return accumulator


def msm_pippenger(
    curve: EllipticCurve,
    scalars: Sequence[int],
    points: Sequence[AffinePoint],
    window_bits: Optional[int] = None,
    statistics: Optional[MsmStatistics] = None,
) -> AffinePoint:
    """Bucket-method MSM (Pippenger), the algorithm PipeZK accelerates.

    The scalars are cut into ``ceil(bits / c)`` windows of ``c`` bits; for
    each window every point is added into the bucket selected by its window
    digit, the buckets are combined with a running-sum reduction, and the
    per-window results are combined with ``c`` doublings per window.
    """
    if len(scalars) != len(points):
        raise OperandRangeError(
            f"scalar/point count mismatch: {len(scalars)} vs {len(points)}"
        )
    if not scalars:
        return curve.infinity()
    for scalar in scalars:
        if scalar < 0:
            raise OperandRangeError(f"scalars must be non-negative, got {scalar}")

    c = window_bits or default_window_bits(len(points))
    if c < 1:
        raise OperandRangeError(f"window size must be positive, got {c}")
    scalar_bits = max(max(scalars).bit_length(), 1)
    window_count = -(-scalar_bits // c)
    bucket_count = (1 << c) - 1

    stats = statistics if statistics is not None else MsmStatistics()
    stats.points = len(points)
    stats.windows = window_count
    stats.window_bits = c

    infinity = curve.to_jacobian(curve.infinity())
    window_sums: List[JacobianPoint] = []

    for window_index in range(window_count):
        shift = window_index * c
        buckets: List[Optional[JacobianPoint]] = [None] * bucket_count
        for scalar, point in zip(scalars, points):
            digit = (scalar >> shift) & ((1 << c) - 1)
            if digit == 0:
                continue
            slot = digit - 1
            if buckets[slot] is None:
                buckets[slot] = curve.to_jacobian(point)
            else:
                buckets[slot] = curve.jacobian_add_mixed(buckets[slot], point)
                stats.bucket_additions += 1
                stats.point_additions += 1

        # Running-sum reduction: sum_{d} d * bucket_d with 2 * buckets adds.
        running = infinity
        window_total = infinity
        for slot in range(bucket_count - 1, -1, -1):
            bucket = buckets[slot]
            if bucket is not None:
                running = curve.jacobian_add(running, bucket)
                stats.bucket_reductions += 1
                stats.point_additions += 1
            window_total = curve.jacobian_add(window_total, running)
            stats.bucket_reductions += 1
            stats.point_additions += 1
        window_sums.append(window_total)

    # Horner combination of the window results (most significant first).
    result = infinity
    for window_total in reversed(window_sums):
        for _ in range(c):
            result = curve.jacobian_double(result)
            stats.doublings += 1
        result = curve.jacobian_add(result, window_total)
        stats.point_additions += 1
    return curve.to_affine(result)


def msm_engine(
    engine: "Engine",
    scalars: Sequence[int],
    points: Sequence[Union[AffinePoint, Tuple[int, int]]],
    curve_name: Optional[str] = None,
    window_bits: Optional[int] = None,
    statistics: Optional[MsmStatistics] = None,
) -> AffinePoint:
    """Bucket-method MSM with every field multiplication on an Engine backend.

    Builds (or reuses) the engine-backed curve, rebinds the input points to
    it — they may come from another curve instance or be raw ``(x, y)``
    coordinate pairs — and runs :func:`msm_pippenger`, so the modular
    multiplications hit the engine's cached per-modulus context.
    """
    curve = engine.curve(curve_name)
    rebound: List[AffinePoint] = []
    for point in points:
        if isinstance(point, AffinePoint):
            if point.is_infinity:
                rebound.append(curve.infinity())
            else:
                rebound.append(curve.affine_point(*point.coordinates()))
        else:
            x, y = point
            rebound.append(curve.affine_point(x, y))
    return msm_pippenger(
        curve, scalars, rebound, window_bits=window_bits, statistics=statistics
    )
