"""Zero-knowledge-proof kernels: NTT, MSM and their operation-count models."""

from repro.zkp.mapping import (
    KernelMapping,
    map_zkp_kernels,
    msm_workload,
    ntt_distinct_twiddle_multiplications,
    ntt_workload,
)
from repro.zkp.msm import (
    MsmStatistics,
    default_window_bits,
    msm_engine,
    msm_naive,
    msm_pippenger,
)
from repro.zkp.ntt import NttContext, bit_reverse_indices, find_root_of_unity
from repro.zkp.polynomial import Polynomial
from repro.zkp.opcount import (
    PAPER_FIGURE7_BITWIDTH,
    PAPER_FIGURE7_VECTOR_SIZE,
    OperationCounts,
    msm_operation_counts,
    msm_point_additions,
    ntt_operation_counts,
)

__all__ = [
    "KernelMapping",
    "MsmStatistics",
    "NttContext",
    "OperationCounts",
    "PAPER_FIGURE7_BITWIDTH",
    "PAPER_FIGURE7_VECTOR_SIZE",
    "Polynomial",
    "bit_reverse_indices",
    "default_window_bits",
    "find_root_of_unity",
    "map_zkp_kernels",
    "msm_engine",
    "msm_naive",
    "msm_operation_counts",
    "msm_pippenger",
    "msm_point_additions",
    "msm_workload",
    "ntt_distinct_twiddle_multiplications",
    "ntt_operation_counts",
    "ntt_workload",
]
