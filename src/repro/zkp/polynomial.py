"""Dense polynomials over a prime field with NTT-backed multiplication.

ZKP proof systems manipulate polynomials whose coefficients live in the
curve's scalar field; their products are computed by transforming to the
evaluation domain (the NTT of Figure 7), multiplying point-wise and
transforming back.  This module gives the library a small but complete
polynomial layer so the application examples can express that pipeline
directly, with every modular multiplication flowing through the instrumented
NTT / field machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import NttError, OperandRangeError
from repro.zkp.ntt import NttContext

__all__ = ["Polynomial"]


def _trim(coefficients: Sequence[int]) -> List[int]:
    values = list(coefficients)
    while len(values) > 1 and values[-1] == 0:
        values.pop()
    return values


@dataclass(frozen=True)
class Polynomial:
    """A dense polynomial with coefficients modulo ``modulus``.

    ``coefficients[i]`` is the coefficient of ``x**i``; the representation is
    normalised (reduced coefficients, no trailing zero except for the zero
    polynomial).
    """

    coefficients: tuple
    modulus: int

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, coefficients: Sequence[int], modulus: int) -> "Polynomial":
        """Build a normalised polynomial from any coefficient sequence."""
        if modulus <= 2:
            raise OperandRangeError(f"modulus must be greater than 2, got {modulus}")
        reduced = _trim([int(value) % modulus for value in coefficients] or [0])
        return cls(coefficients=tuple(reduced), modulus=modulus)

    @classmethod
    def zero(cls, modulus: int) -> "Polynomial":
        """The zero polynomial."""
        return cls.create([0], modulus)

    @classmethod
    def one(cls, modulus: int) -> "Polynomial":
        """The constant polynomial 1."""
        return cls.create([1], modulus)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for constants, including zero)."""
        return len(self.coefficients) - 1

    def is_zero(self) -> bool:
        """Whether this is the zero polynomial."""
        return self.coefficients == (0,)

    def evaluate(self, point: int) -> int:
        """Horner evaluation at ``point`` modulo the field prime."""
        accumulator = 0
        for coefficient in reversed(self.coefficients):
            accumulator = (accumulator * point + coefficient) % self.modulus
        return accumulator

    def __len__(self) -> int:
        return len(self.coefficients)

    # ------------------------------------------------------------------ #
    # ring operations
    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: "Polynomial") -> None:
        if other.modulus != self.modulus:
            raise OperandRangeError("cannot mix polynomials over different fields")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        length = max(len(self.coefficients), len(other.coefficients))
        summed = [
            (self.coefficient(i) + other.coefficient(i)) % self.modulus
            for i in range(length)
        ]
        return Polynomial.create(summed, self.modulus)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        length = max(len(self.coefficients), len(other.coefficients))
        difference = [
            (self.coefficient(i) - other.coefficient(i)) % self.modulus
            for i in range(length)
        ]
        return Polynomial.create(difference, self.modulus)

    def scale(self, scalar: int) -> "Polynomial":
        """Multiply every coefficient by a field scalar."""
        factor = scalar % self.modulus
        return Polynomial.create(
            [coefficient * factor % self.modulus for coefficient in self.coefficients],
            self.modulus,
        )

    def coefficient(self, index: int) -> int:
        """Coefficient of ``x**index`` (zero beyond the degree)."""
        if index < 0:
            raise OperandRangeError(f"coefficient index must be non-negative, got {index}")
        if index >= len(self.coefficients):
            return 0
        return self.coefficients[index]

    def multiply_schoolbook(self, other: "Polynomial") -> "Polynomial":
        """Quadratic-time product (reference for the NTT path)."""
        self._check_compatible(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.modulus)
        result = [0] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            if a == 0:
                continue
            for j, b in enumerate(other.coefficients):
                result[i + j] = (result[i + j] + a * b) % self.modulus
        return Polynomial.create(result, self.modulus)

    def multiply_ntt(
        self, other: "Polynomial", context: Optional[NttContext] = None
    ) -> "Polynomial":
        """Product via the number-theoretic transform.

        Requires the field to support an NTT of the needed size (the product
        length rounded up to a power of two).  A pre-built ``context`` of at
        least that size may be supplied to reuse twiddle factors.
        """
        self._check_compatible(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.modulus)
        product_length = len(self.coefficients) + len(other.coefficients) - 1
        size = 1
        while size < product_length:
            size *= 2
        size = max(size, 2)
        if context is None:
            context = NttContext(self.modulus, size)
        elif context.size < product_length:
            raise NttError(
                f"supplied NTT context of size {context.size} is too small for a "
                f"degree-{product_length - 1} product"
            )
        elif context.modulus != self.modulus:
            raise NttError("NTT context modulus does not match the polynomial field")

        padded_a = list(self.coefficients) + [0] * (context.size - len(self.coefficients))
        padded_b = list(other.coefficients) + [0] * (context.size - len(other.coefficients))
        eval_a = context.forward(padded_a)
        eval_b = context.forward(padded_b)
        pointwise = [(x * y) % self.modulus for x, y in zip(eval_a, eval_b)]
        coefficients = context.inverse(pointwise)[:product_length]
        return Polynomial.create(coefficients, self.modulus)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        """Product, choosing NTT when the field supports it and it pays off."""
        self._check_compatible(other)
        product_length = len(self.coefficients) + len(other.coefficients) - 1
        if product_length >= 32:
            size = 1
            while size < product_length:
                size *= 2
            if (self.modulus - 1) % size == 0:
                return self.multiply_ntt(other)
        return self.multiply_schoolbook(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.modulus == other.modulus and self.coefficients == other.coefficients

    def __hash__(self) -> int:
        return hash((self.coefficients, self.modulus))

    def __repr__(self) -> str:
        return (
            f"Polynomial(degree={self.degree}, modulus={self.modulus:#x}, "
            f"coefficients={self.coefficients[:4]}{'...' if len(self) > 4 else ''})"
        )
