"""Number-theoretic transform (NTT) over prime fields.

The NTT is one of the two dominant kernels of a zero-knowledge-proof backend
(Figure 7): polynomial multiplications in the proof system are carried out
point-wise in the evaluation domain, so forward/inverse transforms over the
curve's scalar field account for a large fraction of the modular
multiplications.  This implementation is the standard iterative radix-2
Cooley–Tukey transform; every butterfly's multiplications, memory accesses
and register writes are counted so the Figure 7 operation-count analysis can
be generated from measurement rather than quoted from the paper's citations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.errors import NttError
from repro.instrumentation import OperationCounter

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.algorithms.base import ModularMultiplier
    from repro.engine.engine import Engine

__all__ = ["NttContext", "bit_reverse_indices", "find_root_of_unity"]


def bit_reverse_indices(size: int) -> List[int]:
    """The bit-reversal permutation for a power-of-two ``size``."""
    if size <= 0 or size & (size - 1):
        raise NttError(f"size must be a power of two, got {size}")
    bits = size.bit_length() - 1
    indices = []
    for index in range(size):
        reversed_index = 0
        value = index
        for _ in range(bits):
            reversed_index = (reversed_index << 1) | (value & 1)
            value >>= 1
        indices.append(reversed_index)
    return indices


def find_root_of_unity(modulus: int, size: int, seed: int = 0) -> int:
    """Find an element of exact multiplicative order ``size`` modulo ``modulus``.

    Requires ``size`` to divide ``modulus - 1`` (the NTT-friendliness
    condition).  The search raises random elements to the power
    ``(modulus - 1) / size`` and keeps the first result whose order is
    exactly ``size``.
    """
    if size <= 0 or size & (size - 1):
        raise NttError(f"size must be a power of two, got {size}")
    if (modulus - 1) % size:
        raise NttError(
            f"no NTT of size {size} exists modulo {modulus:#x}: "
            f"{size} does not divide p - 1"
        )
    exponent = (modulus - 1) // size
    rng = random.Random(seed)
    for _ in range(256):
        candidate = pow(rng.randrange(2, modulus - 1), exponent, modulus)
        if candidate == 1:
            continue
        if size == 1 or pow(candidate, size // 2, modulus) != 1:
            return candidate
    raise NttError(
        f"could not find a primitive {size}-th root of unity modulo {modulus:#x}"
    )


@dataclass(frozen=True)
class _CountWeights:
    """How many architectural events one butterfly implies.

    The memory-access and register-write weights model a conventional
    (non-PIM) word-serial datapath: a butterfly reads two coefficients and a
    twiddle factor and writes two results (5 value-level accesses), and each
    256-bit modular multiplication on a 32-bit word-serial multiplier updates
    roughly ``2 * words + 4`` working registers.  These are the quantities
    Figure 7 compares and the ones ModSRAM's in-memory accumulation removes.
    """

    value_accesses_per_butterfly: int = 5
    register_writes_per_word: int = 2
    register_writes_fixed: int = 4


class NttContext:
    """Forward and inverse NTT of a fixed power-of-two size.

    ``multiplier`` routes every value-level modular multiplication (the
    butterfly twiddle products, the point-wise products and the inverse
    scaling) through a :class:`~repro.core.ModularMultiplier` backend — this
    is how :meth:`repro.engine.Engine.ntt` attaches the transform to its
    cached per-modulus context.  Without one, plain Python ``%`` arithmetic
    is used (the fast software oracle); the operation *counts* are identical
    either way.
    """

    def __init__(
        self,
        modulus: int,
        size: int,
        root_of_unity: Optional[int] = None,
        counter: Optional[OperationCounter] = None,
        word_bits: int = 32,
        multiplier: Optional["ModularMultiplier"] = None,
    ) -> None:
        if size <= 1 or size & (size - 1):
            raise NttError(f"size must be a power of two greater than 1, got {size}")
        if modulus <= 2:
            raise NttError(f"modulus must be greater than 2, got {modulus}")
        self.modulus = modulus
        self.size = size
        self.counter = counter or OperationCounter("ntt")
        self.word_bits = word_bits
        self.multiplier = multiplier
        if multiplier is None:
            self._modmul: Callable[[int, int], int] = (
                lambda x, y: (x * y) % modulus
            )
        else:
            # Operands are always reduced here, so the algorithm body is
            # called directly (batch-style); the multiplication counter is
            # kept truthful by hand.
            stats = multiplier.stats

            def _modmul(x: int, y: int) -> int:
                stats.multiplications += 1
                return multiplier._multiply(x, y, modulus)

            self._modmul = _modmul
        self._weights = _CountWeights()
        self.root = (
            root_of_unity
            if root_of_unity is not None
            else find_root_of_unity(modulus, size)
        )
        if pow(self.root, size, modulus) != 1 or pow(self.root, size // 2, modulus) == 1:
            raise NttError(
                f"{self.root:#x} is not a primitive {size}-th root of unity"
            )
        self.inverse_root = pow(self.root, modulus - 2, modulus)
        self.size_inverse = pow(size, modulus - 2, modulus)
        # Precomputed twiddle factors, natural order.
        self._twiddles = self._powers(self.root)
        self._inverse_twiddles = self._powers(self.inverse_root)

    def _powers(self, base: int) -> List[int]:
        powers = [1] * (self.size // 2)
        for index in range(1, self.size // 2):
            powers[index] = (powers[index - 1] * base) % self.modulus
        return powers

    # ------------------------------------------------------------------ #
    # counting helpers
    # ------------------------------------------------------------------ #
    @property
    def _words_per_operand(self) -> int:
        return max(1, -(-self.modulus.bit_length() // self.word_bits))

    def _count_butterfly(self) -> None:
        weights = self._weights
        self.counter.increment("modmul")
        self.counter.add("modadd", 2)
        self.counter.add("memory_access", weights.value_accesses_per_butterfly)
        self.counter.add(
            "register_write",
            weights.register_writes_per_word * self._words_per_operand
            + weights.register_writes_fixed,
        )

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def _transform(self, values: Sequence[int], twiddles: List[int]) -> List[int]:
        if len(values) != self.size:
            raise NttError(
                f"expected {self.size} coefficients, got {len(values)}"
            )
        modulus = self.modulus
        data = [value % modulus for value in values]
        # Bit-reversal permutation (decimation in time).
        for index, reversed_index in enumerate(bit_reverse_indices(self.size)):
            if index < reversed_index:
                data[index], data[reversed_index] = data[reversed_index], data[index]

        length = 2
        while length <= self.size:
            half = length // 2
            step = self.size // length
            for start in range(0, self.size, length):
                for offset in range(half):
                    twiddle = twiddles[offset * step]
                    even = data[start + offset]
                    odd = self._modmul(data[start + offset + half], twiddle)
                    data[start + offset] = (even + odd) % modulus
                    data[start + offset + half] = (even - odd) % modulus
                    self._count_butterfly()
            length *= 2
        return data

    @classmethod
    def from_engine(
        cls,
        engine: "Engine",
        size: int,
        modulus: Optional[int] = None,
    ) -> "NttContext":
        """An NTT context whose multiplications run on ``engine``'s backend.

        Delegates to :meth:`repro.engine.Engine.ntt`, which caches the
        context alongside the engine's per-modulus state.
        """
        return engine.ntt(size, modulus=modulus)

    def forward(self, values: Sequence[int]) -> List[int]:
        """Forward NTT (coefficients → evaluations)."""
        with self.counter.scope("forward"):
            return self._transform(values, self._twiddles)

    def inverse(self, values: Sequence[int]) -> List[int]:
        """Inverse NTT (evaluations → coefficients)."""
        with self.counter.scope("inverse"):
            transformed = self._transform(values, self._inverse_twiddles)
            result = []
            for value in transformed:
                result.append(self._modmul(value, self.size_inverse))
                self.counter.increment("modmul")
                self.counter.add("memory_access", 2)
            return result

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def multiply_polynomials(
        self, a: Sequence[int], b: Sequence[int]
    ) -> List[int]:
        """Multiply two polynomials of degree < size/2 via the NTT.

        The product has degree < size, so no wrap-around occurs and the
        result equals schoolbook polynomial multiplication modulo ``p``.
        """
        if len(a) > self.size // 2 or len(b) > self.size // 2:
            raise NttError(
                "each input polynomial must have at most size/2 coefficients "
                f"({self.size // 2}) to avoid cyclic wrap-around"
            )
        padded_a = list(a) + [0] * (self.size - len(a))
        padded_b = list(b) + [0] * (self.size - len(b))
        eval_a = self.forward(padded_a)
        eval_b = self.forward(padded_b)
        pointwise = []
        for x, y in zip(eval_a, eval_b):
            pointwise.append(self._modmul(x, y))
            self.counter.increment("modmul")
            self.counter.add("memory_access", 3)
        return self.inverse(pointwise)
