"""Closed-form operation-count models for the ZKP kernels (Figure 7).

Figure 7 of the paper illustrates, for an input vector of size 2**15 and
256-bit operands, how many modular multiplications, memory accesses and
register writes the two dominant ZKP components (NTT and MSM) perform —
the point being that ModSRAM removes the intermediate register writes and
memory traffic of every modular multiplication by keeping the redundant
accumulator inside the array.

A 2**15-point MSM over a 254-bit field is too expensive to execute in pure
Python, so the figure is regenerated from the closed-form models below.
They are not free parameters: the same formulas are validated against the
*instrumented* NTT and Pippenger implementations at small sizes by the test
suite, and then evaluated at the paper's operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import OperandRangeError

__all__ = [
    "OperationCounts",
    "ntt_operation_counts",
    "msm_operation_counts",
    "PAPER_FIGURE7_VECTOR_SIZE",
    "PAPER_FIGURE7_BITWIDTH",
]

#: The operating point of Figure 7.
PAPER_FIGURE7_VECTOR_SIZE = 2**15
PAPER_FIGURE7_BITWIDTH = 256

#: Field multiplications of one mixed Jacobian addition (8M + 3S).
MULS_PER_MIXED_ADDITION = 11
#: Field multiplications of one general Jacobian addition (12M + 4S).
MULS_PER_GENERAL_ADDITION = 16
#: Field multiplications of one Jacobian doubling (4M + 4S, a = 0 curves).
MULS_PER_DOUBLING = 8
#: Field-element reads/writes of one point addition (inputs + outputs).
VALUE_ACCESSES_PER_POINT_ADD = 12


@dataclass(frozen=True)
class OperationCounts:
    """Operation counts of one kernel invocation."""

    kernel: str
    vector_size: int
    bitwidth: int
    modular_multiplications: int
    memory_accesses: int
    register_writes: int

    def as_dict(self) -> Dict[str, int]:
        """Counts as a dictionary keyed the way Figure 7 labels them."""
        return {
            "modular_multiplication": self.modular_multiplications,
            "memory_access": self.memory_accesses,
            "register_writes": self.register_writes,
        }


def _words(bitwidth: int, word_bits: int = 32) -> int:
    return max(1, -(-bitwidth // word_bits))


def _register_writes_per_modmul(bitwidth: int, word_bits: int = 32) -> int:
    """Working-register updates of one modular multiplication.

    Models a conventional word-serial (CIOS-style) multiplier: two register
    updates per operand word plus a handful of fixed pipeline registers.
    These are exactly the writes ModSRAM eliminates by accumulating in the
    array.
    """
    return 2 * _words(bitwidth, word_bits) + 4


def ntt_operation_counts(
    vector_size: int = PAPER_FIGURE7_VECTOR_SIZE,
    bitwidth: int = PAPER_FIGURE7_BITWIDTH,
    word_bits: int = 32,
) -> OperationCounts:
    """Operation counts of one forward NTT of ``vector_size`` points.

    The structural counts follow the radix-2 Cooley–Tukey dataflow that
    :class:`repro.zkp.ntt.NttContext` implements (and is validated against):
    ``(N/2) log2 N`` butterflies, each with one twiddle multiplication, five
    value-level memory accesses and the per-multiplication register writes
    of a word-serial datapath.
    """
    if vector_size <= 1 or vector_size & (vector_size - 1):
        raise OperandRangeError(
            f"vector size must be a power of two, got {vector_size}"
        )
    if bitwidth <= 0:
        raise OperandRangeError(f"bitwidth must be positive, got {bitwidth}")
    stages = int(math.log2(vector_size))
    butterflies = (vector_size // 2) * stages
    modmuls = butterflies
    memory_accesses = 5 * butterflies
    register_writes = modmuls * _register_writes_per_modmul(bitwidth, word_bits)
    return OperationCounts(
        kernel="ntt",
        vector_size=vector_size,
        bitwidth=bitwidth,
        modular_multiplications=modmuls,
        memory_accesses=memory_accesses,
        register_writes=register_writes,
    )


def msm_point_additions(vector_size: int, bitwidth: int, window_bits: int) -> Dict[str, int]:
    """Structural point-operation counts of a bucket-method MSM.

    For every one of the ``ceil(bitwidth / c)`` windows: almost every input
    point lands in a bucket (one mixed addition each), the ``2**c - 1``
    buckets are combined with two general additions per bucket (running-sum
    reduction), and the window results are combined with ``c`` doublings
    plus one addition per window.
    """
    windows = -(-bitwidth // window_bits)
    buckets = (1 << window_bits) - 1
    mixed_additions = windows * vector_size
    general_additions = windows * 2 * buckets + windows
    doublings = windows * window_bits
    return {
        "windows": windows,
        "buckets_per_window": buckets,
        "mixed_additions": mixed_additions,
        "general_additions": general_additions,
        "doublings": doublings,
    }


def msm_operation_counts(
    vector_size: int = PAPER_FIGURE7_VECTOR_SIZE,
    bitwidth: int = PAPER_FIGURE7_BITWIDTH,
    window_bits: int = 16,
    word_bits: int = 32,
) -> OperationCounts:
    """Operation counts of one bucket-method MSM of ``vector_size`` points.

    ``window_bits`` defaults to 16, the window PipeZK's architecture uses at
    this scale.  Field-multiplication costs per point operation use the
    standard Jacobian formulas (8M+3S mixed, 12M+4S general, 4M+4S double).
    """
    if vector_size <= 0:
        raise OperandRangeError(f"vector size must be positive, got {vector_size}")
    if bitwidth <= 0:
        raise OperandRangeError(f"bitwidth must be positive, got {bitwidth}")
    if window_bits <= 0:
        raise OperandRangeError(f"window size must be positive, got {window_bits}")

    structure = msm_point_additions(vector_size, bitwidth, window_bits)
    modmuls = (
        structure["mixed_additions"] * MULS_PER_MIXED_ADDITION
        + structure["general_additions"] * MULS_PER_GENERAL_ADDITION
        + structure["doublings"] * MULS_PER_DOUBLING
    )
    point_operations = (
        structure["mixed_additions"]
        + structure["general_additions"]
        + structure["doublings"]
    )
    words = _words(bitwidth, word_bits)
    memory_accesses = point_operations * VALUE_ACCESSES_PER_POINT_ADD * words
    register_writes = modmuls * _register_writes_per_modmul(bitwidth, word_bits)
    return OperationCounts(
        kernel="msm",
        vector_size=vector_size,
        bitwidth=bitwidth,
        modular_multiplications=modmuls,
        memory_accesses=memory_accesses,
        register_writes=register_writes,
    )
