"""Mapping the ZKP kernels onto ModSRAM macros.

The paper's Figure 7 argument is qualitative (ModSRAM removes the register
writes and memory accesses of every modular multiplication); this module
makes it quantitative by combining the operation-count models with the
macro's cycle/LUT-reuse behaviour:

* for the **NTT**, the multiplicand of every butterfly multiplication is a
  twiddle factor, and butterflies sharing a twiddle can be scheduled
  back-to-back on the same macro, so the radix-4 LUT is refilled only once
  per *distinct* twiddle per stage — a measurable data-reuse win;
* for the **MSM**, every multiplication's multiplicand is a fresh coordinate,
  so there is essentially no LUT reuse and the projection charges a refill
  per multiplication — the honest, conservative case.

Both projections go through :class:`repro.modsram.system.ModSRAMSystem`, so
macro count, latency, throughput, area and energy all come from the same
calibrated models used everywhere else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import OperandRangeError
from repro.modsram.config import ModSRAMConfig, PAPER_CONFIG
from repro.modsram.system import ModSRAMSystem, SystemProjection, Workload
from repro.zkp.opcount import msm_operation_counts, ntt_operation_counts

__all__ = ["ntt_distinct_twiddle_multiplications", "ntt_workload", "msm_workload", "KernelMapping"]


def ntt_distinct_twiddle_multiplications(vector_size: int) -> int:
    """Number of (stage, twiddle) pairs in a radix-2 NTT.

    Stage ``s`` (1-based, ``1 <= s <= log2 N``) uses ``2**(s-1)`` distinct
    twiddle factors; summing over stages gives ``N - 1``.  Each distinct pair
    is one radix-4 LUT refill when the butterflies sharing a twiddle are
    scheduled consecutively on one macro.
    """
    if vector_size <= 1 or vector_size & (vector_size - 1):
        raise OperandRangeError(
            f"vector size must be a power of two, got {vector_size}"
        )
    return vector_size - 1


def ntt_workload(vector_size: int, bitwidth: int = 256) -> Workload:
    """The NTT's multiplications as a ModSRAM workload (twiddle reuse aware)."""
    counts = ntt_operation_counts(vector_size, bitwidth)
    return Workload(
        name=f"ntt-2^{int(math.log2(vector_size))}",
        multiplications=counts.modular_multiplications,
        multiplicand_changes=ntt_distinct_twiddle_multiplications(vector_size),
        bitwidth=bitwidth,
    )


def msm_workload(vector_size: int, bitwidth: int = 256, window_bits: int = 16) -> Workload:
    """The MSM's multiplications as a ModSRAM workload (no multiplicand reuse)."""
    counts = msm_operation_counts(vector_size, bitwidth, window_bits=window_bits)
    is_power_of_two = vector_size > 0 and (vector_size & (vector_size - 1)) == 0
    name = (
        f"msm-2^{int(math.log2(vector_size))}" if is_power_of_two else f"msm-{vector_size}"
    )
    return Workload(
        name=name,
        multiplications=counts.modular_multiplications,
        multiplicand_changes=None,
        bitwidth=bitwidth,
    )


@dataclass(frozen=True)
class KernelMapping:
    """Projection of both ZKP kernels onto a macro pool."""

    macros: int
    ntt: SystemProjection
    msm: SystemProjection

    def as_rows(self) -> list:
        """Rows for a report table: one per kernel."""
        rows = []
        for projection in (self.ntt, self.msm):
            rows.append(
                [
                    projection.workload.name,
                    projection.workload.multiplications,
                    projection.macros,
                    round(projection.latency_ms, 2),
                    round(projection.throughput_mops, 3),
                    round(projection.area_mm2, 3),
                    projection.avoided_register_writes,
                ]
            )
        return rows


def map_zkp_kernels(
    vector_size: int = 2**15,
    bitwidth: int = 256,
    macros: int = 16,
    config: Optional[ModSRAMConfig] = None,
) -> KernelMapping:
    """Project the Figure 7 kernels onto a pool of ModSRAM macros."""
    system = ModSRAMSystem(macros, config or PAPER_CONFIG)
    return KernelMapping(
        macros=macros,
        ntt=system.project(ntt_workload(vector_size, bitwidth)),
        msm=system.project(msm_workload(vector_size, bitwidth)),
    )
