"""ZKP workload streams (NTT / MSM) for chip-level dispatch.

The *linear views* of the Workload Graph API's ZKP builders:
:func:`repro.workloads.builders.ntt_graph` and
:func:`repro.workloads.builders.msm_graph` are the canonical,
dependency-aware form of the two dominant ZKP kernels of Figure 7, and
``graph.to_jobs()`` reproduces exactly the sequences emitted here (pinned
by ``tests/workloads/test_builders.py``).  The streams stay hand-rolled
generators so the ``2^16``-scale workloads of the chip-scaling experiment
schedule in O(1) memory without materialising the graph first.

The NTT stream is emitted twiddle-major — all butterflies sharing a
twiddle factor are consecutive — which is the operand ordering a
LUT-reuse-aware mapping would choose and the ordering under which the
paper's data-reuse argument applies to NTT; the MSM stream expands the
bucket method's point operations through the ECC sequences.
"""

from __future__ import annotations

from typing import Iterator

from repro.ecc.streams import point_operation_jobs
from repro.errors import OperandRangeError
from repro.modsram.chip import MultiplicationJob
from repro.modsram.scheduler import DOUBLING_SEQUENCE, MIXED_ADDITION_SEQUENCE
from repro.zkp.msm import default_window_bits

__all__ = ["ntt_stream", "msm_stream"]


def ntt_stream(size: int, tag: str = "ntt") -> Iterator[MultiplicationJob]:
    """A ``size``-point iterative NTT as a multiplication stream.

    ``log2(size)`` stages of ``size / 2`` butterflies each; stage ``s``
    uses ``2**s`` distinct twiddle factors, and the butterflies of one
    twiddle group are emitted consecutively (twiddle-major order), so a
    macro holding that twiddle's radix-4 LUT serves the whole group without
    a refill.
    """
    if size < 2 or size & (size - 1):
        raise OperandRangeError(
            f"NTT size must be a power of two >= 2, got {size}"
        )
    stages = size.bit_length() - 1
    for stage in range(stages):
        twiddles = 1 << stage
        group = size // (2 * twiddles)  # butterflies sharing one twiddle
        for twiddle in range(twiddles):
            key = f"{tag}.w[{stage}][{twiddle}]"
            for _ in range(group):
                yield MultiplicationJob(multiplicand=key, tag=f"{tag}:s{stage}")


def msm_stream(
    points: int,
    window_bits: int = 0,
    scalar_bits: int = 256,
    tag: str = "msm",
) -> Iterator[MultiplicationJob]:
    """A ``points``-element bucket-method MSM as a multiplication stream.

    Mirrors :func:`repro.zkp.msm.msm_pippenger` structurally: for each of
    the ``ceil(scalar_bits / c)`` windows, every point lands in a bucket
    (one mixed addition each), the buckets are combined with a running-sum
    reduction (two Jacobian additions per bucket), and the window results
    are folded with ``c`` doublings per window.
    """
    if points <= 0:
        raise OperandRangeError(f"points must be positive, got {points}")
    if scalar_bits <= 0:
        raise OperandRangeError(f"scalar_bits must be positive, got {scalar_bits}")
    c = window_bits or default_window_bits(points)
    if c < 1:
        raise OperandRangeError(f"window size must be positive, got {c}")
    windows = -(-scalar_bits // c)
    buckets = (1 << c) - 1

    for window in range(windows):
        for point in range(points):
            yield from point_operation_jobs(
                MIXED_ADDITION_SEQUENCE, f"{tag}.w{window}.bucket[{point}]"
            )
        # Running-sum reduction: two Jacobian additions per bucket slot.
        # A full Jacobian-Jacobian addition costs roughly the mixed
        # sequence plus one more multiplication; the mixed sequence is the
        # conservative stand-in used throughout the scheduler layer.
        for slot in range(2 * buckets):
            yield from point_operation_jobs(
                MIXED_ADDITION_SEQUENCE, f"{tag}.w{window}.reduce[{slot}]"
            )
    for window in range(windows):
        for doubling in range(c):
            yield from point_operation_jobs(
                DOUBLING_SEQUENCE, f"{tag}.horner[{window}][{doubling}]"
            )
        yield from point_operation_jobs(
            MIXED_ADDITION_SEQUENCE, f"{tag}.horner-add[{window}]"
        )
