"""The paper's primary contribution: the R4CSA-LUT algorithm family.

This package contains the radix-4 Booth encoder (Table 1a), the
precomputation LUT builders (Tables 1b and 2), the R4CSA-LUT algorithm
itself (Algorithm 3), every baseline algorithm the paper compares against or
builds on, and the analytic cycle-complexity models behind Figure 1.
"""

from repro.core.algorithms import (
    BarrettMultiplier,
    CsaInterleavedMultiplier,
    InterleavedMultiplier,
    ModularMultiplier,
    MontgomeryMultiplier,
    MultiplierStats,
    R4CSALutContext,
    R4CSALutMultiplier,
    Radix4InterleavedMultiplier,
    SchoolbookMultiplier,
    available_multipliers,
    create_multiplier,
    get_multiplier,
    register_multiplier,
)
from repro.core.booth import (
    RADIX4_ENCODER_TABLE,
    booth_digit_count,
    booth_digit_radix4,
    booth_digits_radix4,
    booth_digits_radix8,
    encoder_truth_table,
)
from repro.core.complexity import (
    COMPLEXITY_MODELS,
    PAPER_FIGURE1_BITWIDTHS,
    complexity_sweep,
    cycles_mentt_bit_serial,
    cycles_r4csa_lut,
)
from repro.core.luts import (
    OverflowLut,
    Radix4Lut,
    build_overflow_lut,
    build_radix4_lut,
)

__all__ = [
    "BarrettMultiplier",
    "COMPLEXITY_MODELS",
    "CsaInterleavedMultiplier",
    "InterleavedMultiplier",
    "ModularMultiplier",
    "MontgomeryMultiplier",
    "MultiplierStats",
    "OverflowLut",
    "PAPER_FIGURE1_BITWIDTHS",
    "R4CSALutContext",
    "R4CSALutMultiplier",
    "RADIX4_ENCODER_TABLE",
    "Radix4InterleavedMultiplier",
    "Radix4Lut",
    "SchoolbookMultiplier",
    "available_multipliers",
    "booth_digit_count",
    "booth_digit_radix4",
    "booth_digits_radix4",
    "booth_digits_radix8",
    "build_overflow_lut",
    "build_radix4_lut",
    "complexity_sweep",
    "create_multiplier",
    "cycles_mentt_bit_serial",
    "cycles_r4csa_lut",
    "encoder_truth_table",
    "get_multiplier",
    "register_multiplier",
]
