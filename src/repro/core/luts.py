"""Precomputation look-up tables (Tables 1b and 2 of the paper).

R4CSA-LUT replaces per-iteration arithmetic with table look-ups:

* **LUT-radix4** (Table 1b) stores the five possible per-digit addends
  ``digit * B mod p`` for ``digit in {0, +1, +2, -2, -1}``.  Only three of
  them require computation (``2B``, ``-B``, ``-2B`` modulo ``p``); the table
  is valid for as long as the multiplicand ``B`` and modulus ``p`` are
  unchanged, which is what lets ModSRAM reuse the SRAM rows across many
  multiplications.

* **LUT-overflow** (Table 2) stores ``k * 2**(n+1) mod p`` for each possible
  overflow field ``k``.  When the redundant accumulator is shifted left by
  two, the bits that fall off the top of the ``n+1``-bit registers carry a
  weight of ``2**(n+1)``; adding the precomputed residue folds them back in
  without any carry propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ModulusError, OperandRangeError

__all__ = [
    "Radix4Lut",
    "OverflowLut",
    "build_radix4_lut",
    "build_overflow_lut",
    "RADIX4_DIGIT_ORDER",
]

#: Row order used by Table 1b of the paper (and by the ModSRAM memory map).
RADIX4_DIGIT_ORDER: Tuple[int, ...] = (0, +1, +2, -2, -1)


def _validate_modulus(modulus: int) -> None:
    if modulus <= 2:
        raise ModulusError(f"modulus must be greater than 2, got {modulus}")


@dataclass(frozen=True)
class Radix4Lut:
    """Table 1b: precomputed ``digit * B mod p`` for the five Booth digits."""

    multiplicand: int
    modulus: int
    entries: Dict[int, int] = field(repr=False)

    def __getitem__(self, digit: int) -> int:
        if digit not in self.entries:
            raise OperandRangeError(
                f"radix-4 digit must be one of {sorted(self.entries)}, got {digit}"
            )
        return self.entries[digit]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def digits(self) -> Tuple[int, ...]:
        """Digits in the paper's row order."""
        return RADIX4_DIGIT_ORDER

    def rows(self) -> List[Tuple[int, int]]:
        """Table rows ``(digit, value)`` in the paper's order (Table 1b)."""
        return [(digit, self.entries[digit]) for digit in RADIX4_DIGIT_ORDER]

    def computed_entry_count(self) -> int:
        """Number of entries that actually need modular computation.

        The paper notes "only three of them need computation": ``0`` is free
        and ``+1`` is just ``B`` itself.
        """
        return sum(1 for digit in self.entries if digit not in (0, +1))


@dataclass(frozen=True)
class OverflowLut:
    """Table 2: precomputed ``k * 2**(n+1) mod p`` for overflow field ``k``."""

    modulus: int
    register_width: int
    entries: Tuple[int, ...] = field(repr=False)

    def __getitem__(self, overflow: int) -> int:
        if not 0 <= overflow < len(self.entries):
            raise OperandRangeError(
                f"overflow index {overflow} outside the generated LUT "
                f"(0..{len(self.entries) - 1})"
            )
        return self.entries[overflow]

    def __len__(self) -> int:
        return len(self.entries)

    def rows(self) -> List[Tuple[int, int]]:
        """Table rows ``(overflow, value)``; the first 8 are the paper's Table 2."""
        return list(enumerate(self.entries))

    def paper_rows(self) -> List[Tuple[int, int]]:
        """Exactly the eight rows of the paper's Table 2 (3-bit overflow)."""
        return self.rows()[:8]


def build_radix4_lut(multiplicand: int, modulus: int) -> Radix4Lut:
    """Build Table 1b for a given multiplicand ``B`` and modulus ``p``.

    All values are fully reduced (``0 <= value < p``), matching the operands
    ModSRAM writes into the LUT word lines.
    """
    _validate_modulus(modulus)
    if not 0 <= multiplicand < modulus:
        raise OperandRangeError(
            f"multiplicand must satisfy 0 <= B < p, got B={multiplicand}, p={modulus}"
        )
    entries = {
        0: 0,
        +1: multiplicand % modulus,
        +2: (2 * multiplicand) % modulus,
        -2: (-2 * multiplicand) % modulus,
        -1: (-multiplicand) % modulus,
    }
    return Radix4Lut(multiplicand=multiplicand, modulus=modulus, entries=entries)


def build_overflow_lut(
    modulus: int, register_width: int, entry_count: int = 8
) -> OverflowLut:
    """Build Table 2 for a modulus and redundant-register width.

    Parameters
    ----------
    modulus:
        The modulus ``p``.
    register_width:
        Width of the sum/carry registers.  The paper uses ``n + 1`` where
        ``n`` is the operand bitwidth; the overflow bits therefore carry a
        weight of ``2**register_width``.
    entry_count:
        Number of LUT rows to generate.  The paper's Table 2 lists 8 rows
        (a 3-bit overflow field); the reproduction generates 16 by default
        where needed so that every overflow index that can transiently occur
        is covered (see DESIGN.md).
    """
    _validate_modulus(modulus)
    if register_width <= 0:
        raise OperandRangeError(
            f"register width must be positive, got {register_width}"
        )
    if entry_count < 1:
        raise OperandRangeError(
            f"entry count must be at least 1, got {entry_count}"
        )
    weight = 1 << register_width
    entries = tuple((k * weight) % modulus for k in range(entry_count))
    return OverflowLut(
        modulus=modulus, register_width=register_width, entries=entries
    )
