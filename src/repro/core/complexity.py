"""Analytic cycle-complexity models (Figure 1 of the paper).

Figure 1 compares, as a function of operand bitwidth, the cycles one modular
multiplication takes under the MeNTT bit-serial algorithm, a projected
variant of it, and the paper's algorithm.  These closed-form laws are the
"algorithm complexity" half of the paper's story; the measured counterpart
comes from the cycle-accurate accelerator model in :mod:`repro.modsram`.

All functions take the operand bitwidth ``n`` and return a cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import OperandRangeError

__all__ = [
    "cycles_mentt_bit_serial",
    "cycles_mentt_projected",
    "cycles_r4csa_lut",
    "cycles_interleaved",
    "cycles_radix4_interleaved",
    "cycles_csa_interleaved",
    "ComplexityModel",
    "COMPLEXITY_MODELS",
    "complexity_sweep",
    "PAPER_FIGURE1_BITWIDTHS",
]

#: The bitwidths plotted on the x-axis of Figure 1.
PAPER_FIGURE1_BITWIDTHS: Tuple[int, ...] = (8, 16, 32, 64, 128, 256)


def _check_bitwidth(bitwidth: int) -> None:
    if bitwidth <= 0:
        raise OperandRangeError(f"bitwidth must be positive, got {bitwidth}")


def cycles_mentt_bit_serial(bitwidth: int) -> int:
    """MeNTT's bit-serial modular multiplication: ``(n + 1)**2`` cycles.

    The paper (§5.4) states the MeNTT algorithm needs ``(n+1)^2`` cycles per
    modular multiplication once scaled to a common bitwidth, which is 66 049
    cycles at 256 bits (Table 3).
    """
    _check_bitwidth(bitwidth)
    return (bitwidth + 1) ** 2


def cycles_mentt_projected(bitwidth: int) -> int:
    """The "MeNTT projected algorithm" curve of Figure 1.

    Figure 1 shows a second MeNTT curve in which the bit-serial algorithm is
    projected onto a design whose word-level operations are parallelised but
    whose reduction remains bit-serial; it grows as ``n * (n + 1) / 2``
    (quadratic with a smaller constant), sitting between the MeNTT measured
    curve and the linear curve of this work.
    """
    _check_bitwidth(bitwidth)
    return bitwidth * (bitwidth + 1) // 2


def cycles_r4csa_lut(bitwidth: int) -> int:
    """This work: ``3n - 1`` cycles (six array accesses per radix-4 digit)."""
    _check_bitwidth(bitwidth)
    return 3 * bitwidth - 1


def cycles_interleaved(bitwidth: int) -> int:
    """Classic interleaved algorithm (Algorithm 1): ``6n`` full-width steps."""
    _check_bitwidth(bitwidth)
    return 6 * bitwidth


def cycles_radix4_interleaved(bitwidth: int) -> int:
    """Radix-4 interleaved algorithm (Algorithm 2): ``5 * ceil(n/2)`` steps."""
    _check_bitwidth(bitwidth)
    return 5 * ((bitwidth + 1) // 2)


def cycles_csa_interleaved(bitwidth: int) -> int:
    """Radix-2 carry-save interleaved algorithm: ``6n - 1`` array accesses."""
    _check_bitwidth(bitwidth)
    return 6 * bitwidth - 1


@dataclass(frozen=True)
class ComplexityModel:
    """A named cycle-count law used in the Figure 1 sweep."""

    key: str
    label: str
    order: str
    in_paper_figure: bool
    cycles: Callable[[int], int]

    def sweep(self, bitwidths: Sequence[int]) -> List[int]:
        """Evaluate the law at every requested bitwidth."""
        return [self.cycles(bitwidth) for bitwidth in bitwidths]


#: Every law the analysis layer knows about, keyed by identifier.  The three
#: whose ``in_paper_figure`` flag is set are the curves of Figure 1.
COMPLEXITY_MODELS: Dict[str, ComplexityModel] = {
    model.key: model
    for model in (
        ComplexityModel(
            key="mentt",
            label="MeNTT algorithm",
            order="O(n^2)",
            in_paper_figure=True,
            cycles=cycles_mentt_bit_serial,
        ),
        ComplexityModel(
            key="mentt-projected",
            label="MeNTT projected algorithm",
            order="O(n^2)",
            in_paper_figure=True,
            cycles=cycles_mentt_projected,
        ),
        ComplexityModel(
            key="r4csa-lut",
            label="Our algorithm (R4CSA-LUT)",
            order="O(n)",
            in_paper_figure=True,
            cycles=cycles_r4csa_lut,
        ),
        ComplexityModel(
            key="interleaved",
            label="Interleaved (Algorithm 1)",
            order="O(n)",
            in_paper_figure=False,
            cycles=cycles_interleaved,
        ),
        ComplexityModel(
            key="radix4-interleaved",
            label="Radix-4 interleaved (Algorithm 2)",
            order="O(n)",
            in_paper_figure=False,
            cycles=cycles_radix4_interleaved,
        ),
        ComplexityModel(
            key="csa-interleaved",
            label="Radix-2 CSA interleaved",
            order="O(n)",
            in_paper_figure=False,
            cycles=cycles_csa_interleaved,
        ),
    )
}


def complexity_sweep(
    bitwidths: Sequence[int] = PAPER_FIGURE1_BITWIDTHS,
    keys: Sequence[str] | None = None,
) -> Dict[str, List[int]]:
    """Evaluate cycle laws over a bitwidth sweep.

    Parameters
    ----------
    bitwidths:
        Bitwidths to evaluate (defaults to the paper's Figure 1 x-axis).
    keys:
        Which models to include; defaults to the three curves in Figure 1.
    """
    if keys is None:
        keys = [
            key for key, model in COMPLEXITY_MODELS.items() if model.in_paper_figure
        ]
    sweep: Dict[str, List[int]] = {}
    for key in keys:
        if key not in COMPLEXITY_MODELS:
            raise OperandRangeError(
                f"unknown complexity model {key!r}; available: "
                f"{sorted(COMPLEXITY_MODELS)}"
            )
        sweep[key] = COMPLEXITY_MODELS[key].sweep(bitwidths)
    return sweep
