"""Booth recoding (radix-4 and radix-8 encoders).

The radix-4 Booth encoder is Table 1a of the paper: three multiplier bits
(with one bit of overlap between consecutive groups) are recoded into a
signed digit in ``{-2, -1, 0, +1, +2}``, so each iteration of the interleaved
multiplier consumes two multiplier bits instead of one and the iteration
count is halved.

The ModSRAM near-memory circuit implements this encoder as a handful of
gates next to the multiplier flip-flop; here it is a pure function plus the
digit-expansion helpers used by both the reference algorithms and the
cycle-level accelerator model.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import BitWidthError, OperandRangeError

__all__ = [
    "RADIX4_ENCODER_TABLE",
    "RADIX8_ENCODER_TABLE",
    "booth_digit_radix4",
    "booth_digits_radix4",
    "booth_digits_radix8",
    "booth_digit_count",
    "encoder_truth_table",
]

#: Table 1a of the paper: (a_{i+1}, a_i, a_{i-1}) -> signed digit.
RADIX4_ENCODER_TABLE: Dict[Tuple[int, int, int], int] = {
    (0, 0, 0): 0,
    (0, 0, 1): +1,
    (0, 1, 0): +1,
    (0, 1, 1): +2,
    (1, 0, 0): -2,
    (1, 0, 1): -1,
    (1, 1, 0): -1,
    (1, 1, 1): 0,
}

#: Radix-8 Booth encoder: (a_{i+2}, a_{i+1}, a_i, a_{i-1}) -> signed digit.
#: Included because the paper discusses radix-8 as the natural extension
#: ("four bits are processed with one bit overlapping").
RADIX8_ENCODER_TABLE: Dict[Tuple[int, int, int, int], int] = {
    (0, 0, 0, 0): 0,
    (0, 0, 0, 1): +1,
    (0, 0, 1, 0): +1,
    (0, 0, 1, 1): +2,
    (0, 1, 0, 0): +2,
    (0, 1, 0, 1): +3,
    (0, 1, 1, 0): +3,
    (0, 1, 1, 1): +4,
    (1, 0, 0, 0): -4,
    (1, 0, 0, 1): -3,
    (1, 0, 1, 0): -3,
    (1, 0, 1, 1): -2,
    (1, 1, 0, 0): -2,
    (1, 1, 0, 1): -1,
    (1, 1, 1, 0): -1,
    (1, 1, 1, 1): 0,
}


def booth_digit_radix4(a_high: int, a_mid: int, a_low: int) -> int:
    """Recode one overlapping bit triple into a radix-4 Booth digit.

    This is exactly Table 1a: ``digit = a_low + a_mid - 2 * a_high``.
    """
    for name, bit in (("a_high", a_high), ("a_mid", a_mid), ("a_low", a_low)):
        if bit not in (0, 1):
            raise OperandRangeError(f"{name} must be a bit (0 or 1), got {bit!r}")
    return RADIX4_ENCODER_TABLE[(a_high, a_mid, a_low)]


def booth_digit_count(bitwidth: int, full_range: bool = True) -> int:
    """Number of radix-4 digits needed to recode a ``bitwidth``-bit operand.

    Radix-4 Booth recoding of an *unsigned* operand ``a`` is exact over
    ``m`` digits only when bit ``2m - 1`` of ``a`` is zero.  With
    ``full_range=True`` (the default) one extra digit is allotted so that
    any ``bitwidth``-bit operand recodes exactly; with ``full_range=False``
    the paper's ``ceil(n / 2)`` digit count is used, which is exact only
    when the operand's top bit is clear (true for BN254-sized moduli held
    in 256-bit registers).
    """
    if bitwidth <= 0:
        raise BitWidthError(f"bitwidth must be positive, got {bitwidth}")
    base = (bitwidth + 1) // 2
    if not full_range:
        return base
    # One more digit is only required when the top processed bit can be set,
    # i.e. when the bitwidth is even (for odd widths the extra overlap bit is
    # already a padding zero).
    return base + 1 if bitwidth % 2 == 0 else base


def booth_digits_radix4(
    value: int, bitwidth: int, full_range: bool = True
) -> List[int]:
    """Radix-4 Booth digits of ``value``, most-significant digit first.

    The returned digits satisfy ``value == sum(d_i * 4**i)`` where ``i``
    counts from the *end* of the list (least-significant digit last), i.e.
    the list is ordered the way the interleaved main loop consumes it.

    Raises :class:`OperandRangeError` if ``full_range`` is ``False`` and the
    recoding would be inexact (operand top bit set), because silently
    producing a wrong expansion would defeat the point of a reproduction.
    """
    if bitwidth <= 0:
        raise BitWidthError(f"bitwidth must be positive, got {bitwidth}")
    if value < 0:
        raise OperandRangeError(f"value must be non-negative, got {value}")
    if value >> bitwidth:
        raise BitWidthError(
            f"value {value:#x} does not fit in {bitwidth} bits"
        )

    digit_count = booth_digit_count(bitwidth, full_range=full_range)
    top_bit_position = 2 * digit_count - 1
    if (value >> top_bit_position) & 1:
        raise OperandRangeError(
            "radix-4 Booth recoding over "
            f"{digit_count} digits is inexact for {value:#x}: bit "
            f"{top_bit_position} is set; use full_range=True"
        )

    digits: List[int] = []
    previous_bit = 0  # a_{-1} = 0
    for digit_index in range(digit_count):
        low = (value >> (2 * digit_index)) & 1
        high = (value >> (2 * digit_index + 1)) & 1
        digits.append(booth_digit_radix4(high, low, previous_bit))
        previous_bit = high
    digits.reverse()
    return digits


def booth_digits_radix8(value: int, bitwidth: int) -> List[int]:
    """Radix-8 Booth digits of ``value``, most-significant digit first.

    Provided for the radix-8 variant the paper's background section
    discusses; always uses enough digits to recode any unsigned operand
    exactly.
    """
    if bitwidth <= 0:
        raise BitWidthError(f"bitwidth must be positive, got {bitwidth}")
    if value < 0:
        raise OperandRangeError(f"value must be non-negative, got {value}")
    if value >> bitwidth:
        raise BitWidthError(f"value {value:#x} does not fit in {bitwidth} bits")

    digit_count = bitwidth // 3 + 1
    digits: List[int] = []
    previous_bit = 0
    for digit_index in range(digit_count):
        base = 3 * digit_index
        b0 = (value >> base) & 1
        b1 = (value >> (base + 1)) & 1
        b2 = (value >> (base + 2)) & 1
        digits.append(RADIX8_ENCODER_TABLE[(b2, b1, b0, previous_bit)])
        previous_bit = b2
    digits.reverse()
    return digits


def encoder_truth_table() -> List[Tuple[int, int, int, int]]:
    """Table 1a as a list of rows ``(a_{i+1}, a_i, a_{i-1}, digit)``.

    Used by the analysis layer to regenerate the paper's Table 1a verbatim.
    """
    rows = []
    for bits in sorted(RADIX4_ENCODER_TABLE):
        rows.append((bits[0], bits[1], bits[2], RADIX4_ENCODER_TABLE[bits]))
    return rows
