"""R4CSA-LUT: the paper's proposed algorithm (Algorithm 3).

Radix-4 Carry-Save-Addition interleaved modular multiplication with look-up
tables.  Compared with Algorithm 2 it keeps the accumulator in redundant
(sum, carry) form so the per-iteration additions become carry-*free* bitwise
XOR3/MAJ operations — exactly the operations the ModSRAM logic-SA module
computes inside the SRAM array — and it replaces the reduction of the
quadrupled accumulator with a second table look-up (Table 2): the bits that
overflow the ``n+1``-bit registers during the shift are folded back in by
adding the precomputed residue ``overflow * 2**(n+1) mod p``.

Each iteration therefore consists of two carry-save additions (one against
LUT-radix4, one against LUT-overflow) and two shifts; no carry ever
propagates until the single full addition after the final iteration.

Implementation notes (see DESIGN.md §1 for the full discussion):

* The paper's pseudocode overwrites ``sum`` before computing ``carry``; the
  hardware dataflow of Figure 3 produces XOR3 and MAJ from the same three
  word lines simultaneously, i.e. a standard carry-save adder, which is what
  this module implements.
* The carry word is one bit wider than ``n+1`` for one cycle (the MAJ output
  is shifted left); the escaped bit is captured and folded into the *next*
  iteration's overflow index with weight 4 (it is two shift positions older
  by the time it is consumed).  The overflow LUT is generated with 16
  entries so every reachable index is covered; its first eight rows are
  exactly the paper's Table 2.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bitvec import CarrySaveValue
from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.core.booth import booth_digits_radix4
from repro.core.luts import OverflowLut, Radix4Lut, build_overflow_lut, build_radix4_lut
from repro.errors import OperandRangeError

__all__ = [
    "R4CSALutMultiplier",
    "R4CSALutContext",
    "IterationSnapshot",
    "OVERFLOW_LUT_ENTRIES",
]

#: Number of overflow-LUT entries generated (the paper's Table 2 lists 8;
#: see the module docstring for why the reproduction provisions 16).
OVERFLOW_LUT_ENTRIES = 16


@dataclass(frozen=True)
class R4CSALutContext:
    """Precomputed state reusable across multiplications.

    LUT-radix4 depends on ``(B, p)`` and LUT-overflow on ``p`` alone, so as
    long as the multiplicand and modulus are unchanged the tables — which
    live in SRAM word lines in ModSRAM — are reused.  This mirrors the
    paper's data-reuse argument.
    """

    multiplicand: int
    modulus: int
    bitwidth: int
    register_width: int
    radix4_lut: Radix4Lut
    overflow_lut: OverflowLut

    @classmethod
    def create(
        cls,
        multiplicand: int,
        modulus: int,
        bitwidth: Optional[int] = None,
        overflow_lut: Optional[OverflowLut] = None,
    ) -> "R4CSALutContext":
        """Precompute both LUTs for a multiplicand/modulus pair.

        ``overflow_lut`` may be passed in when a caller already holds the
        per-modulus table (it depends on ``p`` alone), so switching
        multiplicand only rebuilds LUT-radix4.
        """
        if bitwidth is None:
            bitwidth = max(modulus.bit_length(), 2)
        register_width = bitwidth + 1
        if overflow_lut is None:
            overflow_lut = build_overflow_lut(
                modulus, register_width, entry_count=OVERFLOW_LUT_ENTRIES
            )
        return cls(
            multiplicand=multiplicand,
            modulus=modulus,
            bitwidth=bitwidth,
            register_width=register_width,
            radix4_lut=build_radix4_lut(multiplicand, modulus),
            overflow_lut=overflow_lut,
        )


@dataclass(frozen=True)
class IterationSnapshot:
    """State of the redundant accumulator after one main-loop iteration.

    Captured for dataflow illustrations (Figure 3 of the paper) and for the
    invariant checks in the test suite.
    """

    iteration: int
    digit: int
    overflow_index: int
    sum_word: int
    carry_word: int
    pending_overflow: int

    def resolved(self) -> int:
        """The logical accumulator value, ignoring the pending overflow bit."""
        return self.sum_word + self.carry_word


@register_multiplier
class R4CSALutMultiplier(ModularMultiplier):
    """Algorithm 3: radix-4, carry-save, LUT-based interleaved multiplication."""

    name = "r4csa-lut"
    description = (
        "Radix-4 carry-save interleaved multiplication with precomputed "
        "radix-4 and overflow LUTs (Algorithm 3, the paper's contribution)."
    )
    direct_form = True

    def __init__(self, full_range: bool = True, record_trace: bool = False) -> None:
        super().__init__()
        self.full_range = full_range
        self.record_trace = record_trace
        self.last_trace: List[IterationSnapshot] = []
        self._context: Optional[R4CSALutContext] = None
        self._overflow: Optional[Tuple[int, int, OverflowLut]] = None
        self._overflow_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # precomputation / context handling
    # ------------------------------------------------------------------ #
    def _overflow_for(self, modulus: int, register_width: int) -> OverflowLut:
        """Return (and cache) the per-modulus overflow LUT.

        LUT-overflow depends on ``p`` alone, so it is cached separately from
        the ``(B, p)`` context: switching multiplicand under the same
        modulus only rebuilds LUT-radix4.  The build runs under a lock with
        a re-check, so concurrent :meth:`prepare` calls construct the table
        exactly once (the prepare contract of the base class).
        """
        cached = self._overflow
        if cached is not None and cached[0] == modulus and cached[1] == register_width:
            return cached[2]
        with self._overflow_lock:
            cached = self._overflow
            if (
                cached is not None
                and cached[0] == modulus
                and cached[1] == register_width
            ):
                return cached[2]
            lut = build_overflow_lut(
                modulus, register_width, entry_count=OVERFLOW_LUT_ENTRIES
            )
            self._overflow = (modulus, register_width, lut)
            return lut

    def prepare(self, modulus: int) -> None:
        """Build the per-modulus overflow LUT eagerly (idempotent, locked)."""
        bitwidth = max(modulus.bit_length(), 2)
        self._overflow_for(modulus, bitwidth + 1)

    def context_for(self, multiplicand: int, modulus: int) -> R4CSALutContext:
        """Return (and cache) the LUT context for ``(B, p)``.

        The cache has depth one, mirroring the single set of LUT word lines
        in the ModSRAM array.
        """
        context = self._context
        if (
            context is None
            or context.multiplicand != multiplicand
            or context.modulus != modulus
        ):
            bitwidth = max(modulus.bit_length(), 2)
            context = R4CSALutContext.create(
                multiplicand,
                modulus,
                bitwidth=bitwidth,
                overflow_lut=self._overflow_for(modulus, bitwidth + 1),
            )
            self._context = context
            self.stats.precomputations += 1
        return context

    # ------------------------------------------------------------------ #
    # main algorithm
    # ------------------------------------------------------------------ #
    def _multiply(self, a: int, b: int, modulus: int) -> int:
        context = self.context_for(b, modulus)
        sum_word, carry_word, pending = self._main_loop(a, context)
        return self._finalize(sum_word, carry_word, pending, context)

    def _main_loop(
        self, multiplier: int, context: R4CSALutContext
    ) -> Tuple[int, int, int]:
        """Run the carry-free main loop, returning the redundant result.

        Returns ``(sum_word, carry_word, pending_overflow)`` such that
        ``sum_word + carry_word + pending_overflow * 2**register_width`` is
        congruent to ``A * B`` modulo ``p``.
        """
        width = context.register_width
        if self.record_trace:
            self.last_trace = []

        digits = booth_digits_radix4(
            multiplier, context.bitwidth, full_range=self.full_range
        )
        accumulator = CarrySaveValue.zero(width)
        pending = 0

        for index, digit in enumerate(digits):
            self.stats.iterations += 1

            # -- shift left by two (multiply the accumulator by four) ----- #
            accumulator, sum_overflow, carry_overflow = accumulator.shifted_left(2)
            self.stats.shifts += 2

            # -- first carry-save addition: the Booth-digit addend -------- #
            addend = context.radix4_lut[digit]
            self.stats.lut_lookups += 1
            accumulator, escaped = accumulator.add(addend)
            self.stats.carry_save_additions += 1

            # -- fold every escaped bit back in through LUT-overflow ------ #
            # The pending bit escaped *after* the previous iteration's second
            # CSA; the two intervening shift positions give it weight 4.
            overflow_index = (
                sum_overflow + carry_overflow + escaped + 4 * pending
            )
            addend = context.overflow_lut[overflow_index]
            self.stats.lut_lookups += 1
            accumulator, pending = accumulator.add(addend)
            self.stats.carry_save_additions += 1

            if self.record_trace:
                self.last_trace.append(
                    IterationSnapshot(
                        iteration=index,
                        digit=digit,
                        overflow_index=overflow_index,
                        sum_word=accumulator.sum_word.value,
                        carry_word=accumulator.carry_word.value,
                        pending_overflow=pending,
                    )
                )

        return accumulator.sum_word.value, accumulator.carry_word.value, pending

    def _finalize(
        self, sum_word: int, carry_word: int, pending: int, context: R4CSALutContext
    ) -> int:
        """Final full addition and reduction (the near-memory step).

        ``sum + carry`` is at most ``2**(n+2)`` and the modulus satisfies
        ``p > 2**(n-1)`` (we size the registers from the modulus), so a
        handful of conditional subtractions suffice; each is counted.
        """
        total = sum_word + carry_word + (pending << context.register_width)
        self.stats.full_additions += 1
        modulus = context.modulus
        while total >= modulus:
            total -= modulus
            self.stats.subtractions += 1
        return total

    # ------------------------------------------------------------------ #
    # cycle model
    # ------------------------------------------------------------------ #
    def cycles(self, bitwidth: int) -> Optional[int]:
        """The paper's cycle count: ``3n - 1`` array cycles at ``n`` bits.

        Six array accesses per iteration over ``n/2`` iterations, with the
        last carry write-back elided (see DESIGN.md §4).  This is the
        analytic counterpart of the measured count produced by the
        cycle-accurate :class:`repro.modsram.ModSRAMAccelerator`.
        """
        if bitwidth <= 0:
            raise OperandRangeError(f"bitwidth must be positive, got {bitwidth}")
        iterations = (bitwidth + 1) // 2
        return 6 * iterations - 1
