"""Radix-8 Booth-encoded interleaved modular multiplication.

The paper's background section notes that radix-8 Booth encoding is the
natural extension of the radix-4 scheme ("four bits are processed with one
bit overlapping. As a result, the total iterations are cut down by
one-third") and cites Javeed & Wang's FPGA multipliers, which implement both.
A radix-8 variant needs a larger per-digit LUT — nine possible digits, of
which the ±3 multiples cannot be produced by shifting alone — so it trades
LUT word lines for iterations.  Implementing it lets the ablation benchmarks
quantify that trade-off against the radix-4 design the paper chose.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.core.booth import booth_digits_radix8
from repro.errors import ModulusError, OperandRangeError

__all__ = ["Radix8InterleavedMultiplier", "build_radix8_lut"]


def build_radix8_lut(multiplicand: int, modulus: int) -> Dict[int, int]:
    """Per-digit addends ``digit * B mod p`` for the radix-8 digit set.

    Nine entries (digits −4…+4); five of them (±2, ±3, ±4) require modular
    computation, versus three for the radix-4 LUT of Table 1b.
    """
    if modulus <= 2:
        raise ModulusError(f"modulus must be greater than 2, got {modulus}")
    if not 0 <= multiplicand < modulus:
        raise OperandRangeError(
            f"multiplicand must satisfy 0 <= B < p, got B={multiplicand}, p={modulus}"
        )
    return {digit: (digit * multiplicand) % modulus for digit in range(-4, 5)}


@register_multiplier
class Radix8InterleavedMultiplier(ModularMultiplier):
    """Radix-8 Booth-encoded interleaved multiplication (background, §2.1)."""

    name = "radix8-interleaved"
    description = (
        "Radix-8 Booth-encoded interleaved multiplication with a nine-entry "
        "digit LUT (one third fewer iterations than radix-4)."
    )
    direct_form = True

    #: Steps per iteration in the analytic model: shift-by-three, LUT-based
    #: reduction of the 8x accumulator, digit addition, conditional subtract.
    CYCLES_PER_ITERATION = 5

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        bitwidth = max(modulus.bit_length(), 3)
        lut = build_radix8_lut(b, modulus)
        self.stats.precomputations += 1

        accumulator = 0
        for digit in booth_digits_radix8(a, bitwidth):
            self.stats.iterations += 1

            accumulator <<= 3
            self.stats.shifts += 1

            # 8C < 8p: the reduction needs up to seven subtractions, folded
            # into one look-up in a hardware mapping (as for Algorithm 2).
            self.stats.lut_lookups += 1
            while accumulator >= modulus:
                accumulator -= modulus
                self.stats.subtractions += 1

            addend = lut[digit]
            self.stats.lut_lookups += 1
            if addend:
                accumulator += addend
                self.stats.full_additions += 1

            self.stats.comparisons += 1
            if accumulator >= modulus:
                accumulator -= modulus
                self.stats.subtractions += 1
        return accumulator

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Analytic cycle count: one third fewer iterations than radix-4."""
        iterations = bitwidth // 3 + 1
        return self.CYCLES_PER_ITERATION * iterations

    def lut_rows(self) -> int:
        """Word lines a radix-8 digit LUT would occupy (9 versus 5)."""
        return 9
