"""Interleaved modular multiplication (Algorithm 1 of the paper).

Blakely's classic shift-and-add multiplier with a reduction step folded into
every iteration.  It is the ancestor of every algorithm in this package: one
multiplier bit is consumed per iteration, so the iteration count equals the
operand bitwidth, and each iteration performs a doubling, up to two
comparisons/subtractions and one full-width addition (all with full carry
propagation — the costs R4CSA-LUT removes).
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithms.base import ModularMultiplier, register_multiplier

__all__ = ["InterleavedMultiplier"]


@register_multiplier
class InterleavedMultiplier(ModularMultiplier):
    """Algorithm 1: bit-serial interleaved modular multiplication."""

    name = "interleaved"
    description = (
        "Blakely interleaved shift-and-add with per-iteration reduction "
        "(Algorithm 1)."
    )
    direct_form = True

    #: Cycles charged per iteration by the analytic model: shift, compare,
    #: subtract, add, compare, subtract — each a full-width operation with
    #: carry propagation in a straightforward hardware mapping.
    CYCLES_PER_ITERATION = 6

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        bitwidth = max(a.bit_length(), 1)
        accumulator = 0
        for bit_index in range(bitwidth - 1, -1, -1):
            self.stats.iterations += 1

            accumulator <<= 1
            self.stats.shifts += 1

            self.stats.comparisons += 1
            if accumulator >= modulus:
                accumulator -= modulus
                self.stats.subtractions += 1

            if (a >> bit_index) & 1:
                accumulator += b
                self.stats.full_additions += 1

            self.stats.comparisons += 1
            if accumulator >= modulus:
                accumulator -= modulus
                self.stats.subtractions += 1
        return accumulator

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Analytic cycle count: one pass of the loop per multiplier bit."""
        return self.CYCLES_PER_ITERATION * bitwidth
