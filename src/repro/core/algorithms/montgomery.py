"""Montgomery modular multiplication.

Montgomery reduction is one of the two "reduce after multiplying" baselines
the paper argues against for PIM: it avoids trial division but requires the
operands to be moved into and out of Montgomery form (a real modular
operation each way) and manipulates ``2n``-bit intermediates.  BP-NTT — one
of the Table 3 baselines — computes its modular products this way, which is
why the transformation cost matters in the comparison.

Two interfaces are provided:

* :class:`MontgomeryMultiplier` — drop-in :class:`ModularMultiplier` that
  internally converts to and from Montgomery form for every call (counting
  the conversions), so it returns results in direct form like the others.
* :class:`MontgomeryContext` — the domain object (``R``, ``R^2 mod p``,
  ``p'``) plus ``REDC`` for code that wants to stay in Montgomery form
  across many operations (the way BP-NTT assumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.errors import ModulusError, OperandRangeError

__all__ = ["MontgomeryContext", "MontgomeryMultiplier"]


@dataclass(frozen=True)
class MontgomeryContext:
    """Precomputed constants for Montgomery arithmetic modulo an odd ``p``."""

    modulus: int
    bitwidth: int
    radix: int            # R = 2**bitwidth
    radix_squared: int    # R^2 mod p, used to enter Montgomery form
    modulus_inverse: int  # p' = -p^{-1} mod R

    @classmethod
    def create(cls, modulus: int, bitwidth: Optional[int] = None) -> "MontgomeryContext":
        """Build a context; the modulus must be odd (required by REDC)."""
        if modulus <= 2:
            raise ModulusError(f"modulus must be greater than 2, got {modulus}")
        if modulus % 2 == 0:
            raise ModulusError(
                f"Montgomery reduction requires an odd modulus, got {modulus}"
            )
        if bitwidth is None:
            bitwidth = modulus.bit_length()
        radix = 1 << bitwidth
        if radix <= modulus:
            raise ModulusError(
                f"Montgomery radix 2**{bitwidth} must exceed the modulus"
            )
        inverse = pow(modulus, -1, radix)
        return cls(
            modulus=modulus,
            bitwidth=bitwidth,
            radix=radix,
            radix_squared=(radix * radix) % modulus,
            modulus_inverse=(-inverse) % radix,
        )

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def reduce(self, value: int) -> int:
        """Montgomery reduction: return ``value * R^{-1} mod p``.

        ``value`` must be less than ``p * R`` (true for any product of two
        reduced Montgomery-form operands).
        """
        if not 0 <= value < self.modulus * self.radix:
            raise OperandRangeError(
                "REDC input must satisfy 0 <= value < p * R, got "
                f"{value} with p={self.modulus}, R={self.radix}"
            )
        mask = self.radix - 1
        factor = ((value & mask) * self.modulus_inverse) & mask
        reduced = (value + factor * self.modulus) >> self.bitwidth
        if reduced >= self.modulus:
            reduced -= self.modulus
        return reduced

    def to_montgomery(self, value: int) -> int:
        """Convert ``value`` into Montgomery form (``value * R mod p``)."""
        return self.reduce(value * self.radix_squared)

    def from_montgomery(self, value: int) -> int:
        """Convert a Montgomery-form value back to direct form."""
        return self.reduce(value)

    def multiply(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-form operands, result in Montgomery form."""
        return self.reduce(a_mont * b_mont)


@register_multiplier
class MontgomeryMultiplier(ModularMultiplier):
    """Montgomery multiplication presented through the direct-form interface."""

    name = "montgomery"
    description = (
        "Montgomery multiplication (REDC); operands converted into and out "
        "of Montgomery form on every call."
    )
    direct_form = False

    def __init__(self) -> None:
        super().__init__()
        self._context: Optional[MontgomeryContext] = None

    def context_for(self, modulus: int) -> MontgomeryContext:
        """Return (and cache) the Montgomery context for ``modulus``."""
        context = self._context
        if context is None or context.modulus != modulus:
            context = MontgomeryContext.create(modulus)
            self._context = context
            self.stats.precomputations += 1
        return context

    def prepare(self, modulus: int) -> None:
        """Derive the Montgomery constants for ``modulus`` eagerly."""
        self.context_for(modulus)

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        context = self.context_for(modulus)
        # Entering Montgomery form costs one REDC per operand ...
        a_mont = context.to_montgomery(a)
        b_mont = context.to_montgomery(b)
        self.stats.full_additions += 2
        # ... the product costs one ...
        product = context.multiply(a_mont, b_mont)
        self.stats.full_additions += 1
        # ... and leaving Montgomery form one more.
        result = context.from_montgomery(product)
        self.stats.full_additions += 1
        self.stats.iterations += 1
        return result

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Word-serial CIOS-style cycle model.

        One pass over the operand words per outer word, with a word size of
        32 bits; included so Montgomery appears in the Figure 1 style
        complexity sweeps with a sensible hardware-ish scaling law.
        """
        words = max((bitwidth + 31) // 32, 1)
        return 2 * words * words + 4 * words
