"""Barrett modular multiplication.

Barrett reduction replaces the division in ``a * b mod p`` by a
multiplication with a precomputed reciprocal estimate.  The paper cites it
(with Montgomery) as the standard "reduce after multiplying" approach whose
``2n``/``3n``-bit intermediates make it expensive to hold inside a PIM
array; X-Poly and one CryptoPIM variant in Table 3 use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.errors import ModulusError, OperandRangeError

__all__ = ["BarrettContext", "BarrettMultiplier"]


@dataclass(frozen=True)
class BarrettContext:
    """Precomputed reciprocal estimate ``mu = floor(4**k / p)``."""

    modulus: int
    shift: int  # k = bit length of p
    mu: int

    @classmethod
    def create(cls, modulus: int) -> "BarrettContext":
        if modulus <= 2:
            raise ModulusError(f"modulus must be greater than 2, got {modulus}")
        shift = modulus.bit_length()
        mu = (1 << (2 * shift)) // modulus
        return cls(modulus=modulus, shift=shift, mu=mu)

    def reduce(self, value: int) -> int:
        """Reduce ``value`` (< p**2) modulo ``p`` using the Barrett estimate."""
        if not 0 <= value < self.modulus * self.modulus:
            raise OperandRangeError(
                f"Barrett reduction input must be below p**2, got {value}"
            )
        quotient_estimate = (value * self.mu) >> (2 * self.shift)
        remainder = value - quotient_estimate * self.modulus
        # The estimate is off by at most two.
        while remainder >= self.modulus:
            remainder -= self.modulus
        return remainder


@register_multiplier
class BarrettMultiplier(ModularMultiplier):
    """Full product followed by Barrett reduction."""

    name = "barrett"
    description = "Full product followed by Barrett reduction."
    direct_form = True

    def __init__(self) -> None:
        super().__init__()
        self._context: Optional[BarrettContext] = None

    def context_for(self, modulus: int) -> BarrettContext:
        """Return (and cache) the Barrett context for ``modulus``."""
        context = self._context
        if context is None or context.modulus != modulus:
            context = BarrettContext.create(modulus)
            self._context = context
            self.stats.precomputations += 1
        return context

    def prepare(self, modulus: int) -> None:
        """Derive the Barrett reciprocal for ``modulus`` eagerly."""
        self.context_for(modulus)

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        context = self.context_for(modulus)
        product = a * b
        self.stats.full_additions += 1
        self.stats.iterations += 1
        result = context.reduce(product)
        self.stats.subtractions += 1
        return result

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Word-serial cycle model (three n-bit multiplications, 32-bit words)."""
        words = max((bitwidth + 31) // 32, 1)
        return 3 * words * words + 2 * words
