"""Modular-multiplication algorithm family.

Importing this package registers every algorithm with the multiplier
registry (:func:`repro.core.algorithms.base.available_multipliers`).
"""

from repro.core.algorithms.base import (
    ModularMultiplier,
    MultiplierStats,
    available_multipliers,
    create_multiplier,
    get_multiplier,
    register_multiplier,
)
from repro.core.algorithms.barrett import BarrettContext, BarrettMultiplier
from repro.core.algorithms.csa_interleaved import CsaInterleavedMultiplier
from repro.core.algorithms.interleaved import InterleavedMultiplier
from repro.core.algorithms.montgomery import MontgomeryContext, MontgomeryMultiplier
from repro.core.algorithms.r4csa_lut import (
    IterationSnapshot,
    R4CSALutContext,
    R4CSALutMultiplier,
)
from repro.core.algorithms.radix4 import Radix4InterleavedMultiplier
from repro.core.algorithms.radix8 import Radix8InterleavedMultiplier, build_radix8_lut
from repro.core.algorithms.schoolbook import SchoolbookMultiplier

__all__ = [
    "BarrettContext",
    "BarrettMultiplier",
    "CsaInterleavedMultiplier",
    "InterleavedMultiplier",
    "IterationSnapshot",
    "ModularMultiplier",
    "MontgomeryContext",
    "MontgomeryMultiplier",
    "MultiplierStats",
    "R4CSALutContext",
    "R4CSALutMultiplier",
    "Radix4InterleavedMultiplier",
    "Radix8InterleavedMultiplier",
    "SchoolbookMultiplier",
    "build_radix8_lut",
    "available_multipliers",
    "create_multiplier",
    "get_multiplier",
    "register_multiplier",
]
