"""Common interface for modular-multiplication algorithms.

Every algorithm in this package — the paper's R4CSA-LUT, the interleaved and
radix-4 baselines it builds on, and the Montgomery/Barrett alternatives it
argues against — implements :class:`ModularMultiplier`.  Downstream code
(the ECC field layer, the ZKP kernels, the benchmark harness) is written
against this interface so any algorithm, including the cycle-accurate
ModSRAM accelerator adapter, can be swapped in as the arithmetic backend.
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Type

from repro.errors import ConfigurationError, ModulusError, OperandRangeError

__all__ = [
    "MultiplierStats",
    "ModularMultiplier",
    "register_multiplier",
    "get_multiplier",
    "create_multiplier",
    "available_multipliers",
]


@dataclass
class MultiplierStats:
    """Operation counts accumulated by a multiplier instance.

    The counts model the quantities the paper reasons about: loop iterations,
    word-level additions/subtractions (each of which implies a full carry
    propagation in hardware), carry-save additions (which do not), shifts,
    comparisons and table look-ups.
    """

    multiplications: int = 0
    iterations: int = 0
    full_additions: int = 0
    subtractions: int = 0
    carry_save_additions: int = 0
    shifts: int = 0
    comparisons: int = 0
    lut_lookups: int = 0
    precomputations: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dictionary (stable key order)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "MultiplierStats":
        """Rebuild stats from :meth:`as_dict` output (unknown keys ignored)."""
        stats = cls()
        for name in cls.__dataclass_fields__:
            setattr(stats, name, int(data.get(name, 0)))
        return stats

    def merged_with(self, other: "MultiplierStats") -> "MultiplierStats":
        """Return a new stats object with element-wise summed counters."""
        merged = MultiplierStats()
        for name in self.__dataclass_fields__:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged


class ModularMultiplier(abc.ABC):
    """Abstract modular multiplier ``(a, b, p) -> a * b mod p``.

    Subclasses implement :meth:`_multiply`; the public :meth:`multiply`
    validates operands, keeps statistics and handles the trivial cases so
    that every algorithm is exercised under identical preconditions
    (``0 <= a, b < p``, as required by the paper's algorithms).
    """

    #: Short machine-readable identifier used by the registry.
    name: str = "abstract"
    #: Human-readable description used in reports.
    description: str = ""
    #: Whether results come out in direct (non-Montgomery) form.
    direct_form: bool = True

    def __init__(self) -> None:
        self.stats = MultiplierStats()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def multiply(self, a: int, b: int, modulus: int) -> int:
        """Return ``a * b mod modulus`` after validating the operands."""
        self._validate_operands(a, b, modulus)
        self.stats.multiplications += 1
        return self._multiply(a, b, modulus)

    def reset_stats(self) -> None:
        """Clear the accumulated operation counters."""
        self.stats.reset()

    def prepare(self, modulus: int) -> None:
        """Eagerly derive any per-modulus precomputation.

        The engine layer calls this once when a ``(backend, modulus)``
        context enters the cache so that Montgomery/Barrett constants,
        overflow LUTs and accelerator sizing are built before the first
        multiplication instead of lazily inside it.  Algorithms without
        per-modulus state inherit this no-op.

        Contract (relied on by the serving layers, regression-tested in
        ``tests/core/test_prepare_concurrency.py``):

        * **idempotent** — calling ``prepare`` again with the same modulus
          is a cheap no-op that reuses the existing precomputation;
        * **thread-safe** — concurrent ``prepare`` calls on one instance
          must build the per-modulus state exactly once and leave the
          instance consistent, so executors may warm shared multipliers
          from worker threads without external locking.
        """

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Analytic cycle count for one multiplication at ``bitwidth`` bits.

        Returns ``None`` when the algorithm has no meaningful hardware cycle
        model (e.g. the schoolbook reference).
        """
        return None

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _multiply(self, a: int, b: int, modulus: int) -> int:
        """Algorithm body; operands are already validated.

        Subclasses may additionally define an optional
        ``_multiply_batch(pairs, modulus) -> Sequence[int]`` hook with the
        same precondition; :meth:`repro.engine.Engine.multiply_batch`
        prefers it over the per-element loop when present (the
        ``compiled`` backend's flattened kernel path).
        """

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_operands(a: int, b: int, modulus: int) -> None:
        if modulus <= 2:
            raise ModulusError(f"modulus must be greater than 2, got {modulus}")
        if not 0 <= a < modulus:
            raise OperandRangeError(
                f"operand a must satisfy 0 <= a < p, got a={a}, p={modulus}"
            )
        if not 0 <= b < modulus:
            raise OperandRangeError(
                f"operand b must satisfy 0 <= b < p, got b={b}, p={modulus}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, Type[ModularMultiplier]] = {}


def register_multiplier(
    cls: Optional[Type[ModularMultiplier]] = None,
) -> Callable[[Type[ModularMultiplier]], Type[ModularMultiplier]] | Type[ModularMultiplier]:
    """Class decorator adding a multiplier to the global registry."""

    def _register(target: Type[ModularMultiplier]) -> Type[ModularMultiplier]:
        key = target.name
        if not key or key == "abstract":
            raise ConfigurationError(
                f"{target.__name__} must define a non-default 'name' to be registered"
            )
        if key in _REGISTRY and _REGISTRY[key] is not target:
            raise ConfigurationError(f"multiplier name {key!r} already registered")
        _REGISTRY[key] = target
        return target

    if cls is None:
        return _register
    return _register(cls)


def get_multiplier(name: str) -> Type[ModularMultiplier]:
    """Look up a registered multiplier class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown multiplier {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def create_multiplier(name: str, **kwargs: Any) -> ModularMultiplier:
    """Instantiate a registered multiplier by name.

    Unknown keyword options raise a :class:`ConfigurationError` naming the
    options the multiplier accepts, instead of surfacing as a bare
    ``TypeError`` from the constructor.
    """
    cls = get_multiplier(name)
    parameters = inspect.signature(cls.__init__).parameters
    accepts_anything = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )
    if not accepts_anything:
        accepted = sorted(
            parameter_name
            for parameter_name, parameter in parameters.items()
            if parameter_name != "self"
            and parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        )
        unknown = sorted(set(kwargs) - set(accepted))
        if unknown:
            raise ConfigurationError(
                f"unknown option(s) {unknown} for multiplier {name!r}; "
                f"accepted options: {accepted or '(none)'}"
            )
    return cls(**kwargs)


def available_multipliers() -> List[str]:
    """Sorted names of every registered multiplier."""
    return sorted(_REGISTRY)
