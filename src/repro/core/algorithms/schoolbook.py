"""Schoolbook reference multiplier.

This is the oracle every other algorithm is tested against: multiply with
Python's arbitrary-precision integers and reduce with ``%``.  It has no
hardware interpretation; it exists so that correctness of the hardware-
oriented algorithms never rests on comparing them only to each other.
"""

from __future__ import annotations

from repro.core.algorithms.base import ModularMultiplier, register_multiplier

__all__ = ["SchoolbookMultiplier"]


@register_multiplier
class SchoolbookMultiplier(ModularMultiplier):
    """Full multiplication followed by a single reduction (``a * b % p``)."""

    name = "schoolbook"
    description = "Full product followed by one reduction (software oracle)."
    direct_form = True

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        self.stats.full_additions += 1
        return (a * b) % modulus
