"""Radix-4 Booth-encoded interleaved modular multiplication (Algorithm 2).

Two multiplier bits are consumed per iteration via the radix-4 Booth encoder
(Table 1a), halving the iteration count of Algorithm 1.  The per-digit
addend is taken from the precomputed LUT of Table 1b, so the only remaining
full-width work per iteration is the quadrupling, its reduction, one
addition and one conditional subtraction — still all carry-propagating,
which is the weakness R4CSA-LUT then removes.

Note: line 8 of the paper's Algorithm 2 reads ``C <- C + E x p``; this is a
typo for ``E x B`` (Table 1b stores multiples of the multiplicand ``B``).
The implementation follows Table 1b.
"""

from __future__ import annotations

from typing import Optional

from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.core.booth import booth_digits_radix4
from repro.core.luts import build_radix4_lut

__all__ = ["Radix4InterleavedMultiplier"]


@register_multiplier
class Radix4InterleavedMultiplier(ModularMultiplier):
    """Algorithm 2: radix-4 Booth-encoded interleaved multiplication."""

    name = "radix4-interleaved"
    description = (
        "Radix-4 Booth-encoded interleaved multiplication with a "
        "precomputed digit LUT (Algorithm 2)."
    )
    direct_form = True

    #: Cycles per iteration in the analytic model: shift-by-two, LUT-based
    #: reduction of the quadrupled accumulator, digit-LUT addition and one
    #: conditional subtraction — each fully carry-propagating.
    CYCLES_PER_ITERATION = 5

    def __init__(self, full_range: bool = True) -> None:
        super().__init__()
        self.full_range = full_range

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        bitwidth = max(modulus.bit_length(), 2)
        lut = build_radix4_lut(b, modulus)
        self.stats.precomputations += 1

        digits = booth_digits_radix4(a, bitwidth, full_range=self.full_range)
        accumulator = 0
        for digit in digits:
            self.stats.iterations += 1

            accumulator <<= 2
            self.stats.shifts += 1

            # Reduction of the quadrupled accumulator.  4C < 4p, so at most
            # three subtractions; the paper folds this into a single LUT
            # access ("C <- LUT(C)"), which we count as one look-up.
            self.stats.lut_lookups += 1
            while accumulator >= modulus:
                accumulator -= modulus
                self.stats.subtractions += 1

            addend = lut[digit]
            self.stats.lut_lookups += 1
            if addend:
                accumulator += addend
                self.stats.full_additions += 1

            self.stats.comparisons += 1
            if accumulator >= modulus:
                accumulator -= modulus
                self.stats.subtractions += 1
        return accumulator

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Analytic cycle count: half the iterations of Algorithm 1."""
        iterations = (bitwidth + 1) // 2
        return self.CYCLES_PER_ITERATION * iterations
