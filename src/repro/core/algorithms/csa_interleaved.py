"""Radix-2 carry-save interleaved modular multiplication.

This is the algorithm of Mazonka et al. (ICCAD 2022) that the paper cites as
its second inspiration: the classic interleaved loop, but with the
accumulator held in carry-save form and the post-shift reduction replaced by
a small look-up on the bit that overflows the register.  It consumes one
multiplier bit per iteration (no Booth encoding), so it needs twice the
iterations of R4CSA-LUT; having it in the library lets the benchmarks
separate the contribution of the radix-4 encoding from that of the
carry-save/LUT transformation.
"""

from __future__ import annotations

from typing import Optional

from repro.bitvec import CarrySaveValue
from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.core.luts import build_overflow_lut

__all__ = ["CsaInterleavedMultiplier"]


@register_multiplier
class CsaInterleavedMultiplier(ModularMultiplier):
    """Radix-2 interleaved multiplication with a carry-save accumulator."""

    name = "csa-interleaved"
    description = (
        "Interleaved multiplication with carry-save accumulation and an "
        "overflow LUT (Mazonka-style, radix-2)."
    )
    direct_form = True

    #: Array accesses per iteration in the hardware mapping: two logic-SA
    #: accesses plus four write-backs, same structure as R4CSA-LUT but for a
    #: single multiplier bit.
    CYCLES_PER_ITERATION = 6

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        bitwidth = max(modulus.bit_length(), 2)
        register_width = bitwidth + 1
        overflow_lut = build_overflow_lut(modulus, register_width, entry_count=16)
        self.stats.precomputations += 1

        accumulator = CarrySaveValue.zero(register_width)
        pending = 0
        for bit_index in range(bitwidth - 1, -1, -1):
            self.stats.iterations += 1

            # Doubling: shift both words left by one.
            accumulator, sum_overflow, carry_overflow = accumulator.shifted_left(1)
            self.stats.shifts += 2

            # Add the multiplicand when the multiplier bit is set.
            addend = b if (a >> bit_index) & 1 else 0
            accumulator, escaped = accumulator.add(addend)
            self.stats.carry_save_additions += 1

            # Fold overflow bits back in via the LUT.  The pending bit
            # escaped after the previous iteration's second CSA and has
            # aged by one shift position, hence weight 2.
            overflow_index = (
                sum_overflow + carry_overflow + escaped + 2 * pending
            )
            self.stats.lut_lookups += 1
            accumulator, pending = accumulator.add(overflow_lut[overflow_index])
            self.stats.carry_save_additions += 1

        total = accumulator.resolve() + (pending << register_width)
        self.stats.full_additions += 1
        while total >= modulus:
            total -= modulus
            self.stats.subtractions += 1
        return total

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Analytic cycle count: one full iteration per multiplier bit."""
        return self.CYCLES_PER_ITERATION * bitwidth - 1
