"""The cluster wire protocol: length-prefixed JSON frames.

Every message between a :class:`~repro.cluster.router.Router`, its
:class:`~repro.cluster.worker.WorkerNode` s and its
:class:`~repro.cluster.client.ClusterClient` s is one *frame*: a 4-byte
big-endian payload length followed by that many bytes of UTF-8 JSON
carrying a single object with a ``"type"`` key.  JSON (not pickle) is
deliberate: a router port is a network surface, and JSON deserialization
cannot execute code.  Python's JSON integers are arbitrary-precision, so
operands, products and moduli travel exactly — the wire never rounds.

Robustness is part of the contract (and of the test suite): a malformed
frame — oversized, not valid JSON, not an object, missing ``"type"`` —
raises :class:`~repro.errors.ProtocolError` *after the stream has been
resynchronized* (the offending payload is consumed), so the receiving
side can answer with a structured ``{"type": "error"}`` response and
keep serving the connection instead of dropping it.

The message vocabulary (all types in :data:`MESSAGE_TYPES`):

========== ============ ====================================================
type       direction    meaning
========== ============ ====================================================
hello      client→router introduce a client connection
join       worker→router register a worker node
welcome    router→both  accept; carries the fleet's ``EngineSpec`` for
                        workers so every node builds an identical engine
heartbeat  worker→router liveness + the node's metrics snapshot
job        router→worker one placed job (pairs or graph) with SLO context
result     both         a completed job's products and timings
error      both         a structured failure (name + message + retryable)
submit     client→router one request (pairs or an operand-carrying graph)
stats      client→router ask for the cluster metrics rollup
leave      worker→router graceful drain request
bye        router→worker drain complete; the worker may exit
shutdown   router→worker the router is closing
========== ============ ====================================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional

from repro.errors import ProtocolError

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "MESSAGE_TYPES",
    "Connection",
    "decode_frame",
    "encode_frame",
]

#: Frames above this are rejected (consumed and answered with an error):
#: large enough for ~100k-pair batches of 256-bit operands, small enough
#: that a hostile length prefix cannot balloon router memory.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Length prefix size (unsigned big-endian).
_PREFIX_BYTES = 4

#: Every message type either side may legitimately send.
MESSAGE_TYPES = frozenset(
    {
        "hello",
        "join",
        "welcome",
        "heartbeat",
        "job",
        "result",
        "error",
        "submit",
        "stats",
        "leave",
        "bye",
        "shutdown",
    }
)


def encode_frame(message: Dict[str, object]) -> bytes:
    """One message as its on-the-wire bytes (prefix + JSON payload)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > 0xFFFFFFFF:  # pragma: no cover - 4 GiB frame
        raise ProtocolError(f"frame of {len(payload)} bytes cannot be prefixed")
    return len(payload).to_bytes(_PREFIX_BYTES, "big") + payload


def decode_frame(payload: bytes) -> Dict[str, object]:
    """Parse one frame payload; :class:`ProtocolError` when malformed.

    Three failure modes, each with its own message so the structured
    error response tells the sender what to fix: not JSON at all, JSON
    but not an object, an object without a known ``"type"``.
    """
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    kind = message.get("type")
    if kind not in MESSAGE_TYPES:
        raise ProtocolError(
            f"unknown message type {kind!r}; expected one of "
            f"{sorted(MESSAGE_TYPES)}"
        )
    return message


class Connection:
    """One framed, message-oriented connection over asyncio streams.

    Wraps a ``(StreamReader, StreamWriter)`` pair with frame encoding, a
    send lock (any number of tasks may :meth:`send` concurrently) and
    the resynchronizing receive path: when a frame is malformed,
    :meth:`receive` consumes exactly that frame's bytes before raising,
    so the caller can answer with an error frame and call
    :meth:`receive` again.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.max_frame_bytes = max_frame_bytes
        self._send_lock = asyncio.Lock()

    @property
    def peer(self) -> str:
        """The remote address, for log lines and metrics labels."""
        info = self.writer.get_extra_info("peername")
        if isinstance(info, (tuple, list)) and len(info) >= 2:
            return f"{info[0]}:{info[1]}"
        return str(info)

    async def send(self, message: Dict[str, object]) -> None:
        """Write one frame (serialized under the connection's lock)."""
        frame = encode_frame(message)
        async with self._send_lock:
            self.writer.write(frame)
            await self.writer.drain()

    async def receive(self) -> Optional[Dict[str, object]]:
        """Read one message; ``None`` on clean EOF.

        An oversized frame is *skipped* — its payload is read and
        discarded in bounded chunks so the stream stays aligned on the
        next frame boundary — then reported as :class:`ProtocolError`.
        A truncated frame (EOF mid-payload) is a closed connection, not
        a protocol error: the peer died, there is nobody to answer.
        """
        try:
            prefix = await self.reader.readexactly(_PREFIX_BYTES)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        length = int.from_bytes(prefix, "big")
        if length > self.max_frame_bytes:
            await self._discard(length)
            raise ProtocolError(
                f"frame of {length} bytes exceeds the "
                f"{self.max_frame_bytes}-byte limit"
            )
        try:
            payload = await self.reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        return decode_frame(payload)

    async def _discard(self, length: int) -> None:
        """Consume an oversized payload without buffering it whole."""
        remaining = length
        while remaining > 0:
            try:
                chunk = await self.reader.read(min(remaining, 1 << 16))
            except ConnectionError:  # pragma: no cover - peer died mid-skip
                return
            if not chunk:
                return
            remaining -= len(chunk)

    async def close(self) -> None:
        """Close the underlying transport (idempotent, best-effort)."""
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - already dead
            pass

    def __repr__(self) -> str:
        return f"Connection(peer={self.peer!r})"
