"""The cluster wire protocol: framed messages over two negotiated codecs.

Every message between a :class:`~repro.cluster.router.Router`, its
:class:`~repro.cluster.worker.WorkerNode` s and its
:class:`~repro.cluster.client.ClusterClient` s is one *frame*.  Two
codecs share one message vocabulary and one robustness contract:

* **wire v1 (JSON)** — a 4-byte big-endian payload length followed by
  that many bytes of UTF-8 JSON carrying a single object with a
  ``"type"`` key.  JSON (not pickle) is deliberate: a router port is a
  network surface, and JSON deserialization cannot execute code.
  Python's JSON integers are arbitrary-precision, so operands, products
  and moduli travel exactly — the wire never rounds.
* **wire v2 (binary)** — a struct-packed header (magic, version, type
  code, flags, payload length) followed by a small JSON *meta* section
  and zero or more *blobs* of fixed-width little-endian integers
  (``int.to_bytes``, one width field per batch).  Operand pairs and
  product lists travel as blobs instead of JSON decimal ints, so a
  4096-pair 254-bit batch never round-trips through a Python string;
  decoding slices one :class:`memoryview`, encoding hands
  ``writer.writelines`` a list of buffers.  v2 carries exactly the same
  message dicts as v1 — :class:`BinaryCodec` is a lossless transport,
  not a different protocol.  Decoded blobs surface as lazy
  :class:`PackedInts` sequences: the bytes stay packed until somebody
  *computes* on them, so the router forwards a batch hop-to-hop without
  ever materializing its operands as Python ints (re-encoding a
  :class:`PackedInts` is a zero-copy buffer append), and the 8k big-int
  conversions of a 4k-pair batch happen exactly once — on the worker
  that multiplies them.

Connections *start* in v1: the opening ``hello``/``join`` advertises
``"wire": 2`` and the router's ``welcome`` answers with the version it
chose (the minimum of what both sides support), after which both ends
:meth:`Connection.upgrade` in lockstep.  A peer that advertises nothing
gets v1 — the JSON codec remains fully supported, and every frame it
ever spoke still parses byte-for-byte.

Robustness is part of the contract (and of the test suite) for *both*
codecs: a malformed frame — oversized, not valid JSON, bad magic,
unknown version, an internally truncated binary payload — raises
:class:`~repro.errors.ProtocolError` *after the stream has been
resynchronized* (the offending payload is consumed), so the receiving
side can answer with a structured ``{"type": "error"}`` response and
keep serving the connection instead of dropping it.

The message vocabulary (all types in :data:`MESSAGE_TYPES`):

========== ============ ====================================================
type       direction    meaning
========== ============ ====================================================
hello      client→router introduce a client connection (``wire`` advertised)
join       worker→router register a worker node (``wire`` advertised)
welcome    router→both  accept; carries the fleet's ``EngineSpec`` for
                        workers and the negotiated ``wire`` version
heartbeat  worker→router liveness + the node's metrics snapshot
job        router→worker one placed job (pairs or graph) with SLO context
jobs       router→worker a coalesced frame of several ``job`` messages
result     both         a completed job's products and timings
results    both         a coalesced frame of several ``result`` messages
error      both         a structured failure (name + message + retryable)
submit     client→router one request (pairs or an operand-carrying graph)
stats      client→router ask for the cluster metrics rollup
leave      worker→router graceful drain request
bye        router→worker drain complete; the worker may exit
shutdown   router→worker the router is closing
========== ============ ====================================================

Coalesced ``jobs``/``results`` frames are how the router's pipelined
dispatch amortizes per-frame syscall and framing overhead: any number of
messages bound for the same peer inside one flush window travel as one
frame (see :class:`CoalescingSender`).  They are only emitted on v2
connections; v1 peers receive the classic one-message frames (batched
into a single ``writelines`` call, which changes syscall counts but not
the byte stream).
"""

from __future__ import annotations

import asyncio
import json
import struct
from itertools import chain, repeat
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ProtocolError

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "MESSAGE_TYPES",
    "WIRE_VERSIONS",
    "BinaryCodec",
    "CoalescingSender",
    "Codec",
    "Connection",
    "JsonCodec",
    "PackedInts",
    "decode_frame",
    "decode_frame_v2",
    "encode_frame",
    "encode_frame_v2",
    "negotiate_wire",
]

#: Frames above this are rejected (consumed and answered with an error):
#: large enough for ~100k-pair batches of 256-bit operands, small enough
#: that a hostile length prefix cannot balloon router memory.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Length prefix size of a v1 frame (unsigned big-endian).
_PREFIX_BYTES = 4

#: Wire protocol versions this build speaks, lowest first.
WIRE_VERSIONS = (1, 2)

#: Every message type either side may legitimately send.
MESSAGE_TYPES = frozenset(
    {
        "hello",
        "join",
        "welcome",
        "heartbeat",
        "job",
        "jobs",
        "result",
        "results",
        "error",
        "submit",
        "stats",
        "leave",
        "bye",
        "shutdown",
    }
)

#: Stable v2 type codes (one byte on the wire).  Append-only: codes are
#: part of the wire contract, never renumber.
_TYPE_CODES: Dict[str, int] = {
    "hello": 1,
    "join": 2,
    "welcome": 3,
    "heartbeat": 4,
    "job": 5,
    "result": 6,
    "error": 7,
    "submit": 8,
    "stats": 9,
    "leave": 10,
    "bye": 11,
    "shutdown": 12,
    "jobs": 13,
    "results": 14,
}
_TYPE_NAMES: Dict[int, str] = {code: name for name, code in _TYPE_CODES.items()}

#: v2 frame header: magic, version, type code, flags, payload length.
_V2_MAGIC = b"RW"
_V2_HEADER = struct.Struct("<2sBBHI")
_V2_HEADER_BYTES = _V2_HEADER.size
#: One blob header inside a v2 payload: kind, width (bytes/int), count.
_V2_BLOB = struct.Struct("<BHI")
#: Blob kinds: a flat list of ints, or an interleaved [a, b] pair list.
_BLOB_INTS = 0
_BLOB_PAIRS = 1
#: Dict keys whose list values are packed as blobs (pairs of ints / flat
#: ints).  Explicit keys keep the transform deterministic: bulk operand
#: and product arrays move to blobs, everything else stays JSON meta.
_PAIR_KEYS = frozenset({"pairs", "payload"})
_INT_KEYS = frozenset({"values"})
#: Meta-JSON placeholder key pointing into the blob table.
_BIN_KEY = "$bin"


def negotiate_wire(advertised: object, supported_max: int = 2) -> int:
    """The wire version both peers run: min(peer, ours), floored at v1.

    ``advertised`` is whatever the peer's ``hello``/``join`` carried
    under ``"wire"`` — a missing, malformed or unknown value degrades to
    v1, never to an error: an old peer must keep working unmodified.
    """
    try:
        peer = int(advertised)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return 1
    if peer < 1:
        return 1
    return min(peer, supported_max, max(WIRE_VERSIONS))


# ---------------------------------------------------------------------- #
# v1: length-prefixed JSON
# ---------------------------------------------------------------------- #
def _jsonify_packed(value: object) -> object:
    """``json.dumps`` fallback: materialize a lazy :class:`PackedInts`.

    Needed on mixed-wire hops — a payload decoded from a v2 frame may be
    re-encoded toward a v1 peer, and only then does it pay the
    materialization cost.
    """
    if isinstance(value, PackedInts):
        return value.tolist()
    raise TypeError(
        f"object of type {type(value).__name__} is not JSON serializable"
    )


def encode_frame(message: Dict[str, object]) -> bytes:
    """One message as its v1 on-the-wire bytes (prefix + JSON payload)."""
    payload = json.dumps(
        message, separators=(",", ":"), default=_jsonify_packed
    ).encode("utf-8")
    if len(payload) > 0xFFFFFFFF:  # pragma: no cover - 4 GiB frame
        raise ProtocolError(f"frame of {len(payload)} bytes cannot be prefixed")
    return len(payload).to_bytes(_PREFIX_BYTES, "big") + payload


def decode_frame(payload: bytes) -> Dict[str, object]:
    """Parse one v1 frame payload; :class:`ProtocolError` when malformed.

    Three failure modes, each with its own message so the structured
    error response tells the sender what to fix: not JSON at all, JSON
    but not an object, an object without a known ``"type"``.
    """
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    kind = message.get("type")
    if kind not in MESSAGE_TYPES:
        raise ProtocolError(
            f"unknown message type {kind!r}; expected one of "
            f"{sorted(MESSAGE_TYPES)}"
        )
    return message


# ---------------------------------------------------------------------- #
# v2: struct header + JSON meta + fixed-width integer blobs
# ---------------------------------------------------------------------- #
class PackedInts(Sequence):
    """A v2 operand blob decoded *lazily*: bytes until somebody computes.

    Decoding a binary frame leaves bulk integer arrays in this form —
    width, count and the packed little-endian bytes — instead of eagerly
    creating thousands of Python ints.  The sequence protocol (``len``,
    iteration, indexing, ``==`` against plain lists) materializes the
    ints on first use and caches them, so consumers that *compute* pay
    the conversion exactly once, while hops that merely *forward* (the
    router re-encoding a job for its placed worker) never pay it at all:
    re-encoding a :class:`PackedInts` appends its original wire bytes
    back to the frame, zero-copy.

    ``is_pairs`` distinguishes the two blob shapes: a flat ``[v, ...]``
    int list or an interleaved ``[[a, b], ...]`` pair list (what
    materialization yields, exactly as JSON would have decoded it).
    """

    __slots__ = ("width", "kind", "data", "_count", "_items")

    def __init__(self, width: int, kind: int, data: bytes) -> None:
        self.width = width
        self.kind = kind
        self.data = data
        self._count = len(data) // width  # ints, not pairs
        self._items: Optional[list] = None

    @property
    def is_pairs(self) -> bool:
        """True when this blob materializes as ``[[a, b], ...]`` pairs."""
        return self.kind == _BLOB_PAIRS

    def _flat(self) -> list:
        """Every int in blob order, one C-speed pass (not cached)."""
        count = self._count
        if not count:
            return []
        chunks = struct.unpack(("%ds" % self.width) * count, self.data)
        return list(map(int.from_bytes, chunks, repeat("little")))

    def tolist(self) -> list:
        """Materialize (and cache) the Python-int view of the blob.

        Pairs come back as ``[[a, b], ...]`` — exactly what JSON would
        have decoded — so the two codecs are observably identical.
        """
        if self._items is None:
            flat = self._flat()
            if self.kind == _BLOB_PAIRS:
                it = iter(flat)
                self._items = list(map(list, zip(it, it)))
            else:
                self._items = flat
        return self._items

    def topairs(self) -> list:
        """Materialize a pair blob as ``[(a, b), ...]`` tuples.

        The shape :meth:`~repro.service.server.Server.multiply_batch`
        consumes — the worker's hot path uses this to skip the
        list-of-lists detour :meth:`tolist` keeps for JSON parity.
        """
        if self.kind != _BLOB_PAIRS:
            raise ValueError("topairs() on a flat int blob")
        it = iter(self._flat())
        return list(zip(it, it))

    def to_wire(self) -> bytes:
        """The blob's exact wire bytes (header + data), for re-encoding."""
        return _V2_BLOB.pack(self.kind, self.width, self._count) + self.data

    def __len__(self) -> int:
        return self._count // 2 if self.kind == _BLOB_PAIRS else self._count

    def __getitem__(self, index):
        return self.tolist()[index]

    def __iter__(self):
        return iter(self.tolist())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedInts):
            other = other.tolist()
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - mutable cache, list-like

    def __repr__(self) -> str:
        shape = "pairs" if self.is_pairs else "ints"
        return f"PackedInts({len(self)} {shape}, width={self.width})"


def _pack_ints(
    ints, count: int, kind: int, width: Optional[int] = None
) -> bytes:
    """One blob: header plus ``count`` ints at the batch's fixed width.

    ``width`` is the caller's hint (derived from the enclosing message's
    modulus — every residue fits by construction); without one the batch
    pays an extra pass to find its widest element.  An int that does not
    fit the hinted width raises ``OverflowError``, which the callers
    turn into the JSON fallback — oversized operands still arrive
    losslessly and get rejected by worker admission, not by the codec.
    """
    if width is None:
        ints = list(ints)
        count = len(ints)
        width = max(1, (max(ints).bit_length() + 7) // 8)
    return _V2_BLOB.pack(kind, width, count) + b"".join(
        map(int.to_bytes, ints, repeat(width), repeat("little"))
    )


def _try_pack_pairs(value: object, width: Optional[int] = None) -> Optional[bytes]:
    """Pack a ``[[a, b], ...]`` pair list, or ``None`` if it is not one."""
    if not isinstance(value, (list, tuple)) or not value:
        return None
    first = value[0]
    if not isinstance(first, (list, tuple)) or len(first) != 2:
        return None
    try:
        if set(map(len, value)) != {2}:
            return None  # a ragged row slipped past the first-row probe
        return _pack_ints(
            chain.from_iterable(value), 2 * len(value), _BLOB_PAIRS, width
        )
    except (TypeError, ValueError, AttributeError, OverflowError, struct.error):
        return None  # ragged rows / non-ints / negatives: leave as JSON


def _try_pack_values(value: object, width: Optional[int] = None) -> Optional[bytes]:
    """Pack a flat int list, or ``None`` if it is not one."""
    if not isinstance(value, (list, tuple)) or not value:
        return None
    try:
        return _pack_ints(value, len(value), _BLOB_INTS, width)
    except (TypeError, ValueError, AttributeError, OverflowError, struct.error):
        return None


def _width_hint(obj: Dict[str, object]) -> Optional[int]:
    """The packing width this dict's ``modulus`` implies, if it has one.

    Operands and products are residues of the message's modulus, so its
    byte width bounds theirs — knowing it up front saves the max-scan
    over every int in the batch.
    """
    modulus = obj.get("modulus")
    if isinstance(modulus, int) and not isinstance(modulus, bool) and modulus >= 2:
        return (modulus.bit_length() + 7) // 8
    return None


def _extract_blobs(
    obj: object, blobs: List[bytes], width: Optional[int] = None
) -> object:
    """Copy ``obj`` with bulk int arrays moved into the blob table.

    Recurses through dicts and lists so coalesced ``jobs``/``results``
    frames extract every nested batch, each dict refreshing the width
    hint from its own ``modulus``; anything that does not match a blob
    shape rides in the JSON meta untouched (lossless either way).
    """
    if isinstance(obj, dict):
        width = _width_hint(obj) or width
        out: Dict[str, object] = {}
        for key, value in obj.items():
            if isinstance(value, PackedInts):
                # A forwarded blob (decoded on this hop, never computed
                # on): its original wire bytes ride again, zero-copy.
                out[key] = {_BIN_KEY: len(blobs)}
                blobs.append(value.to_wire())
                continue
            packed = None
            if key in _PAIR_KEYS:
                packed = _try_pack_pairs(value, width)
            elif key in _INT_KEYS:
                packed = _try_pack_values(value, width)
            if packed is not None:
                out[key] = {_BIN_KEY: len(blobs)}
                blobs.append(packed)
            elif isinstance(value, (dict, list)):
                out[key] = _extract_blobs(value, blobs, width)
            else:
                out[key] = value
        return out
    if isinstance(obj, list):
        out_list: List[object] = []
        for item in obj:
            if isinstance(item, PackedInts):
                out_list.append({_BIN_KEY: len(blobs)})
                blobs.append(item.to_wire())
            elif isinstance(item, (dict, list)):
                out_list.append(_extract_blobs(item, blobs, width))
            else:
                out_list.append(item)
        return out_list
    return obj


def _decode_blob(view: memoryview, offset: int) -> tuple:
    """One blob at ``offset``: ``(lazy PackedInts, next offset)``.

    Shape validation happens here, eagerly — truncation, an illegal
    width, an odd pair count or an unknown kind must raise on *decode*
    (the resynchronization contract), not later on some consumer's first
    materialization.
    """
    if offset + _V2_BLOB.size > len(view):
        raise ProtocolError("binary frame truncated inside a blob header")
    kind, width, count = _V2_BLOB.unpack_from(view, offset)
    offset += _V2_BLOB.size
    if width < 1:
        raise ProtocolError(f"binary blob has illegal width {width}")
    total = width * count
    if offset + total > len(view):
        raise ProtocolError(
            f"binary frame truncated inside a blob: {total} bytes declared, "
            f"{len(view) - offset} present"
        )
    if kind == _BLOB_PAIRS:
        if count % 2:
            raise ProtocolError("pair blob carries an odd int count")
    elif kind != _BLOB_INTS:
        raise ProtocolError(f"unknown binary blob kind {kind}")
    decoded = PackedInts(width, kind, bytes(view[offset : offset + total]))
    return decoded, offset + total


def _restore_blobs(obj: object, blobs: List[object]) -> object:
    """The inverse of :func:`_extract_blobs`: placeholders become lists."""
    if isinstance(obj, dict):
        if len(obj) == 1 and _BIN_KEY in obj:
            index = obj[_BIN_KEY]
            if not isinstance(index, int) or not 0 <= index < len(blobs):
                raise ProtocolError(
                    f"binary frame references blob {index!r} of {len(blobs)}"
                )
            return blobs[index]
        return {key: _restore_blobs(value, blobs) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_restore_blobs(item, blobs) for item in obj]
    return obj


def encode_frame_v2(message: Dict[str, object]) -> List[bytes]:
    """One message as its v2 buffers (header first), ready to writelines.

    The list form exists so :meth:`Connection.send` can hand the kernel
    every buffer in one ``writelines`` call without concatenating —
    ``b"".join(...)`` of the result is the exact frame byte string.
    """
    kind = message.get("type")
    code = _TYPE_CODES.get(kind)  # type: ignore[arg-type]
    if code is None:
        raise ProtocolError(
            f"unknown message type {kind!r}; expected one of "
            f"{sorted(MESSAGE_TYPES)}"
        )
    blobs: List[bytes] = []
    meta_obj = _extract_blobs(message, blobs)
    meta = json.dumps(meta_obj, separators=(",", ":")).encode("utf-8")
    length = 4 + len(meta) + sum(len(blob) for blob in blobs)
    if length > 0xFFFFFFFF:  # pragma: no cover - 4 GiB frame
        raise ProtocolError(f"frame of {length} bytes cannot be prefixed")
    header = _V2_HEADER.pack(_V2_MAGIC, 2, code, 0, length)
    return [header, len(meta).to_bytes(4, "little"), meta] + blobs


def decode_frame_v2(payload: bytes, code: Optional[int] = None) -> Dict[str, object]:
    """Parse one v2 frame *payload* (header already consumed and checked).

    ``code`` is the header's type code when the caller read one; the
    meta's ``"type"`` must agree, so a corrupted header cannot smuggle a
    frame past type-based dispatch.  Decoding slices one ``memoryview``
    over the payload — blob integers never transit a Python string.
    """
    view = memoryview(payload)
    if len(view) < 4:
        raise ProtocolError("binary frame too short for its meta length")
    meta_len = int.from_bytes(view[:4], "little")
    if 4 + meta_len > len(view):
        raise ProtocolError(
            f"binary frame truncated: meta of {meta_len} bytes declared, "
            f"{len(view) - 4} present"
        )
    try:
        meta = json.loads(bytes(view[4 : 4 + meta_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"binary frame meta is not valid JSON: {error}") from error
    if not isinstance(meta, dict):
        raise ProtocolError(
            f"binary frame meta must be a JSON object, got {type(meta).__name__}"
        )
    kind = meta.get("type")
    if kind not in MESSAGE_TYPES:
        raise ProtocolError(
            f"unknown message type {kind!r}; expected one of "
            f"{sorted(MESSAGE_TYPES)}"
        )
    if code is not None and _TYPE_CODES[kind] != code:
        raise ProtocolError(
            f"binary frame header says type {code}, meta says {kind!r}"
        )
    blobs: List[object] = []
    offset = 4 + meta_len
    while offset < len(view):
        decoded, offset = _decode_blob(view, offset)
        blobs.append(decoded)
    return _restore_blobs(meta, blobs)  # type: ignore[return-value]


async def _discard(reader: asyncio.StreamReader, length: int) -> None:
    """Consume an oversized payload without buffering it whole."""
    remaining = length
    while remaining > 0:
        try:
            chunk = await reader.read(min(remaining, 1 << 16))
        except ConnectionError:  # pragma: no cover - peer died mid-skip
            return
        if not chunk:
            return
        remaining -= len(chunk)


# ---------------------------------------------------------------------- #
# the codec seam
# ---------------------------------------------------------------------- #
class Codec:
    """One wire codec: frame encoding plus the resynchronizing read.

    Both implementations share the robustness contract: a malformed
    frame is consumed (the stream stays aligned on the next frame
    boundary) before :class:`ProtocolError` is raised, and a clean or
    mid-frame EOF returns ``None`` — the peer is gone, there is nobody
    to answer.
    """

    #: Wire version this codec implements.
    version: int = 0

    def encode(self, message: Dict[str, object]) -> List[bytes]:
        """One message as a list of buffers for ``writer.writelines``."""
        raise NotImplementedError

    async def receive(
        self, reader: asyncio.StreamReader, max_frame_bytes: int
    ) -> Optional[Dict[str, object]]:
        """Read one message; ``None`` on EOF; resync then raise on junk."""
        raise NotImplementedError


class JsonCodec(Codec):
    """Wire v1: length-prefixed JSON frames (the negotiation fallback)."""

    version = 1

    def encode(self, message: Dict[str, object]) -> List[bytes]:
        """One v1 frame as a single buffer."""
        return [encode_frame(message)]

    async def receive(
        self, reader: asyncio.StreamReader, max_frame_bytes: int
    ) -> Optional[Dict[str, object]]:
        """Read one v1 message (see the class and module contract)."""
        try:
            prefix = await reader.readexactly(_PREFIX_BYTES)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        length = int.from_bytes(prefix, "big")
        if length > max_frame_bytes:
            await _discard(reader, length)
            raise ProtocolError(
                f"frame of {length} bytes exceeds the "
                f"{max_frame_bytes}-byte limit"
            )
        try:
            payload = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        return decode_frame(payload)


class BinaryCodec(Codec):
    """Wire v2: struct header + JSON meta + fixed-width integer blobs.

    The resynchronization contract, leg by leg (each is a regression
    test in ``tests/cluster/test_protocol_v2.py``):

    * **bad magic** — the stream is not at one of our frames; exactly
      the header's bytes are consumed, then :class:`ProtocolError`.  A
      peer writing aligned garbage of header size keeps the connection
      serving; true mid-stream corruption is unrecoverable framing loss
      either way (as it is for a corrupted v1 length prefix).
    * **unknown version** — magic is ours, so the length field is
      trusted: the whole payload is consumed, then the error.
    * **oversized length** — the payload is discarded in bounded chunks
      (never buffered whole), then the error.
    * **internally truncated payload** (meta or blob runs past the
      declared length) — the payload was fully read; the error.
    * **EOF mid-frame** — a closed connection, not a protocol error:
      ``None``.
    """

    version = 2

    def encode(self, message: Dict[str, object]) -> List[bytes]:
        """One v2 frame as its buffer list (header, meta, blobs)."""
        return encode_frame_v2(message)

    async def receive(
        self, reader: asyncio.StreamReader, max_frame_bytes: int
    ) -> Optional[Dict[str, object]]:
        """Read one v2 message (see the class contract for resync)."""
        try:
            header = await reader.readexactly(_V2_HEADER_BYTES)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        magic, version, code, _flags, length = _V2_HEADER.unpack(header)
        if magic != _V2_MAGIC:
            raise ProtocolError(
                f"bad frame magic {magic!r} (expected {_V2_MAGIC!r})"
            )
        if version != self.version:
            await _discard(reader, length)
            raise ProtocolError(
                f"unknown wire version {version} (this codec speaks "
                f"{self.version})"
            )
        if length > max_frame_bytes:
            await _discard(reader, length)
            raise ProtocolError(
                f"frame of {length} bytes exceeds the "
                f"{max_frame_bytes}-byte limit"
            )
        try:
            payload = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
        if code not in _TYPE_NAMES:
            raise ProtocolError(f"unknown binary message type code {code}")
        return decode_frame_v2(payload, code)


class Connection:
    """One framed, message-oriented connection over asyncio streams.

    Wraps a ``(StreamReader, StreamWriter)`` pair with a negotiable
    :class:`Codec` (v1 JSON until :meth:`upgrade`), a send lock (any
    number of tasks may :meth:`send` concurrently) and the
    resynchronizing receive path: when a frame is malformed,
    :meth:`receive` consumes exactly that frame's bytes before raising,
    so the caller can answer with an error frame and call
    :meth:`receive` again.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        codec: Optional[Codec] = None,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.max_frame_bytes = max_frame_bytes
        self.codec: Codec = codec or JsonCodec()
        self._send_lock = asyncio.Lock()

    @property
    def wire(self) -> int:
        """The wire version currently framing this connection."""
        return self.codec.version

    def upgrade(self, wire: int) -> None:
        """Switch codecs after negotiation (v1 -> v2 is the only move).

        Both ends call this at the same stream position — the router
        right after writing ``welcome``, the peer right after reading
        it — so every byte before the switch is v1 and every byte after
        is v2.  Upgrading to the current version is a no-op.
        """
        if wire == self.codec.version:
            return
        if wire not in WIRE_VERSIONS:
            raise ProtocolError(f"cannot upgrade to unknown wire version {wire}")
        self.codec = BinaryCodec() if wire == 2 else JsonCodec()

    @property
    def peer(self) -> str:
        """The remote address, for log lines and metrics labels."""
        info = self.writer.get_extra_info("peername")
        if isinstance(info, (tuple, list)) and len(info) >= 2:
            return f"{info[0]}:{info[1]}"
        return str(info)

    async def send(self, message: Dict[str, object]) -> None:
        """Write one frame (serialized under the connection's lock)."""
        buffers = self.codec.encode(message)
        async with self._send_lock:
            self.writer.writelines(buffers)
            await self.writer.drain()

    async def send_encoded(self, buffers: List[bytes]) -> None:
        """Write pre-encoded frame buffers in one locked writelines call.

        The :class:`CoalescingSender` encodes a whole flush window's
        frames first, then lands them with a single syscall here.
        """
        async with self._send_lock:
            self.writer.writelines(buffers)
            await self.writer.drain()

    async def receive(self) -> Optional[Dict[str, object]]:
        """Read one message via the active codec; ``None`` on EOF.

        Malformed frames are *skipped* — their bytes are consumed so the
        stream stays aligned on the next frame boundary — then reported
        as :class:`ProtocolError`.  A truncated frame (EOF mid-payload)
        is a closed connection, not a protocol error: the peer died,
        there is nobody to answer.
        """
        return await self.codec.receive(self.reader, self.max_frame_bytes)

    async def close(self) -> None:
        """Close the underlying transport (idempotent, best-effort)."""
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - already dead
            pass

    def __repr__(self) -> str:
        return f"Connection(peer={self.peer!r}, wire={self.wire})"


#: Message types a :class:`CoalescingSender` may bundle, mapped to the
#: plural frame type that carries a bundle (and the list key inside it).
_COALESCIBLE = {"job": "jobs", "result": "results"}


class CoalescingSender:
    """Pipelined, adaptively coalescing outbound path of one connection.

    :meth:`enqueue` is synchronous and never blocks: messages land in an
    outbox and a single flusher task drains it.  The coalescing is
    *adaptive* because the flusher is self-clocking — while one
    ``writelines``/``drain`` is in flight on the socket, every message
    enqueued behind it accumulates, and the next flush bundles all
    consecutive ``job`` (or ``result``) messages into one ``jobs`` /
    ``results`` frame.  An idle connection therefore flushes a lone
    message immediately (no added latency); a busy one amortizes header,
    syscall and event-loop costs across ever larger bundles exactly when
    that amortization pays.

    On a v1 connection nothing is bundled (v1 peers know only the
    classic frames); the flush still encodes the whole window and lands
    it in one ``writelines`` call, so v1 keeps the syscall amortization
    without any change to its byte stream.

    A send failure marks the sender broken, drops the outbox and awaits
    ``on_error`` once — the router hangs node-loss handling (orphan
    re-dispatch) off that hook, so messages lost with the socket are
    re-placed via the existing retry machinery, not silently dropped.
    """

    def __init__(
        self,
        connection: Connection,
        max_coalesce: int = 128,
        on_error: Optional[Callable[[Exception], "asyncio.Future"]] = None,
        stats: Optional[Dict[str, int]] = None,
    ) -> None:
        self.connection = connection
        #: Longest bundle one plural frame may carry (keeps a pathological
        #: backlog from assembling a frame past the peer's size limit).
        self.max_coalesce = max_coalesce
        self._on_error = on_error
        self._outbox: List[Dict[str, object]] = []
        self._task: Optional[asyncio.Task] = None
        self._broken = False
        #: Shared counters (``messages``/``frames``/``coalesced_frames``)
        #: the owner may aggregate across senders.
        self.stats = stats if stats is not None else {
            "messages": 0,
            "frames": 0,
            "coalesced_frames": 0,
        }

    @property
    def broken(self) -> bool:
        """True once a send failed; further enqueues are dropped."""
        return self._broken

    def enqueue(self, message: Dict[str, object]) -> None:
        """Queue one message and make sure a flusher is running."""
        if self._broken:
            return
        self._outbox.append(message)
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._flush())

    def _encode_window(
        self, window: List[Dict[str, object]]
    ) -> List[bytes]:
        """Encode one flush window, bundling runs of coalescible types."""
        codec = self.connection.codec
        buffers: List[bytes] = []

        def emit(run: List[Dict[str, object]]) -> None:
            plural = _COALESCIBLE.get(str(run[0].get("type")))
            if len(run) > 1 and plural is not None and codec.version >= 2:
                bundle = {"type": plural, plural: run}
                frame = codec.encode(bundle)
                if sum(len(b) for b in frame) <= self.connection.max_frame_bytes:
                    buffers.extend(frame)
                    self.stats["frames"] += 1
                    self.stats["coalesced_frames"] += 1
                    return
                # A bundle past the frame limit falls back to classic
                # frames (each was accepted individually before v2).
            for message in run:
                buffers.extend(codec.encode(message))
                self.stats["frames"] += 1

        run: List[Dict[str, object]] = []
        for message in window:
            kind = str(message.get("type"))
            if (
                run
                and (
                    kind != run[0].get("type")
                    or kind not in _COALESCIBLE
                    or len(run) >= self.max_coalesce
                )
            ):
                emit(run)
                run = []
            run.append(message)
        if run:
            emit(run)
        self.stats["messages"] += len(window)
        return buffers

    async def _flush(self) -> None:
        try:
            while self._outbox and not self._broken:
                window = self._outbox
                self._outbox = []
                buffers = self._encode_window(window)
                await self.connection.send_encoded(buffers)
        except (ConnectionError, OSError) as error:
            self._broken = True
            self._outbox.clear()
            if self._on_error is not None:
                await self._on_error(error)

    async def drain(self) -> None:
        """Wait until every queued message has hit the socket (or died)."""
        while self._task is not None and not self._task.done():
            await asyncio.shield(asyncio.gather(self._task, return_exceptions=True))

    def close(self) -> None:
        """Cancel the flusher; anything still queued is dropped."""
        self._broken = True
        self._outbox.clear()
        task = self._task
        # Never cancel the running flusher from inside its own on_error
        # hook (the router's node-loss path calls close() from there):
        # the cancellation would abort the hook's re-dispatch work.
        if (
            task is not None
            and not task.done()
            and task is not asyncio.current_task()
        ):
            task.cancel()

    def __repr__(self) -> str:
        return (
            f"CoalescingSender(wire={self.connection.wire}, "
            f"queued={len(self._outbox)}, broken={self._broken})"
        )
