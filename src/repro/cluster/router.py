"""The fleet's front end: placement, replication, SLOs, node lifecycle.

One :class:`Router` listens on a single TCP port for two kinds of
peers, told apart by their first frame:

* **workers** (``join``) — the router answers with the fleet's
  :class:`~repro.engine.EngineSpec` (every node builds an identical
  engine, which is what makes cross-node retries bit-identical), adds
  the node to the consistent-hash ring and starts accepting its
  heartbeats and results;
* **clients** (``hello``) — the router admits their ``submit`` frames
  through per-tenant token buckets, resolves each request's SLO class
  into a deadline + priority, and places the job on a node.

**Placement.**  A modulus's home is its consistent-hash owner, so its
per-modulus context (LUTs, Montgomery constants) warms once and stays
hot on one node — the pool's shard-affinity argument at fleet scope.
:attr:`RouterConfig.replication` widens placement to the first R ring
owners: a *hot* modulus spreads across R warm caches (the router picks
the least-loaded replica) instead of melting its home node.

**Node loss.**  The pool's crash-retry machinery, generalized over the
wire: a worker connection dropping (or its heartbeats going stale) marks
the node dead, removes it from the ring, and re-dispatches every job
that was in flight on it to a surviving replica — jobs are pure
functions of their payload, so the retry is idempotent, and results are
deduplicated by job id in case the dead node had already answered.  A
job that outlives :attr:`RouterConfig.max_retries` node losses fails
with :class:`~repro.errors.WorkerCrashError`.  A worker announcing
``leave`` drains gracefully: no new placements, in-flight jobs finish,
then the router answers ``bye``.

**Protocol robustness.**  Malformed, oversized and unknown-type frames
are answered with a structured ``error`` response and counted; the
connection state survives (see :mod:`repro.cluster.protocol`).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    CoalescingSender,
    Connection,
    PackedInts,
    negotiate_wire,
)
from repro.cluster.ratelimit import TenantRateLimiter
from repro.cluster.ring import HashRing
from repro.cluster.slo import SloCatalog
from repro.engine import EngineSpec
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    ServiceError,
    WorkerCrashError,
)

__all__ = ["Router", "RouterConfig"]


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of the cluster router."""

    #: Listen address (``port=0`` binds an ephemeral port; the bound
    #: port is :attr:`Router.port` after :meth:`Router.start`).
    host: str = "127.0.0.1"
    port: int = 0
    #: Ring owners a modulus may be placed on (1 = strict home affinity;
    #: R > 1 spreads hot moduli across R warm caches).
    replication: int = 2
    #: Interval workers are told to heartbeat at.
    heartbeat_interval_s: float = 0.25
    #: Heartbeat silence after which a *connected* node is declared dead.
    #: Generous by default: an inline worker's event loop blocks while a
    #: big batch computes, and a killed node is caught much earlier by
    #: its connection dropping — the timeout only catches wedged nodes.
    heartbeat_timeout_s: float = 30.0
    #: Liveness scan interval of the monitor task.
    monitor_interval_s: float = 0.05
    #: Frame size limit (both directions).
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Cross-node re-dispatches a job survives before failing with
    #: :class:`WorkerCrashError`.
    max_retries: int = 2
    #: Per-tenant token-bucket rate (pairs/second; ``None`` = unlimited).
    rate_per_tenant: Optional[float] = None
    #: Bucket capacity (defaults to twice the rate).
    burst_per_tenant: Optional[float] = None
    #: Highest wire protocol version the router negotiates (2 = the
    #: binary codec; 1 pins the whole fleet to the JSON codec).  Every
    #: connection still *starts* in v1 and only upgrades when the peer
    #: advertises v2 too — see :func:`repro.cluster.protocol.negotiate_wire`.
    wire: int = 2

    def __post_init__(self) -> None:
        if self.wire not in (1, 2):
            raise ConfigurationError(
                f"wire must be 1 or 2, got {self.wire}"
            )
        if self.replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if (
            self.heartbeat_interval_s <= 0
            or self.heartbeat_timeout_s <= 0
            or self.monitor_interval_s <= 0
        ):
            raise ConfigurationError("router intervals must be positive")


@dataclass
class _WorkerSession:
    """Router-side state of one connected worker node."""

    name: str
    connection: Connection
    #: Pipelined outbound path (jobs coalesce into ``jobs`` frames on v2).
    sender: CoalescingSender
    #: Negotiated wire version of this node's connection.
    wire: int = 1
    #: Job ids currently placed on this node.
    pending: Set[int] = field(default_factory=set)
    #: ``live`` -> ``draining`` (leave announced) -> ``dead``/``left``.
    state: str = "live"


@dataclass
class _ClusterJob:
    """One placed-but-unanswered request."""

    job_id: int
    kind: str  # "pairs" | "graph"
    modulus: int
    payload: object  # pairs list or graph payload dict
    tenant: str
    weight: int
    slo: str
    deadline_ms: Optional[float]
    priority: int
    client: Connection
    #: Pipelined answer path of the submitting client's connection
    #: (results coalesce into ``results`` frames on v2).
    client_sender: CoalescingSender
    client_id: object
    submitted_at: float
    node: str = ""
    retries: int = 0


class Router:
    """The multi-node serving fleet's placement and fault-tolerance brain.

    Use as an async context manager or call :meth:`start` /
    :meth:`close`::

        async with Router(EngineSpec(backend="r4csa-lut")) as router:
            print(router.port)          # workers and clients dial this
            await asyncio.sleep(forever)
    """

    def __init__(
        self,
        spec: Optional[EngineSpec] = None,
        config: Optional[RouterConfig] = None,
        slo_catalog: Optional[SloCatalog] = None,
    ) -> None:
        self.spec = (spec or EngineSpec()).validate()
        self.config = config or RouterConfig()
        self.slo_catalog = slo_catalog or SloCatalog()
        self.metrics = ClusterMetrics()
        self.limiter = TenantRateLimiter(
            rate_per_tenant=self.config.rate_per_tenant,
            burst_per_tenant=self.config.burst_per_tenant,
        )
        self._ring = HashRing()
        self._workers: Dict[str, _WorkerSession] = {}
        self._jobs: Dict[int, _ClusterJob] = {}
        self._job_ids = itertools.count()
        self._server: Optional[asyncio.AbstractServer] = None
        self._monitor: Optional[asyncio.Task] = None
        self._handlers: Set[asyncio.Task] = set()
        self._closing = False
        self.port: int = self.config.port

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "Router":
        """Bind the listen socket and start the liveness monitor."""
        if self._server is not None:
            return self
        self._closing = False
        self._server = await asyncio.start_server(
            self._accept, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.metrics.start()
        self._monitor = asyncio.get_running_loop().create_task(
            self._monitor_loop()
        )
        return self

    async def close(self) -> None:
        """Stop accepting, fail in-flight jobs, shut every peer down."""
        if self._server is None:
            return
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except asyncio.CancelledError:
                pass
            self._monitor = None
        for job in list(self._jobs.values()):
            await self._answer_error(
                job,
                ServiceError("router closed before the job completed"),
                retryable=False,
            )
        self._jobs.clear()
        for session in list(self._workers.values()):
            session.sender.close()
            if session.state in ("live", "draining"):
                try:
                    await session.connection.send({"type": "shutdown"})
                except (ConnectionError, OSError):
                    pass
            await session.connection.close()
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    async def __aenter__(self) -> "Router":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def live_nodes(self) -> List[str]:
        """Names of nodes currently accepting placements."""
        return sorted(
            name
            for name, session in self._workers.items()
            if session.state == "live"
        )

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = Connection(
            reader, writer, max_frame_bytes=self.config.max_frame_bytes
        )
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(connection)
        )
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _serve_connection(self, connection: Connection) -> None:
        """Read frames until the peer identifies itself, then delegate.

        Pre-registration protocol errors and unexpected types get a
        structured error answer and the connection keeps reading — a
        peer may retry its hello without redialing.
        """
        try:
            while True:
                try:
                    message = await connection.receive()
                except ProtocolError as error:
                    await self._answer_protocol_error(connection, None, error)
                    continue
                if message is None:
                    return
                kind = message["type"]
                if kind == "hello":
                    wire = negotiate_wire(
                        message.get("wire"), self.config.wire
                    )
                    await connection.send(
                        {
                            "type": "welcome",
                            "role": "client",
                            "wire": wire,
                            "slo_classes": self.slo_catalog.as_dict(),
                            "nodes": self.live_nodes,
                        }
                    )
                    # Same stream position as the client's upgrade: every
                    # byte after the welcome frame is the chosen codec.
                    connection.upgrade(wire)
                    self.metrics.wire_clients[wire] = (
                        self.metrics.wire_clients.get(wire, 0) + 1
                    )
                    await self._serve_client(connection)
                    return
                if kind == "join":
                    await self._serve_worker(connection, message)
                    return
                await self._answer_protocol_error(
                    connection,
                    message.get("id"),
                    ProtocolError(
                        f"connection must open with 'hello' or 'join', "
                        f"got {kind!r}"
                    ),
                )
        except (ConnectionError, OSError):
            return
        finally:
            await connection.close()

    async def _answer_protocol_error(
        self, connection: Connection, client_id: object, error: ProtocolError
    ) -> None:
        """The structured answer that replaces dropping the connection."""
        self.metrics.protocol_errors += 1
        try:
            await connection.send(
                {
                    "type": "error",
                    "id": client_id,
                    "error": "ProtocolError",
                    "message": str(error),
                    "retryable": False,
                }
            )
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            pass

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    async def _serve_client(self, connection: Connection) -> None:
        sender = CoalescingSender(connection, stats=self.metrics.wire_frames)
        try:
            await self._serve_client_loop(connection, sender)
        finally:
            sender.close()

    async def _serve_client_loop(
        self, connection: Connection, sender: CoalescingSender
    ) -> None:
        while True:
            try:
                message = await connection.receive()
            except ProtocolError as error:
                await self._answer_protocol_error(connection, None, error)
                continue
            if message is None:
                return
            kind = message["type"]
            if kind == "submit":
                try:
                    await self._handle_submit(connection, sender, message)
                except ProtocolError as error:
                    await self._answer_protocol_error(
                        connection, message.get("id"), error
                    )
            elif kind == "stats":
                await connection.send(
                    {
                        "type": "result",
                        "id": message.get("id"),
                        "stats": self.describe(),
                    }
                )
            else:
                await self._answer_protocol_error(
                    connection,
                    message.get("id"),
                    ProtocolError(
                        f"unexpected {kind!r} frame on a client connection"
                    ),
                )

    @staticmethod
    def _parse_submit(message: Dict[str, object]) -> Dict[str, object]:
        """Shape-check a submit frame (arithmetic checks happen on the
        worker's server, whose admission validates operand ranges)."""
        kind = message.get("kind")
        if kind not in ("pairs", "graph"):
            raise ProtocolError(
                f"submit kind must be 'pairs' or 'graph', got {kind!r}"
            )
        modulus = message.get("modulus")
        if not isinstance(modulus, int) or modulus < 2:
            raise ProtocolError(
                f"submit needs an integer modulus >= 2, got {modulus!r}"
            )
        if kind == "pairs":
            pairs = message.get("pairs")
            if isinstance(pairs, PackedInts):
                # A lazily decoded v2 blob: its shape was validated on
                # decode, so accept it unmaterialized — the router only
                # needs its length, and forwarding it is zero-copy.
                if not pairs.is_pairs or not len(pairs):
                    raise ProtocolError(
                        "submit pairs must be a non-empty list of [a, b] "
                        "integer pairs"
                    )
            elif (
                not isinstance(pairs, list)
                or not pairs
                or not all(
                    isinstance(pair, list)
                    and len(pair) == 2
                    and all(isinstance(operand, int) for operand in pair)
                    for pair in pairs
                )
            ):
                raise ProtocolError(
                    "submit pairs must be a non-empty list of [a, b] "
                    "integer pairs"
                )
            payload: object = pairs
            weight = len(pairs)
        else:
            graph = message.get("graph")
            if not isinstance(graph, dict) or not graph.get("nodes"):
                raise ProtocolError(
                    "submit graph must be a WorkloadGraph payload with nodes"
                )
            payload = graph
            weight = len(graph["nodes"])  # type: ignore[arg-type]
        return {
            "kind": kind,
            "modulus": modulus,
            "payload": payload,
            "weight": weight,
        }

    async def _handle_submit(
        self,
        connection: Connection,
        sender: CoalescingSender,
        message: Dict[str, object],
    ) -> None:
        parsed = self._parse_submit(message)
        tenant = str(message.get("tenant", "default"))
        try:
            slo = self.slo_catalog.resolve(message.get("slo"))  # type: ignore[arg-type]
        except ConfigurationError as error:
            raise ProtocolError(str(error)) from None
        if not self.limiter.allow(tenant, float(parsed["weight"])):  # type: ignore[arg-type]
            self.metrics.rate_limited += 1
            await connection.send(
                {
                    "type": "error",
                    "id": message.get("id"),
                    "error": "AdmissionError",
                    "message": (
                        f"tenant {tenant!r} exceeded its rate limit "
                        f"({self.limiter.rate_per_tenant}/s)"
                    ),
                    "retryable": True,
                }
            )
            return
        deadline = message.get("deadline_ms", slo.deadline_ms)
        job = _ClusterJob(
            job_id=next(self._job_ids),
            kind=str(parsed["kind"]),
            modulus=int(parsed["modulus"]),  # type: ignore[arg-type]
            payload=parsed["payload"],
            tenant=tenant,
            weight=int(parsed["weight"]),  # type: ignore[arg-type]
            slo=slo.name,
            deadline_ms=None if deadline is None else float(deadline),  # type: ignore[arg-type]
            priority=int(message.get("priority", slo.priority)),  # type: ignore[arg-type]
            client=connection,
            client_sender=sender,
            client_id=message.get("id"),
            submitted_at=time.monotonic(),
        )
        self.metrics.submitted += 1
        self._jobs[job.job_id] = job
        await self._place(job)

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def _candidates(self, job: _ClusterJob, exclude: Set[str]) -> List[str]:
        """Replica owners of the job's modulus, live and not excluded.

        Falls back to *any* live node before giving up: losing every
        replica owner should degrade affinity, not availability.
        """
        owners = self._ring.nodes_for(job.modulus, self.config.replication)
        live = [
            name
            for name in owners
            if name not in exclude
            and self._workers.get(name) is not None
            and self._workers[name].state == "live"
        ]
        if live:
            return live
        return [
            name
            for name, session in sorted(self._workers.items())
            if session.state == "live" and name not in exclude
        ]

    async def _place(self, job: _ClusterJob, exclude: Optional[Set[str]] = None) -> None:
        """Queue one job on the least-loaded live replica of its modulus.

        Dispatch is *pipelined*: the job lands on the chosen node's
        :class:`CoalescingSender` outbox and this coroutine returns
        without waiting for the socket, so the submit path keeps
        decoding the next request while earlier jobs are still being
        written — and jobs queued behind one in-flight write coalesce
        into a single multi-job frame on v2 connections.  A socket that
        dies under the queue surfaces through the sender's error hook as
        a node loss, which re-dispatches everything pending on the node
        through the existing orphan machinery — the failure path that
        used to live here, minus the blocking.
        """
        exclude = set(exclude or ())
        candidates = self._candidates(job, exclude)
        if not candidates:
            candidates = self._candidates(job, set())
        if not candidates:
            self._jobs.pop(job.job_id, None)
            await self._answer_error(
                job,
                WorkerCrashError("no live cluster nodes to place on"),
                retryable=True,
            )
            return
        home = candidates[0]
        chosen = min(
            candidates,
            key=lambda name: (self.metrics.node(name).inflight, name),
        )
        session = self._workers[chosen]
        node_metrics = self.metrics.node(chosen)
        job.node = chosen
        session.pending.add(job.job_id)
        node_metrics.dispatched += 1
        node_metrics.pairs += job.weight
        if chosen != home:
            node_metrics.replica_placements += 1
        if job.retries:
            node_metrics.redispatched += 1
        session.sender.enqueue(
            {
                "type": "job",
                "id": job.job_id,
                "kind": job.kind,
                "modulus": job.modulus,
                "payload": job.payload,
                "tenant": job.tenant,
                "priority": job.priority,
                "deadline_ms": job.deadline_ms,
                "slo": job.slo,
            }
        )

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    async def _serve_worker(
        self, connection: Connection, join: Dict[str, object]
    ) -> None:
        name = str(join.get("node") or f"node@{connection.peer}")
        if name in self._workers and self._workers[name].state in (
            "live",
            "draining",
        ):
            await self._answer_protocol_error(
                connection,
                None,
                ProtocolError(f"node name {name!r} is already joined"),
            )
            return
        wire = negotiate_wire(join.get("wire"), self.config.wire)
        session = _WorkerSession(
            name=name,
            connection=connection,
            sender=CoalescingSender(
                connection,
                on_error=lambda error, _name=name: self._lose_node(
                    _name, reason="send failed"
                ),
                stats=self.metrics.wire_frames,
            ),
            wire=wire,
        )
        # Welcome (still v1) and the codec switch happen *before* the
        # node is registered for placement, so no job frame can be
        # queued on the connection while the two ends disagree on the
        # framing.
        await connection.send(
            {
                "type": "welcome",
                "role": "worker",
                "node": name,
                "wire": wire,
                "engine_spec": self.spec.as_dict(),
                "heartbeat_interval_s": self.config.heartbeat_interval_s,
                "slo_classes": self.slo_catalog.as_dict(),
            }
        )
        connection.upgrade(wire)
        self._workers[name] = session
        self._ring.add(name)
        node_metrics = self.metrics.node(name)
        node_metrics.state = "live"
        node_metrics.wire = wire
        node_metrics.record_heartbeat({})
        try:
            while True:
                try:
                    message = await connection.receive()
                except ProtocolError as error:
                    await self._answer_protocol_error(connection, None, error)
                    continue
                if message is None:
                    break
                kind = message["type"]
                if kind == "heartbeat":
                    node_metrics.record_heartbeat(
                        dict(message.get("metrics") or {})  # type: ignore[arg-type]
                    )
                elif kind == "result":
                    await self._handle_worker_result(session, message)
                elif kind == "results":
                    # A coalesced frame: several results that completed
                    # within one of the worker's flush windows.
                    for entry in message.get("results") or ():  # type: ignore[union-attr]
                        if isinstance(entry, dict):
                            await self._handle_worker_result(session, entry)
                elif kind == "error":
                    await self._handle_worker_error(session, message)
                elif kind == "leave":
                    await self._start_drain(session)
                else:
                    await self._answer_protocol_error(
                        connection,
                        message.get("id"),
                        ProtocolError(
                            f"unexpected {kind!r} frame on a worker connection"
                        ),
                    )
        finally:
            if session.state in ("live", "draining"):
                await self._lose_node(name, reason="connection lost")

    async def _handle_worker_result(
        self, session: _WorkerSession, message: Dict[str, object]
    ) -> None:
        job_id = message.get("id")
        session.pending.discard(job_id)  # type: ignore[arg-type]
        job = self._jobs.pop(job_id, None)  # type: ignore[arg-type]
        if job is None:
            # A re-dispatched job answered twice (the "dead" node had
            # already replied): first answer won, drop the duplicate.
            await self._maybe_finish_drain(session)
            return
        latency_s = time.monotonic() - job.submitted_at
        node_metrics = self.metrics.node(session.name)
        node_metrics.completed += 1
        node_metrics.latency.record(latency_s)
        self.metrics.record_completion(job.tenant, job.slo, latency_s)
        response = dict(message)
        response["id"] = job.client_id
        response["node"] = session.name
        response["slo"] = job.slo
        response["router_latency_ms"] = latency_s * 1e3
        # Pipelined fan-back: answers queued while one write is in
        # flight coalesce into a single multi-result frame on v2
        # connections.  A dead client breaks the sender silently — the
        # work still counted.
        job.client_sender.enqueue(response)
        await self._maybe_finish_drain(session)

    async def _handle_worker_error(
        self, session: _WorkerSession, message: Dict[str, object]
    ) -> None:
        job_id = message.get("id")
        session.pending.discard(job_id)  # type: ignore[arg-type]
        job = self._jobs.get(job_id)  # type: ignore[arg-type]
        if job is None:
            await self._maybe_finish_drain(session)
            return
        retryable = bool(message.get("retryable"))
        if retryable and job.retries < self.config.max_retries and len(
            self.live_nodes
        ) > 1:
            # Worker-side overload (its admission control pushed back):
            # try a different replica before bothering the client.
            job.retries += 1
            self.metrics.redispatches += 1
            self.metrics.node(session.name).handed_off += 1
            await self._place(job, exclude={session.name})
            await self._maybe_finish_drain(session)
            return
        self._jobs.pop(job.job_id, None)
        self.metrics.failed += 1
        self.metrics.node(session.name).failed += 1
        response = dict(message)
        response["id"] = job.client_id
        response["node"] = session.name
        try:
            await job.client.send(response)
        except (ConnectionError, OSError):
            pass
        await self._maybe_finish_drain(session)

    async def _start_drain(self, session: _WorkerSession) -> None:
        """Graceful leave: stop placing, let in-flight work finish."""
        if session.state != "live":
            return
        session.state = "draining"
        self.metrics.node(session.name).state = "draining"
        self._ring.remove(session.name)
        await self._maybe_finish_drain(session)

    async def _maybe_finish_drain(self, session: _WorkerSession) -> None:
        if session.state != "draining" or session.pending:
            return
        session.state = "left"
        self.metrics.node(session.name).state = "left"
        try:
            await session.connection.send({"type": "bye"})
        except (ConnectionError, OSError):  # pragma: no cover - worker gone
            pass

    # ------------------------------------------------------------------ #
    # failure handling
    # ------------------------------------------------------------------ #
    async def _lose_node(self, name: str, reason: str) -> None:
        """A node died: deregister it and re-dispatch its in-flight jobs."""
        session = self._workers.get(name)
        if session is None or session.state in ("dead", "left"):
            return
        session.state = "dead"
        session.sender.close()
        self.metrics.lost_nodes += 1
        node_metrics = self.metrics.node(name)
        node_metrics.state = "dead"
        self._ring.remove(name)
        await session.connection.close()
        orphans = sorted(session.pending)
        session.pending.clear()
        for job_id in orphans:
            job = self._jobs.get(job_id)
            if job is None:
                continue
            node_metrics.handed_off += 1
            job.retries += 1
            if job.retries > self.config.max_retries:
                self._jobs.pop(job_id, None)
                self.metrics.failed += 1
                await self._answer_error(
                    job,
                    WorkerCrashError(
                        f"job {job_id} lost node {name!r} ({reason}) "
                        f"{job.retries} times; giving up"
                    ),
                    retryable=False,
                )
                continue
            self.metrics.redispatches += 1
            await self._place(job, exclude={name})

    async def _answer_error(
        self, job: _ClusterJob, error: ReproError, retryable: bool
    ) -> None:
        try:
            await job.client.send(
                {
                    "type": "error",
                    "id": job.client_id,
                    "error": type(error).__name__,
                    "message": str(error),
                    "retryable": retryable,
                }
            )
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass

    async def _monitor_loop(self) -> None:
        """Declare nodes with stale heartbeats dead (wedged, not killed:
        killed nodes are caught faster by their connection dropping)."""
        while True:
            await asyncio.sleep(self.config.monitor_interval_s)
            now = time.monotonic()
            for name in list(self._workers):
                session = self._workers[name]
                if session.state not in ("live", "draining"):
                    continue
                node_metrics = self.metrics.node(name)
                seen = node_metrics.last_heartbeat_at
                if seen is not None and (
                    now - seen > self.config.heartbeat_timeout_s
                ):
                    await self._lose_node(name, reason="heartbeat timeout")

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def pending_by_node(self) -> Dict[str, int]:
        """In-flight job counts per connected node (placement view)."""
        return {
            name: len(session.pending)
            for name, session in self._workers.items()
        }

    def wire_versions(self) -> Dict[str, int]:
        """Negotiated wire version per connected worker node."""
        return {
            name: session.wire
            for name, session in sorted(self._workers.items())
        }

    def describe(self) -> Dict[str, object]:
        """The cluster rollup ``stats`` frames answer with."""
        return {
            **self.metrics.rollup(),
            "backend": self.spec.backend,
            "spec": self.spec.as_dict(),
            "replication": self.config.replication,
            "slo_classes": self.slo_catalog.as_dict(),
            "rate_limiter": self.limiter.describe(),
            "ring_nodes": self._ring.nodes,
            "wire_max": self.config.wire,
            "wire_workers": self.wire_versions(),
        }

    def __repr__(self) -> str:
        return (
            f"Router(backend={self.spec.backend!r}, port={self.port}, "
            f"nodes={len(self._workers)})"
        )
