"""Per-tenant token-bucket rate limiting at the router's front door.

The worker servers already have admission control (pending caps that
reject with :class:`~repro.errors.AdmissionError`), but those caps bound
*buffered* work.  A fleet also needs to bound *offered* work per tenant,
before placement: one tenant replaying a burst trace must not consume
every node's queue budget and starve the rest of the fleet.

The classic token bucket does that: each tenant's bucket refills at
``rate`` tokens per second up to ``burst`` tokens, and a request costs
as many tokens as it carries operand pairs (graph requests: nodes), so
the limit is on arithmetic offered, not on request count — a tenant
cannot dodge it by packing bigger batches.  An empty bucket rejects the
request immediately with a structured ``AdmissionError`` response; the
client sees backpressure in microseconds instead of a deadline miss
seconds later.

Time is injected (``clock``) so tests drive the refill deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["TokenBucket", "TenantRateLimiter"]


class TokenBucket:
    """One tenant's bucket: ``rate`` tokens/s refill, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ConfigurationError(
                f"rate and burst must be positive, got rate={rate}, "
                f"burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(now - self._refilled_at, 0.0)
        self._refilled_at = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False means *rejected now*.

        A request larger than the burst capacity can never pass; it is
        rejected rather than waited on (the bucket is a limiter, not a
        queue — queueing is the worker server's job).
        """
        self._refill()
        if tokens > self._tokens:
            return False
        self._tokens -= tokens
        return True

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate}, burst={self.burst}, "
            f"tokens={self.tokens:.1f})"
        )


class TenantRateLimiter:
    """Lazily-created per-tenant buckets with one shared policy.

    ``rate_per_tenant=None`` disables limiting entirely (every check
    passes), which is the router default — the limiter is opt-in policy,
    not a hidden throttle.
    """

    def __init__(
        self,
        rate_per_tenant: Optional[float] = None,
        burst_per_tenant: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_tenant is not None and rate_per_tenant <= 0:
            raise ConfigurationError(
                f"rate_per_tenant must be positive, got {rate_per_tenant}"
            )
        self.rate_per_tenant = rate_per_tenant
        self.burst_per_tenant = (
            burst_per_tenant
            if burst_per_tenant is not None
            else (rate_per_tenant * 2 if rate_per_tenant else None)
        )
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        """Whether any limiting happens at all."""
        return self.rate_per_tenant is not None

    def allow(self, tenant: str, weight: float = 1.0) -> bool:
        """Charge one request of ``weight`` pairs against its tenant."""
        if self.rate_per_tenant is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            assert self.burst_per_tenant is not None
            bucket = TokenBucket(
                self.rate_per_tenant, self.burst_per_tenant, clock=self._clock
            )
            self._buckets[tenant] = bucket
        return bucket.try_acquire(weight)

    def describe(self) -> Dict[str, object]:
        """JSON-friendly policy + live bucket levels."""
        return {
            "enabled": self.enabled,
            "rate_per_tenant": self.rate_per_tenant,
            "burst_per_tenant": self.burst_per_tenant,
            "tenants": {
                tenant: round(bucket.tokens, 3)
                for tenant, bucket in sorted(self._buckets.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"TenantRateLimiter(rate={self.rate_per_tenant}, "
            f"burst={self.burst_per_tenant}, tenants={len(self._buckets)})"
        )
