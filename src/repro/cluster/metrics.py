"""Fleet-level accounting: per-node and per-SLO views through the router.

:class:`ClusterMetrics` is the cluster-scope analogue of the pool's
:class:`~repro.service.metrics.PoolMetrics`: one :class:`NodeMetrics`
per worker node (surviving the node itself — a dead node's counters are
kept, marked ``state="dead"``), plus the router-level events no single
node owns (rate-limited rejections, protocol errors, jobs re-dispatched
after a node loss, jobs that exhausted their retries).

Each worker heartbeat piggybacks the node's own
``Server.metrics_summary()`` — the warm-cache counters, batch sizes and
worker-side latency percentiles of that node's serving layer — so
:meth:`ClusterMetrics.rollup` aggregates the *fleet's* shard metrics
through the router without a separate stats round-trip, exactly like the
pool piggybacks engine counters on reply tuples.

Latency is additionally tracked per SLO class at the router (submission
to response, network and placement included), which is the number an SLO
tier is actually judged by.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.service.metrics import LatencyStats

__all__ = ["ClusterMetrics", "NodeMetrics"]


@dataclass
class NodeMetrics:
    """What one worker node has done, as observed by the router."""

    node: str
    #: ``"live"``, ``"draining"`` or ``"dead"``.
    state: str = "live"
    #: Negotiated wire protocol version of the node's connection
    #: (1 = JSON, 2 = binary; see :mod:`repro.cluster.protocol`).
    wire: int = 1
    #: Jobs placed on this node (including re-dispatches *to* it).
    dispatched: int = 0
    #: Jobs this node answered successfully.
    completed: int = 0
    #: Jobs this node answered with an error.
    failed: int = 0
    #: Jobs re-dispatched to this node after another node was lost.
    redispatched: int = 0
    #: Jobs dispatched here but re-dispatched (or failed) elsewhere —
    #: this node died with them in flight or bounced them as overload.
    handed_off: int = 0
    #: Operand pairs / graph nodes placed on this node.
    pairs: int = 0
    #: Jobs placed here although another node was the modulus's home
    #: (replica placement for hot moduli).
    replica_placements: int = 0
    joined_at: float = field(default_factory=time.monotonic)
    last_heartbeat_at: Optional[float] = None
    #: The node's latest ``Server.metrics_summary()`` snapshot.
    heartbeat: Dict[str, object] = field(default_factory=dict)
    #: Router-observed per-job latency on this node.
    latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def inflight(self) -> int:
        """Jobs dispatched but not yet answered (the placement load view)."""
        return self.dispatched - self.completed - self.failed - self.handed_off

    def record_heartbeat(self, summary: Dict[str, object]) -> None:
        """One heartbeat: refresh liveness and the metrics snapshot."""
        self.last_heartbeat_at = time.monotonic()
        self.heartbeat = summary

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly per-node rollup."""
        return {
            "node": self.node,
            "state": self.state,
            "wire": self.wire,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
            "inflight": self.inflight,
            "redispatched": self.redispatched,
            "handed_off": self.handed_off,
            "replica_placements": self.replica_placements,
            "pairs": self.pairs,
            "latency": self.latency.as_dict(),
            "heartbeat": self.heartbeat,
        }


@dataclass
class ClusterMetrics:
    """Everything the router counts while the fleet serves."""

    nodes: Dict[str, NodeMetrics] = field(default_factory=dict)
    #: Requests admitted by the router (placed or queued for placement).
    submitted: int = 0
    #: Requests answered with products.
    completed: int = 0
    #: Requests answered with an error (deadline, admission, crash...).
    failed: int = 0
    #: Requests rejected by the per-tenant token bucket.
    rate_limited: int = 0
    #: Malformed/oversized/unknown frames answered with a structured error.
    protocol_errors: int = 0
    #: Job re-dispatches after a node loss.
    redispatches: int = 0
    #: Jobs that exhausted their retries after repeated node losses.
    lost_nodes: int = 0
    started_at: Optional[float] = None
    #: Router-observed latency per SLO class name.
    slo_latency: Dict[str, LatencyStats] = field(default_factory=dict)
    #: Completions per tenant (the fairness view).
    per_tenant_completed: Dict[str, int] = field(default_factory=dict)
    #: Client connections per negotiated wire version.
    wire_clients: Dict[int, int] = field(default_factory=dict)
    #: Outbound frame accounting shared by every CoalescingSender the
    #: router owns: ``messages`` queued, ``frames`` written, and how
    #: many of those frames were coalesced multi-message bundles.
    wire_frames: Dict[str, int] = field(
        default_factory=lambda: {
            "messages": 0,
            "frames": 0,
            "coalesced_frames": 0,
        }
    )

    def start(self) -> None:
        """Mark serving start (throughput denominators)."""
        self.started_at = time.monotonic()

    @property
    def elapsed_seconds(self) -> float:
        """Seconds since :meth:`start` (0 before it)."""
        if self.started_at is None:
            return 0.0
        return max(time.monotonic() - self.started_at, 0.0)

    def node(self, name: str) -> NodeMetrics:
        """The (created-on-first-use) metrics slot of one node."""
        if name not in self.nodes:
            self.nodes[name] = NodeMetrics(node=name)
        return self.nodes[name]

    def record_completion(
        self, tenant: str, slo: str, latency_s: float
    ) -> None:
        """One answered request, attributed to its tenant and SLO tier."""
        self.completed += 1
        self.per_tenant_completed[tenant] = (
            self.per_tenant_completed.get(tenant, 0) + 1
        )
        if slo not in self.slo_latency:
            self.slo_latency[slo] = LatencyStats()
        self.slo_latency[slo].record(latency_s)

    def rollup(self) -> Dict[str, object]:
        """The JSON-friendly fleet summary (``stats`` frames, loadtest)."""
        elapsed = self.elapsed_seconds
        live = [n for n in self.nodes.values() if n.state == "live"]
        return {
            "kind": "cluster",
            "nodes": len(self.nodes),
            "live_nodes": len(live),
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "inflight": sum(n.inflight for n in self.nodes.values()),
            "rate_limited": self.rate_limited,
            "protocol_errors": self.protocol_errors,
            "redispatches": self.redispatches,
            "lost_nodes": self.lost_nodes,
            "elapsed_seconds": elapsed,
            "requests_per_second": (
                self.completed / elapsed if elapsed else 0.0
            ),
            "per_slo_latency": {
                name: stats.as_dict()
                for name, stats in sorted(self.slo_latency.items())
            },
            "per_tenant_completed": dict(
                sorted(self.per_tenant_completed.items())
            ),
            "wire_clients": {
                str(version): count
                for version, count in sorted(self.wire_clients.items())
            },
            "wire_frames": dict(self.wire_frames),
            "per_node": {
                name: metrics.as_dict()
                for name, metrics in sorted(self.nodes.items())
            },
        }
