"""The cluster's client side: submit batches and graphs over the wire.

:class:`ClusterClient` is the network twin of the in-process
:class:`~repro.service.client.Client`: it binds a tenant and a default
SLO class, speaks the framed protocol to a router and exposes the same
awaitable surface (``multiply_batch``, ``submit_graph``), so call sites
move from one server to a fleet by changing the constructor.

One background reader task resolves responses to the futures of their
request ids, which makes the client safely concurrent: any number of
tasks may have requests in flight on one connection.  Structured
``error`` frames are raised as their original exception classes —
:class:`~repro.errors.AdmissionError` from a rate-limited tenant,
:class:`~repro.errors.DeadlineError` from a missed SLO deadline,
:class:`~repro.errors.WorkerCrashError` from a job that out-died its
retries — so cluster callers handle the very same exceptions in-process
callers do.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    Connection,
    PackedInts,
    negotiate_wire,
)
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineError,
    ModulusError,
    OperandRangeError,
    ProtocolError,
    ReproError,
    ServiceError,
    WorkerCrashError,
)
from repro.workloads import WorkloadGraph

__all__ = ["ClusterClient", "ClusterResponse"]

#: Error-frame names mapped back to the exception classes they started
#: as on the worker/router side (anything unknown degrades to
#: :class:`ServiceError`, never to a swallowed string).
_ERROR_CLASSES: Dict[str, Type[ReproError]] = {
    "AdmissionError": AdmissionError,
    "ConfigurationError": ConfigurationError,
    "DeadlineError": DeadlineError,
    "ModulusError": ModulusError,
    "OperandRangeError": OperandRangeError,
    "ProtocolError": ProtocolError,
    "WorkerCrashError": WorkerCrashError,
}


@dataclass(frozen=True)
class ClusterResponse:
    """What one cluster request resolves to (the fleet's ``Response``)."""

    #: Products, in request order.
    values: Tuple[int, ...]
    kind: str
    backend: str
    modulus: int
    #: Node that executed the request.
    node: str
    #: SLO class the router resolved for the request.
    slo: str
    batched_pairs: int
    modeled_cycles: Optional[int]
    #: Worker-server-observed latency (queue + execute on the node).
    latency_ms: float
    queue_ms: float
    #: Submission-to-response latency as the router observed it
    #: (placement, network and any re-dispatch included).
    router_latency_ms: float

    @property
    def value(self) -> int:
        """The single product (raises unless exactly one)."""
        if len(self.values) != 1:
            raise ConfigurationError(
                f"response carries {len(self.values)} values; use .values"
            )
        return self.values[0]


class ClusterClient:
    """One tenant's connection to a cluster router.

    ::

        async with ClusterClient("127.0.0.1", port, tenant="acme") as c:
            r = await c.multiply_batch([(a, b)], modulus=p, slo="gold")
            products = r.values
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        slo: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        wire: int = 2,
    ) -> None:
        if wire not in (1, 2):
            raise ConfigurationError(f"wire must be 1 or 2, got {wire}")
        self.host = host
        self.port = port
        self.tenant = tenant
        #: Default SLO class name for requests that do not name one
        #: (``None`` = the router catalog's loosest tier).
        self.slo = slo
        self.max_frame_bytes = max_frame_bytes
        #: Highest wire protocol version this client advertises in its
        #: hello; :attr:`wire` holds the router's negotiated answer once
        #: :meth:`connect` returns.
        self.wire = wire
        self._connection: Optional[Connection] = None
        self._reader: Optional[asyncio.Task] = None
        self._ids = itertools.count()
        self._futures: Dict[int, asyncio.Future] = {}
        #: The SLO catalog the router advertised in its welcome frame.
        self.slo_classes: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def connect(self) -> "ClusterClient":
        """Dial the router and complete the hello/welcome handshake."""
        if self._connection is not None:
            return self
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._connection = Connection(
            reader, writer, max_frame_bytes=self.max_frame_bytes
        )
        await self._connection.send(
            {"type": "hello", "tenant": self.tenant, "wire": self.wire}
        )
        welcome = await self._connection.receive()
        if welcome is None or welcome["type"] != "welcome":
            got = None if welcome is None else welcome["type"]
            raise ProtocolError(
                f"router answered hello with {got!r}, expected 'welcome'"
            )
        self.slo_classes = dict(welcome.get("slo_classes") or {})  # type: ignore[arg-type]
        # Switch codecs at the agreed stream position: the router upgrades
        # its end immediately after writing this welcome.
        self.wire = negotiate_wire(welcome.get("wire"), self.wire)
        self._connection.upgrade(self.wire)
        self._reader = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return self

    async def close(self) -> None:
        """Drop the connection; unresolved futures fail with an error."""
        if self._reader is not None:
            self._reader.cancel()
            try:
                await self._reader
            except asyncio.CancelledError:
                pass
            self._reader = None
        if self._connection is not None:
            await self._connection.close()
            self._connection = None
        self._fail_all(ServiceError("cluster client closed"))

    async def __aenter__(self) -> "ClusterClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # requests
    # ------------------------------------------------------------------ #
    async def multiply_batch(
        self,
        pairs: Sequence[Tuple[int, int]],
        modulus: int,
        slo: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> ClusterResponse:
        """Submit a batch of operand pairs to the fleet."""
        return await self._submit(
            {
                "kind": "pairs",
                "modulus": int(modulus),
                "pairs": [[int(a), int(b)] for a, b in pairs],
            },
            slo,
            deadline_ms,
        )

    async def submit_graph(
        self,
        graph: WorkloadGraph,
        modulus: int,
        slo: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> ClusterResponse:
        """Submit an operand-carrying workload graph to the fleet."""
        return await self._submit(
            {
                "kind": "graph",
                "modulus": int(modulus),
                "graph": graph.to_payload(),
            },
            slo,
            deadline_ms,
        )

    async def stats(self) -> Dict[str, object]:
        """The router's cluster metrics rollup."""
        if self._connection is None:
            raise ServiceError("cluster client is not connected")
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        await self._connection.send({"type": "stats", "id": request_id})
        message = await future
        return dict(message.get("stats") or {})

    async def _submit(
        self,
        body: Dict[str, object],
        slo: Optional[str],
        deadline_ms: Optional[float],
    ) -> ClusterResponse:
        if self._connection is None:
            raise ServiceError("cluster client is not connected")
        request_id = next(self._ids)
        message: Dict[str, object] = {
            "type": "submit",
            "id": request_id,
            "tenant": self.tenant,
            **body,
        }
        resolved_slo = slo if slo is not None else self.slo
        if resolved_slo is not None:
            message["slo"] = resolved_slo
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        started = time.monotonic()
        await self._connection.send(message)
        reply = await future
        values = reply.get("values") or ()
        return ClusterResponse(
            values=(
                tuple(values.tolist())
                if isinstance(values, PackedInts)
                else tuple(int(v) for v in values)
            ),
            kind=str(reply.get("kind", "pairs")),
            backend=str(reply.get("backend", "")),
            modulus=int(reply.get("modulus", body["modulus"])),  # type: ignore[arg-type]
            node=str(reply.get("node", "")),
            slo=str(reply.get("slo", "")),
            batched_pairs=int(reply.get("batched_pairs", 0)),  # type: ignore[arg-type]
            modeled_cycles=(
                None
                if reply.get("modeled_cycles") is None
                else int(reply["modeled_cycles"])  # type: ignore[arg-type]
            ),
            latency_ms=float(reply.get("latency_ms", 0.0)),  # type: ignore[arg-type]
            queue_ms=float(reply.get("queue_ms", 0.0)),  # type: ignore[arg-type]
            router_latency_ms=float(
                reply.get(
                    "router_latency_ms", (time.monotonic() - started) * 1e3
                )  # type: ignore[arg-type]
            ),
        )

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        assert self._connection is not None
        connection = self._connection
        while True:
            try:
                message = await connection.receive()
            except ProtocolError as error:
                # A malformed frame from the router: fail everything in
                # flight (ids may be unrecoverable) but keep reading.
                self._fail_all(error)
                continue
            except (ConnectionError, OSError):
                break
            if message is None:
                break
            if message["type"] == "results":
                # Coalesced multi-result frame (wire v2): resolve each
                # bundled answer exactly as if it arrived alone.
                for entry in message.get("results") or ():
                    if isinstance(entry, dict):
                        self._resolve(entry)
            else:
                self._resolve(message)
        self._fail_all(
            ServiceError("cluster connection closed with requests in flight")
        )

    def _resolve(self, message: Dict[str, object]) -> None:
        """Resolve one response frame to the future of its request id."""
        request_id = message.get("id")
        future = self._futures.pop(request_id, None)  # type: ignore[arg-type]
        if future is None or future.done():
            return
        if message["type"] == "error":
            name = str(message.get("error", "ServiceError"))
            exc_class = _ERROR_CLASSES.get(name, ServiceError)
            future.set_exception(exc_class(str(message.get("message", name))))
        else:
            future.set_result(message)

    def _fail_all(self, error: ReproError) -> None:
        pending: List[asyncio.Future] = [
            f for f in self._futures.values() if not f.done()
        ]
        self._futures.clear()
        for future in pending:
            future.set_exception(error)

    def __repr__(self) -> str:
        return (
            f"ClusterClient(router={self.host}:{self.port}, "
            f"tenant={self.tenant!r}, slo={self.slo!r})"
        )
