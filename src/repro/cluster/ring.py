"""Consistent-hash placement of moduli across cluster nodes.

The pool's ``shard_for(modulus) % workers`` routing breaks down the
moment membership changes: one node joining re-homes *every* modulus,
throwing away every warm per-modulus context in the fleet.  A consistent
hash ring re-homes only ~1/N of the key space per membership change, so
node churn costs the fleet a sliver of its cache warmth, not all of it.

Each node owns :attr:`HashRing.vnodes` points on a 64-bit ring (virtual
nodes smooth the load split); a modulus hashes to a ring position and is
owned by the next node points clockwise.  :meth:`HashRing.nodes_for`
returns the first *k distinct* nodes clockwise — the home node plus its
``k-1`` replica candidates, which is how the router spreads a *hot*
modulus across several warm caches instead of melting one node.

Hashing is :func:`hashlib.sha256`-based (like the pool's ``shard_for``):
deterministic across processes, runs and interpreters, so placement is
reproducible in tests and stable across router restarts with the same
membership.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

__all__ = ["HashRing", "stable_hash"]


def stable_hash(value: object) -> int:
    """A process-stable 64-bit hash of an int or string key."""
    if isinstance(value, int):
        data = value.to_bytes((value.bit_length() + 7) // 8 or 1, "little")
    else:
        data = str(value).encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    Membership operations (:meth:`add` / :meth:`remove`) rebuild the
    sorted point list — O(total vnodes) — which is fine at fleet scale
    (nodes join and leave rarely; lookups happen per request).
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        self._members: Dict[str, bool] = {}

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[str]:
        """Current members, sorted by name."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def add(self, node: str) -> None:
        """Add a member (idempotent)."""
        if node in self._members:
            return
        self._members[node] = True
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove a member (idempotent)."""
        if node not in self._members:
            return
        del self._members[node]
        self._rebuild()

    def _rebuild(self) -> None:
        points = []
        for node in self._members:
            for replica in range(self.vnodes):
                points.append((stable_hash(f"{node}#{replica}"), node))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def nodes_for(self, modulus: int, count: int = 1) -> List[str]:
        """The first ``count`` distinct owners clockwise of a modulus.

        Index 0 is the *home* node; the rest are the replica candidates
        a hot modulus may spread across.  Fewer than ``count`` members
        simply yields every member (placement still works on a fleet of
        one).
        """
        if not self._points:
            return []
        count = min(max(count, 1), len(self._members))
        start = bisect.bisect_right(self._keys, stable_hash(modulus))
        owners: List[str] = []
        for offset in range(len(self._points)):
            _, node = self._points[(start + offset) % len(self._points)]
            if node not in owners:
                owners.append(node)
                if len(owners) == count:
                    break
        return owners

    def home(self, modulus: int) -> str:
        """The home node of a modulus (raises on an empty ring)."""
        owners = self.nodes_for(modulus, 1)
        if not owners:
            raise ConfigurationError("hash ring has no members")
        return owners[0]

    def __repr__(self) -> str:
        return f"HashRing(nodes={len(self._members)}, vnodes={self.vnodes})"
