"""SLO classes: latency-target tiers mapped onto admission and batching.

A request does not carry raw scheduling knobs over the wire; it names an
*SLO class*, and the router resolves the class into the two mechanisms
the serving layer already has:

* the class's :attr:`SloClass.deadline_ms` becomes the request deadline,
  which the worker's :class:`~repro.service.server.Server` feeds into
  deadline-aware batching (never linger past the tightest deadline) and
  expiry (a request that waited too long fails with
  :class:`~repro.errors.DeadlineError` instead of burning a core late);
* the class's :attr:`SloClass.priority` becomes the request priority in
  the worker's per-tenant queues (higher dispatches first among ready
  jobs).

The default catalog is three tiers — ``gold`` (tight deadline, first in
queue), ``silver`` (loose deadline), ``best-effort`` (no deadline) — and
routers may be configured with their own catalog.  Per-SLO latency is
tracked separately in :class:`~repro.cluster.metrics.ClusterMetrics`, so
a fleet report shows whether each tier actually met its target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.errors import ConfigurationError

__all__ = ["SloClass", "SloCatalog", "DEFAULT_SLO_CLASSES"]


@dataclass(frozen=True)
class SloClass:
    """One latency tier: a name, a deadline target and a queue priority."""

    name: str
    #: Per-request deadline the worker's batcher honors (``None`` = no
    #: deadline; the request waits as long as it takes).
    deadline_ms: Optional[float] = None
    #: Priority in the worker server's tenant queues (higher first).
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an SLO class needs a name")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError(
                f"SLO {self.name!r}: deadline_ms must be positive, got "
                f"{self.deadline_ms}"
            )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (welcome frames, metrics rollups)."""
        return {
            "name": self.name,
            "deadline_ms": self.deadline_ms,
            "priority": self.priority,
        }


#: The default three-tier catalog.  Deadlines are generous because the
#: arithmetic is pure Python: the tiers order traffic, they do not
#: promise silicon latencies.
DEFAULT_SLO_CLASSES = (
    SloClass("gold", deadline_ms=2_000.0, priority=2),
    SloClass("silver", deadline_ms=10_000.0, priority=1),
    SloClass("best-effort", deadline_ms=None, priority=0),
)


class SloCatalog:
    """The SLO classes one router serves, resolvable by name."""

    def __init__(self, classes: Iterable[SloClass] = DEFAULT_SLO_CLASSES) -> None:
        self._classes: Dict[str, SloClass] = {}
        for slo in classes:
            if slo.name in self._classes:
                raise ConfigurationError(f"duplicate SLO class {slo.name!r}")
            self._classes[slo.name] = slo
        if not self._classes:
            raise ConfigurationError("an SLO catalog needs at least one class")

    @property
    def names(self) -> list:
        """Every class name, in catalog order."""
        return list(self._classes)

    @property
    def default(self) -> SloClass:
        """The class an SLO-less request gets: the *last* (loosest) tier."""
        return list(self._classes.values())[-1]

    def resolve(self, name: Optional[str]) -> SloClass:
        """The class a request named (``None`` = the loosest tier)."""
        if name is None:
            return self.default
        try:
            return self._classes[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown SLO class {name!r}; catalog: {self.names}"
            ) from None

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly catalog (sent to clients in the welcome frame)."""
        return {name: slo.as_dict() for name, slo in self._classes.items()}

    def __repr__(self) -> str:
        return f"SloCatalog({self.names})"
