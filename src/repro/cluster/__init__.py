"""Multi-node serving fleet: router/worker split over sockets.

The :mod:`repro.service` layer serves one process (optionally with a
process pool under it); this package scales the same serving contract
across *nodes*.  One :class:`Router` owns placement and policy; any
number of :class:`WorkerNode` s dial in, each wrapping its own
:class:`~repro.service.server.Server` built from the fleet's single
:class:`~repro.engine.EngineSpec`; :class:`ClusterClient` s submit the
same batches and operand-carrying graphs they would submit in-process
and get back the same products, bit-identical — the fleet is a
throughput amplifier, never an arithmetic variable.

The moving parts, bottom-up:

* :mod:`repro.cluster.protocol` — two negotiated codecs behind one
  :class:`Codec` seam: length-prefixed JSON frames (wire v1) and the
  struct-packed binary format (wire v2) that carries operands/products
  as fixed-width little-endian blobs, both with structured error
  answers for malformed/oversized/unknown frames;
* :mod:`repro.cluster.ring` — consistent-hash placement of moduli so
  membership churn re-homes ~1/N of the key space, with replication for
  hot moduli (:class:`HashRing`);
* :mod:`repro.cluster.slo` — named latency tiers resolved into the
  serving layer's deadlines and priorities (:class:`SloClass`,
  :class:`SloCatalog`);
* :mod:`repro.cluster.ratelimit` — per-tenant token buckets at the
  router's front door (:class:`TenantRateLimiter`);
* :mod:`repro.cluster.metrics` — per-node and per-SLO accounting
  aggregated through heartbeats (:class:`ClusterMetrics`);
* :mod:`repro.cluster.router` / :mod:`repro.cluster.worker` /
  :mod:`repro.cluster.client` — the three roles;
* :mod:`repro.cluster.loadgen` — deterministic diurnal/bursty
  multi-tenant traces and their replay verdicts;
* :mod:`repro.cluster.fleet` — :class:`LocalFleet`, a one-call local
  cluster with killable worker processes, and :func:`run_loadtest`,
  the scenario the CLI, CI smoke and benchmark all run.

Failure handling generalizes the pool's crash-retry machinery: a lost
node's in-flight jobs re-dispatch to surviving replicas with job-id
dedup, so a SIGKILL mid-batch costs latency, not answers.
"""

from __future__ import annotations

from repro.cluster.client import ClusterClient, ClusterResponse
from repro.cluster.fleet import LocalFleet, run_loadtest
from repro.cluster.loadgen import TenantProfile, TraceEvent, build_trace, replay
from repro.cluster.metrics import ClusterMetrics, NodeMetrics
from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    WIRE_VERSIONS,
    BinaryCodec,
    CoalescingSender,
    Codec,
    Connection,
    JsonCodec,
    PackedInts,
    decode_frame,
    decode_frame_v2,
    encode_frame,
    encode_frame_v2,
    negotiate_wire,
)
from repro.cluster.ratelimit import TenantRateLimiter, TokenBucket
from repro.cluster.ring import HashRing, stable_hash
from repro.cluster.router import Router, RouterConfig
from repro.cluster.slo import DEFAULT_SLO_CLASSES, SloCatalog, SloClass
from repro.cluster.worker import WorkerConfig, WorkerNode, run_worker

__all__ = [
    "BinaryCodec",
    "CoalescingSender",
    "ClusterClient",
    "ClusterMetrics",
    "ClusterResponse",
    "Codec",
    "Connection",
    "HashRing",
    "JsonCodec",
    "LocalFleet",
    "NodeMetrics",
    "PackedInts",
    "Router",
    "RouterConfig",
    "SloCatalog",
    "SloClass",
    "TenantProfile",
    "TenantRateLimiter",
    "TokenBucket",
    "TraceEvent",
    "WorkerConfig",
    "WorkerNode",
    "build_trace",
    "decode_frame",
    "decode_frame_v2",
    "encode_frame",
    "encode_frame_v2",
    "negotiate_wire",
    "replay",
    "run_loadtest",
    "run_worker",
    "stable_hash",
]
