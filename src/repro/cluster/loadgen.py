"""Trace-driven multi-tenant load generation against a cluster router.

A load test is two separable halves:

* :func:`build_trace` turns a set of :class:`TenantProfile` s into a
  deterministic, seeded list of timestamped :class:`TraceEvent` s —
  *what* arrives *when*, with real random operands.  Determinism
  matters: the same seed replays the same operands at the same offsets,
  so a regression in a kill-recovery run is reproducible, not an
  anecdote.
* :func:`replay` opens one :class:`~repro.cluster.client.ClusterClient`
  per tenant, fires each event at its offset (scaled by
  ``time_scale``), verifies every answered product against big-int
  reference arithmetic and folds the outcome into a JSON-friendly
  report — including ``lost``, the number of requests that got *no*
  answer at all, which a healthy fleet must keep at zero even across a
  node kill.

Three arrival patterns model the shapes a shared fleet actually sees:
``steady`` (Poisson at a flat rate), ``diurnal`` (the rate follows a
sinusoid over the trace — day/night), ``bursty`` (on/off duty cycle —
batch jobs).
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.client import ClusterClient
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineError,
    ReproError,
)
from repro.service.metrics import LatencyStats

__all__ = ["TenantProfile", "TraceEvent", "build_trace", "replay"]

#: Arrival patterns :func:`build_trace` understands.
_PATTERNS = ("steady", "diurnal", "bursty")


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic shape in a generated trace."""

    name: str
    #: ``steady``, ``diurnal`` or ``bursty``.
    pattern: str = "steady"
    #: Mean request rate (requests/second of trace time).
    rate: float = 20.0
    #: Operand pairs per request.
    pairs_per_request: int = 4
    #: Operand bit width (operands are uniform in ``[0, modulus)``).
    bit_width: int = 64
    #: Modulus of this tenant's requests (``None`` = a per-tenant prime
    #: chosen deterministically from the seed, so different tenants hit
    #: different warm caches).
    modulus: Optional[int] = None
    #: SLO class name this tenant requests (``None`` = router default).
    slo: Optional[str] = None

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {_PATTERNS}, got {self.pattern!r}"
            )
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")
        if self.pairs_per_request < 1:
            raise ConfigurationError(
                f"pairs_per_request must be >= 1, got {self.pairs_per_request}"
            )

    def rate_at(self, at_s: float, duration_s: float) -> float:
        """The instantaneous arrival rate at trace offset ``at_s``."""
        if self.pattern == "steady":
            return self.rate
        phase = (at_s / duration_s) if duration_s > 0 else 0.0
        if self.pattern == "diurnal":
            # One full day over the trace: peak at mid-trace, trough at
            # the edges, mean equal to the configured rate.
            return self.rate * (1.0 - math.cos(2 * math.pi * phase))
        # bursty: 25% duty cycle at 4x rate (same mean).
        return self.rate * 4.0 if (phase * 8) % 2 < 0.5 else 0.0


@dataclass(frozen=True)
class TraceEvent:
    """One request in a generated trace."""

    #: Trace-time offset the request fires at, seconds.
    at_s: float
    tenant: str
    #: Operand pairs (the request payload).
    pairs: Tuple[Tuple[int, int], ...]
    modulus: int
    #: SLO class name (``None`` = router default).
    slo: Optional[str] = None


def _tenant_modulus(profile: TenantProfile, rng: random.Random) -> int:
    """This tenant's modulus: configured, or a seeded odd number.

    An odd modulus is all the arithmetic requires; primality is not
    needed for modular multiplication, and skipping the search keeps
    trace generation fast and exactly reproducible.
    """
    if profile.modulus is not None:
        return profile.modulus
    return rng.getrandbits(profile.bit_width) | (1 << (profile.bit_width - 1)) | 1


def build_trace(
    profiles: Sequence[TenantProfile],
    duration_s: float = 2.0,
    seed: int = 0,
) -> List[TraceEvent]:
    """A deterministic multi-tenant arrival trace, sorted by time.

    Arrivals are thinned non-homogeneous Poisson: candidates are drawn
    at each profile's peak rate and kept with probability
    ``rate_at(t) / peak``, which realizes the diurnal/bursty envelopes
    exactly without time-stepping.
    """
    if duration_s <= 0:
        raise ConfigurationError(
            f"duration_s must be positive, got {duration_s}"
        )
    if not profiles:
        raise ConfigurationError("build_trace needs at least one profile")
    events: List[TraceEvent] = []
    for index, profile in enumerate(profiles):
        rng = random.Random((seed, index, profile.name).__repr__())
        modulus = _tenant_modulus(profile, rng)
        peak = profile.rate * 4.0  # bursty's on-phase is the max envelope
        at_s = 0.0
        while True:
            at_s += rng.expovariate(peak)
            if at_s >= duration_s:
                break
            if rng.random() * peak > profile.rate_at(at_s, duration_s):
                continue
            pairs = tuple(
                (rng.randrange(modulus), rng.randrange(modulus))
                for _ in range(profile.pairs_per_request)
            )
            events.append(
                TraceEvent(
                    at_s=at_s,
                    tenant=profile.name,
                    pairs=pairs,
                    modulus=modulus,
                    slo=profile.slo,
                )
            )
    events.sort(key=lambda event: (event.at_s, event.tenant))
    return events


@dataclass
class _Outcome:
    """Mutable tally shared by the per-event replay tasks."""

    sent: int = 0
    completed: int = 0
    rejected: int = 0
    deadline_misses: int = 0
    failed: int = 0
    mismatches: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    per_tenant: Dict[str, int] = field(default_factory=dict)


async def replay(
    host: str,
    port: int,
    trace: Sequence[TraceEvent],
    time_scale: float = 1.0,
    verify: bool = True,
    wire: int = 2,
) -> Dict[str, object]:
    """Fire a trace at a router and report what came back.

    Every event is awaited to *some* outcome — products, a structured
    error, or a connection failure — so ``lost`` (sent minus answered)
    is an honest count of silently dropped requests, the number the
    node-kill acceptance criterion is judged by.  ``time_scale`` < 1
    compresses trace time (a 10 s trace replays in 1 s at 0.1).
    ``wire`` is the highest protocol version the clients advertise (the
    router may still negotiate down; see
    :func:`repro.cluster.protocol.negotiate_wire`).
    """
    if time_scale <= 0:
        raise ConfigurationError(
            f"time_scale must be positive, got {time_scale}"
        )
    tenants = sorted({event.tenant for event in trace})
    clients: Dict[str, ClusterClient] = {}
    outcome = _Outcome()

    async def _fire(event: TraceEvent) -> None:
        client = clients[event.tenant]
        outcome.sent += 1
        try:
            response = await client.multiply_batch(
                event.pairs, modulus=event.modulus, slo=event.slo
            )
        except AdmissionError:
            outcome.rejected += 1
            return
        except DeadlineError:
            outcome.deadline_misses += 1
            return
        except ReproError:
            outcome.failed += 1
            return
        outcome.completed += 1
        outcome.per_tenant[event.tenant] = (
            outcome.per_tenant.get(event.tenant, 0) + 1
        )
        outcome.latency.record(response.router_latency_ms / 1e3)
        if verify:
            expected = tuple(
                (a * b) % event.modulus for a, b in event.pairs
            )
            if response.values != expected:
                outcome.mismatches += 1

    try:
        for tenant in tenants:
            clients[tenant] = await ClusterClient(
                host, port, tenant=tenant, wire=wire
            ).connect()
        loop = asyncio.get_running_loop()
        started = loop.time()
        tasks: List[asyncio.Task] = []
        for event in trace:
            delay = event.at_s * time_scale - (loop.time() - started)
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(loop.create_task(_fire(event)))
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        stats: Dict[str, object] = {}
        try:
            stats = await clients[tenants[0]].stats() if tenants else {}
        except ReproError:
            pass
    finally:
        for client in clients.values():
            await client.close()

    answered = (
        outcome.completed
        + outcome.rejected
        + outcome.deadline_misses
        + outcome.failed
    )
    return {
        "kind": "cluster-loadtest",
        "events": len(trace),
        "tenants": tenants,
        "sent": outcome.sent,
        "completed": outcome.completed,
        "rejected": outcome.rejected,
        "deadline_misses": outcome.deadline_misses,
        "failed": outcome.failed,
        "lost": outcome.sent - answered,
        "mismatches": outcome.mismatches,
        "verified": verify,
        "wire": wire,
        "latency": outcome.latency.as_dict(),
        "per_tenant_completed": dict(sorted(outcome.per_tenant.items())),
        "cluster": stats,
    }
