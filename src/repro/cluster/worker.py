"""A cluster worker node: one serving :class:`Server` behind a socket.

A :class:`WorkerNode` dials the router, joins, receives the fleet's
:class:`~repro.engine.EngineSpec` in the welcome frame and builds its
serving stack from it — every node runs an identical engine, which is
what makes cross-node re-dispatch bit-identical.  Job frames are fed to
the node's :class:`~repro.service.server.Server` (inline executor by
default; ``pool_workers > 0`` puts a process pool under it) with the
tenant, priority and deadline the router resolved from the request's SLO
class, so the fleet's SLO policy rides the serving layer's existing
admission control and deadline-aware batching.

Failures are answers, not silences: an exception from the server becomes
an ``error`` frame carrying the exception class name and a ``retryable``
flag — :class:`~repro.errors.AdmissionError` (this node's queue is full)
is retryable, so the router re-places the job on another replica instead
of bouncing the overload to the client.

A heartbeat task piggybacks ``Server.metrics_summary()`` on each beat,
which is how :class:`~repro.cluster.metrics.ClusterMetrics` aggregates
per-node shard metrics through the router.  :meth:`WorkerNode.drain`
implements graceful leave: announce ``leave``, finish in-flight work,
wait for the router's ``bye``, stop the server.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    CoalescingSender,
    Connection,
    PackedInts,
    negotiate_wire,
)
from repro.engine import EngineSpec
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ProtocolError,
    ReproError,
)
from repro.service import Server, ServerConfig
from repro.workloads import WorkloadGraph

__all__ = ["WorkerConfig", "WorkerNode", "run_worker"]


@dataclass(frozen=True)
class WorkerConfig:
    """Tunables of one worker node."""

    #: Node name in the fleet (defaults to ``worker-<pid>``).
    name: Optional[str] = None
    #: Process-pool shards under this node's server (0 = inline
    #: execution on the node's event loop — the default, one process
    #: per node, which is the fleet's unit of parallelism).
    pool_workers: int = 0
    #: Admission cap of this node's server (queued + executing).
    max_pending: int = 4096
    #: Per-dispatch batch cap of this node's server.
    max_batch: int = 64
    #: Batching window of this node's server, milliseconds.
    batch_window_ms: float = 1.0
    #: Frame size limit (must match the router's).
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: Highest wire protocol version this node advertises in its join
    #: (2 = binary codec; 1 pins the node to the JSON codec).  The
    #: router's welcome answers with the negotiated version.
    wire: int = 2

    def __post_init__(self) -> None:
        if self.pool_workers < 0:
            raise ConfigurationError(
                f"pool_workers must be >= 0, got {self.pool_workers}"
            )
        if self.wire not in (1, 2):
            raise ConfigurationError(f"wire must be 1 or 2, got {self.wire}")


class WorkerNode:
    """One fleet node: joins a router, serves jobs, heartbeats.

    Typical lifecycle (the CLI's ``repro cluster worker`` does this)::

        node = WorkerNode("127.0.0.1", router_port)
        await node.start()          # join + build the server
        await node.wait()           # serve until bye/shutdown
        await node.stop()
    """

    def __init__(
        self,
        host: str,
        port: int,
        config: Optional[WorkerConfig] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.config = config or WorkerConfig()
        self.name = self.config.name or f"worker-{os.getpid()}"
        self.server: Optional[Server] = None
        self._connection: Optional[Connection] = None
        #: Negotiated wire version (valid after :meth:`start`).
        self.wire: int = 1
        self._sender: Optional[CoalescingSender] = None
        self._heartbeat_interval_s = 1.0
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._jobs: Set[asyncio.Task] = set()
        self._stopped = asyncio.Event()
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "WorkerNode":
        """Dial the router, join, build the engine the welcome names."""
        if self._connection is not None:
            return self
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._connection = Connection(
            reader, writer, max_frame_bytes=self.config.max_frame_bytes
        )
        await self._connection.send(
            {"type": "join", "node": self.name, "wire": self.config.wire}
        )
        welcome = await self._connection.receive()
        if welcome is not None and welcome["type"] == "error":
            raise ProtocolError(
                str(welcome.get("message", "router rejected the join"))
            )
        if welcome is None or welcome["type"] != "welcome":
            got = None if welcome is None else welcome["type"]
            raise ProtocolError(
                f"router answered join with {got!r}, expected 'welcome'"
            )
        spec = EngineSpec.from_dict(dict(welcome["engine_spec"]))  # type: ignore[arg-type]
        self._heartbeat_interval_s = float(
            welcome.get("heartbeat_interval_s", 1.0)  # type: ignore[arg-type]
        )
        # The router's welcome names the negotiated version; switch codecs
        # *before* reading any further frame — the router upgrades its end
        # right after writing the welcome, so this is the one deterministic
        # stream position both sides agree on.
        self.wire = negotiate_wire(welcome.get("wire"), self.config.wire)
        self._connection.upgrade(self.wire)
        self._sender = CoalescingSender(self._connection)
        self.server = Server(
            engine=spec.build(),
            config=ServerConfig(
                max_pending=self.config.max_pending,
                max_batch=self.config.max_batch,
                batch_window_ms=self.config.batch_window_ms,
            ),
            workers=self.config.pool_workers or None,
        )
        await self.server.start()
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._drained = asyncio.Event()
        self._reader_task = loop.create_task(self._read_loop())
        self._heartbeat_task = loop.create_task(self._heartbeat_loop())
        return self

    async def wait(self) -> None:
        """Block until the router releases this node (bye/shutdown/EOF)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Tear the node down (idempotent; does not wait for drain)."""
        self._stopped.set()
        for task in (self._heartbeat_task, self._reader_task):
            if task is not None:
                task.cancel()
        for task in (self._heartbeat_task, self._reader_task):
            if task is not None:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._heartbeat_task = self._reader_task = None
        if self._jobs:
            await asyncio.gather(*list(self._jobs), return_exceptions=True)
        if self._sender is not None:
            await self._sender.drain()
            self._sender.close()
            self._sender = None
        if self._connection is not None:
            await self._connection.close()
            self._connection = None
        if self.server is not None:
            await self.server.stop(drain=False)
            self.server = None

    async def drain(self, timeout_s: float = 30.0) -> None:
        """Graceful leave: finish in-flight work, wait for ``bye``."""
        if self._connection is None:
            return
        await self._connection.send({"type": "leave", "node": self.name})
        try:
            await asyncio.wait_for(self._drained.wait(), timeout_s)
        except asyncio.TimeoutError:
            pass
        await self.stop()

    async def __aenter__(self) -> "WorkerNode":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        assert self._connection is not None
        connection = self._connection
        while True:
            try:
                message = await connection.receive()
            except ProtocolError:
                # A malformed frame *from the router* would be a bug,
                # not traffic; skip it and keep serving.
                continue
            except (ConnectionError, OSError):
                break
            if message is None:
                break
            kind = message["type"]
            if kind == "job":
                self._spawn_job(message)
            elif kind == "jobs":
                # Coalesced multi-job frame (wire v2): each entry is a
                # complete job message; fan them out exactly as if they
                # had arrived one frame apiece.
                for entry in message.get("jobs") or ():
                    if isinstance(entry, dict):
                        self._spawn_job(entry)
            elif kind == "bye":
                self._drained.set()
                break
            elif kind == "shutdown":
                break
            elif kind == "error":
                continue  # router rejected one of our frames; nothing to do
        self._stopped.set()
        self._drained.set()

    def _spawn_job(self, message: Dict[str, object]) -> None:
        task = asyncio.get_running_loop().create_task(self._run_job(message))
        self._jobs.add(task)
        task.add_done_callback(self._jobs.discard)

    async def _run_job(self, message: Dict[str, object]) -> None:
        """Execute one placed job on the node's server, answer the router."""
        assert self.server is not None and self._connection is not None
        job_id = message.get("id")
        try:
            kind = message["kind"]
            modulus = int(message["modulus"])  # type: ignore[arg-type]
            tenant = str(message.get("tenant", "default"))
            priority = int(message.get("priority", 0))  # type: ignore[arg-type]
            deadline_ms = message.get("deadline_ms")
            deadline = None if deadline_ms is None else float(deadline_ms)  # type: ignore[arg-type]
            if kind == "pairs":
                payload = message["payload"]
                pairs = (
                    payload.topairs()
                    if isinstance(payload, PackedInts)
                    else [(int(a), int(b)) for a, b in payload]  # type: ignore[union-attr]
                )
                response = await self.server.multiply_batch(
                    pairs,
                    modulus=modulus,
                    tenant=tenant,
                    priority=priority,
                    deadline_ms=deadline,
                )
            elif kind == "graph":
                graph = WorkloadGraph.from_payload(dict(message["payload"]))  # type: ignore[arg-type]
                response = await self.server.submit_graph(
                    graph,
                    modulus=modulus,
                    tenant=tenant,
                    priority=priority,
                    deadline_ms=deadline,
                )
            else:
                raise ProtocolError(f"unknown job kind {kind!r}")
        except ReproError as error:
            await self._answer(
                {
                    "type": "error",
                    "id": job_id,
                    "error": type(error).__name__,
                    "message": str(error),
                    # A full queue on *this* node is the router's cue to
                    # try another replica, not the client's problem.
                    "retryable": isinstance(error, AdmissionError),
                }
            )
            return
        result = {
            "type": "result",
            "id": job_id,
            "values": [int(v) for v in response.values],
            "kind": response.kind,
            "backend": response.backend,
            "modulus": response.modulus,
            "batched_pairs": response.batched_pairs,
            "modeled_cycles": response.modeled_cycles,
            "latency_ms": response.latency_ms,
            "queue_ms": response.queue_ms,
        }
        # Results ride the coalescing sender so answers completing within
        # one flush window travel as a single multi-result frame (v2).
        if self._sender is not None and not self._sender.broken:
            self._sender.enqueue(result)
        else:
            await self._answer(result)

    async def _answer(self, message: Dict[str, object]) -> None:
        if self._connection is None:
            return
        try:
            await self._connection.send(message)
        except (ConnectionError, OSError):  # pragma: no cover - router gone
            self._stopped.set()

    async def _heartbeat_loop(self) -> None:
        """Beat liveness + this node's full serving metrics snapshot."""
        while not self._stopped.is_set():
            await asyncio.sleep(self._heartbeat_interval_s)
            if self.server is None:
                continue
            await self._answer(
                {
                    "type": "heartbeat",
                    "node": self.name,
                    "metrics": self.server.metrics_summary(),
                }
            )

    def __repr__(self) -> str:
        return f"WorkerNode(name={self.name!r}, router={self.host}:{self.port})"


def run_worker(
    host: str,
    port: int,
    name: Optional[str] = None,
    pool_workers: int = 0,
    wire: int = 2,
) -> None:
    """Run one worker node to completion (the sync CLI/subprocess entry).

    Returns when the router says ``bye``/``shutdown`` or the connection
    drops; crashes (SIGKILL) are the router's failure-detection problem.
    """

    async def _serve() -> None:
        node = WorkerNode(
            host,
            port,
            WorkerConfig(name=name, pool_workers=pool_workers, wire=wire),
        )
        await node.start()
        try:
            await node.wait()
        finally:
            await node.stop()

    asyncio.run(_serve())
