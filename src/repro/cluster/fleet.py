"""A local fleet in one call: router in-process, workers as processes.

:class:`LocalFleet` is the cluster analogue of the pool's self-test
harness: it starts a :class:`~repro.cluster.router.Router` on an
ephemeral localhost port, spawns N worker nodes as *real* OS processes
(``multiprocessing`` spawn context — each with its own interpreter,
engine and caches, killable with real signals) and waits for them all to
join.  Tests, the ``repro cluster loadtest`` CLI verb and the cluster
benchmark all drive fleets through this class, so a "kill a node
mid-run" scenario is three lines, not a process-management project.

:func:`run_loadtest` is the one-call scenario on top: build a fleet,
generate a seeded multi-tenant trace, replay it — optionally SIGKILLing
a worker halfway through — and report the loadgen verdict plus the
router's rollup.  ``report["lost"] == 0`` across a kill is the
acceptance bar for the fleet's failure handling.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time
from typing import Dict, List, Optional, Sequence

from repro.cluster.loadgen import TenantProfile, build_trace, replay
from repro.cluster.router import Router, RouterConfig
from repro.cluster.slo import SloCatalog
from repro.engine import EngineSpec
from repro.errors import ConfigurationError, ServiceError

__all__ = ["LocalFleet", "run_loadtest"]


def _fleet_worker_main(
    host: str, port: int, name: str, pool_workers: int, wire: int = 2
) -> None:
    """Entry point of one spawned worker process (module-level so the
    spawn context can pickle it)."""
    from repro.cluster.worker import run_worker

    run_worker(host, port, name=name, pool_workers=pool_workers, wire=wire)


class LocalFleet:
    """A router plus N killable worker processes on localhost.

    ::

        async with LocalFleet(workers=2) as fleet:
            # fleet.port is the router port clients dial
            fleet.kill_worker(0)          # SIGKILL, mid-anything
            await fleet.wait_for_nodes(1) # router noticed
    """

    def __init__(
        self,
        spec: Optional[EngineSpec] = None,
        workers: int = 2,
        router_config: Optional[RouterConfig] = None,
        slo_catalog: Optional[SloCatalog] = None,
        pool_workers: int = 0,
        wire: int = 2,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if wire not in (1, 2):
            raise ConfigurationError(f"wire must be 1 or 2, got {wire}")
        self.spec = spec or EngineSpec()
        self.router = Router(
            self.spec, config=router_config, slo_catalog=slo_catalog
        )
        self.workers = workers
        self.pool_workers = pool_workers
        #: Wire version the spawned workers advertise (the router's own
        #: cap lives in ``router_config.wire``).
        self.wire = wire
        self._context = multiprocessing.get_context("spawn")
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._next_worker = 0

    @property
    def port(self) -> int:
        """The router's bound port (valid after :meth:`start`)."""
        return self.router.port

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, join_timeout_s: float = 30.0) -> "LocalFleet":
        """Start the router, spawn the workers, wait until all joined."""
        await self.router.start()
        for _ in range(self.workers):
            self.spawn_worker()
        await self.wait_for_nodes(self.workers, timeout_s=join_timeout_s)
        return self

    async def close(self) -> None:
        """Shut the router down and reap every worker process."""
        await self.router.close()
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck child
                process.kill()
                process.join(timeout=5.0)
        self._processes.clear()

    async def __aenter__(self) -> "LocalFleet":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # membership control
    # ------------------------------------------------------------------ #
    def spawn_worker(
        self, name: Optional[str] = None, wire: Optional[int] = None
    ) -> str:
        """Start one more worker process; returns its node name."""
        index = self._next_worker
        self._next_worker += 1
        node_name = name or f"fleet-{index}"
        process = self._context.Process(
            target=_fleet_worker_main,
            args=(
                self.router.config.host,
                self.router.port,
                node_name,
                self.pool_workers,
                self.wire if wire is None else wire,
            ),
            daemon=True,
            name=node_name,
        )
        process.start()
        self._processes.append(process)
        return node_name

    def kill_worker(self, index: int = 0, name: Optional[str] = None) -> int:
        """SIGKILL a *live* worker process; returns its pid.

        SIGKILL, not terminate: the point is a node that vanishes
        without a goodbye, the failure mode the router must detect and
        recover from.  ``name`` targets a specific node (processes are
        named after their nodes); otherwise ``index`` picks among the
        live processes.
        """
        live = [p for p in self._processes if p.is_alive()]
        if not live:
            raise ServiceError("no live worker processes to kill")
        if name is not None:
            matches = [p for p in live if p.name == name]
            if not matches:
                raise ServiceError(
                    f"no live worker process named {name!r} "
                    f"(live: {[p.name for p in live]})"
                )
            process = matches[0]
        else:
            process = live[index % len(live)]
        assert process.pid is not None
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10.0)
        return process.pid

    async def wait_for_nodes(
        self, count: int, timeout_s: float = 30.0
    ) -> None:
        """Block until the router sees exactly ``count`` live nodes."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if len(self.router.live_nodes) == count:
                return
            await asyncio.sleep(0.01)
        raise ServiceError(
            f"fleet did not reach {count} live nodes within {timeout_s}s "
            f"(live: {self.router.live_nodes})"
        )

    def __repr__(self) -> str:
        return (
            f"LocalFleet(workers={self.workers}, port={self.router.port}, "
            f"live={len(self.router.live_nodes)})"
        )


#: The default tenant mix of :func:`run_loadtest`: one of each arrival
#: pattern, mapped onto the three default SLO tiers.
_DEFAULT_MIX = (
    ("steady-gold", "steady", "gold"),
    ("diurnal-silver", "diurnal", "silver"),
    ("bursty-be", "bursty", None),
)


async def run_loadtest(
    workers: int = 2,
    duration_s: float = 2.0,
    rate: float = 30.0,
    seed: int = 0,
    time_scale: float = 1.0,
    pairs_per_request: int = 4,
    bit_width: int = 64,
    kill_worker: bool = False,
    spec: Optional[EngineSpec] = None,
    profiles: Optional[Sequence[TenantProfile]] = None,
    router_config: Optional[RouterConfig] = None,
    quick: bool = False,
    wire: int = 2,
) -> Dict[str, object]:
    """One full cluster load test: fleet up, trace in, verdict out.

    ``kill_worker=True`` SIGKILLs one worker halfway through the replay;
    a healthy fleet still reports ``lost == 0`` and ``mismatches == 0``
    because every orphaned job re-dispatches to a survivor and recomputes
    bit-identically.  ``quick=True`` shrinks the trace for smoke tests
    (the CI cluster smoke runs exactly this).  ``wire=1`` pins the whole
    path — router cap, worker joins and loadgen clients — to the JSON
    codec; ``wire=2`` (default) negotiates the binary codec end to end.
    """
    if wire not in (1, 2):
        raise ConfigurationError(f"wire must be 1 or 2, got {wire}")
    if router_config is None:
        router_config = RouterConfig(wire=wire)
    if quick:
        duration_s = min(duration_s, 1.0)
        rate = min(rate, 15.0)
    if profiles is None:
        profiles = [
            TenantProfile(
                name=name,
                pattern=pattern,
                rate=rate,
                pairs_per_request=pairs_per_request,
                bit_width=bit_width,
                slo=slo,
            )
            for name, pattern, slo in _DEFAULT_MIX
        ]
    trace = build_trace(profiles, duration_s=duration_s, seed=seed)
    started = time.monotonic()
    async with LocalFleet(
        spec=spec, workers=workers, router_config=router_config, wire=wire
    ) as fleet:
        kill_task: Optional[asyncio.Task] = None
        killed_pid: Optional[int] = None

        async def _kill_midway() -> None:
            nonlocal killed_pid
            await asyncio.sleep(duration_s * time_scale / 2)
            killed_pid = fleet.kill_worker(0)

        if kill_worker:
            if workers < 2:
                raise ConfigurationError(
                    "kill_worker needs at least 2 workers to leave a survivor"
                )
            kill_task = asyncio.get_running_loop().create_task(_kill_midway())
        report = await replay(
            fleet.router.config.host,
            fleet.port,
            trace,
            time_scale=time_scale,
            wire=wire,
        )
        if kill_task is not None:
            await kill_task
        report["cluster"] = fleet.router.describe()
    report["workers"] = workers
    report["kill_worker"] = kill_worker
    report["killed_pid"] = killed_pid
    report["seed"] = seed
    report["duration_s"] = duration_s
    report["wall_seconds"] = time.monotonic() - started
    return report
