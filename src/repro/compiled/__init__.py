"""Per-modulus codegen kernels: the paper's specialization, compiled.

ModSRAM's claim is that modular multiplication gets cheap once the
per-modulus tables are precomputed and resident next to the datapath.
This package is the software counterpart — a tiny kernel *compiler*
that, per modulus, derives the Barrett/Montgomery reduction constants
and the Table 2 overflow LUT once, emits specialized Python source for
a flattened branch-free batch loop, compiles it, and caches the result
process-wide:

* :mod:`repro.compiled.codegen` — constants derivation + source
  emission + ``compile()``;
* :mod:`repro.compiled.kernels` — the kernel objects and the optional
  ``REPRO_COMPILED_NUMPY`` vectorized path (exact int64, moduli
  ≤ 31 bits, graceful fallback);
* :mod:`repro.compiled.cache` — the thread-safe one-kernel-per-modulus
  cache;
* :mod:`repro.compiled.multiplier` — the registered ``compiled``
  multiplier and Engine backend adapter.

The ``compiled`` backend is parity-locked bit-identical to
``r4csa-lut`` (see ``tests/compiled/``) and is the default shard engine
of the serving pool and the cluster fleet.  See ``docs/compiled.md``.
"""

from repro.compiled.cache import (
    cached_kernel_keys,
    clear_kernel_cache,
    get_kernel,
    kernel_cache_stats,
)
from repro.compiled.codegen import (
    STRATEGIES,
    ReductionConstants,
    derive_constants,
    generate_source,
)
from repro.compiled.kernels import (
    NUMPY_ENV_VAR,
    CompiledKernel,
    NumpyState,
    numpy_state,
)
from repro.compiled.multiplier import CompiledBackend, CompiledMultiplier

__all__ = [
    "CompiledMultiplier",
    "CompiledBackend",
    "CompiledKernel",
    "ReductionConstants",
    "derive_constants",
    "generate_source",
    "get_kernel",
    "clear_kernel_cache",
    "kernel_cache_stats",
    "cached_kernel_keys",
    "numpy_state",
    "NumpyState",
]
