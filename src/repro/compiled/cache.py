"""Process-wide cache of compiled kernels, one per (modulus, strategy).

Kernel compilation is cheap (one :func:`compile` of a ~20-line module)
but not free, and the constants derivation includes a big-int division
per modulus — so kernels are built exactly once per process and shared.
The cache is the compiled subsystem's analogue of the engine's context
cache: the sharded pool routes a modulus to a stable home shard
precisely so caches like this one stay hot.

Thread safety: lookups are lock-free (a dict read of an existing key),
builds take the module lock and re-check under it, so two threads
racing the same cold modulus compile one kernel, not two.  This is the
same contract :meth:`ModularMultiplier.prepare` documents.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.compiled.codegen import derive_constants
from repro.compiled.kernels import CompiledKernel, numpy_state

__all__ = [
    "get_kernel",
    "clear_kernel_cache",
    "kernel_cache_stats",
    "cached_kernel_keys",
]

#: Cache key: (modulus, strategy, numpy path active for this kernel).
_Key = Tuple[int, str, bool]

_LOCK = threading.Lock()
_KERNELS: Dict[_Key, CompiledKernel] = {}
_BUILDS = 0
_HITS = 0


def _resolve_key(
    modulus: int, strategy: str, use_numpy: Optional[bool]
) -> _Key:
    state = numpy_state(use_numpy)
    return (modulus, strategy, state.requested and state.available)


def get_kernel(
    modulus: int,
    strategy: str = "barrett",
    use_numpy: Optional[bool] = None,
) -> CompiledKernel:
    """The process-wide kernel for ``modulus``, built on first request.

    Idempotent and thread-safe: concurrent callers for the same cold
    modulus serialize on the build lock and all receive the one kernel
    instance that was compiled.
    """
    global _BUILDS, _HITS
    key = _resolve_key(modulus, strategy, use_numpy)
    kernel = _KERNELS.get(key)
    if kernel is not None:
        _HITS += 1
        return kernel
    with _LOCK:
        kernel = _KERNELS.get(key)
        if kernel is not None:
            _HITS += 1
            return kernel
        kernel = CompiledKernel(
            derive_constants(modulus), strategy=strategy, use_numpy=use_numpy
        )
        _KERNELS[key] = kernel
        _BUILDS += 1
        return kernel


def clear_kernel_cache() -> int:
    """Drop every cached kernel; returns how many were resident."""
    global _BUILDS, _HITS
    with _LOCK:
        count = len(_KERNELS)
        _KERNELS.clear()
        _BUILDS = 0
        _HITS = 0
        return count


def kernel_cache_stats() -> Dict[str, int]:
    """Build/hit counters plus residency, for diagnostics and tests."""
    with _LOCK:
        return {
            "resident": len(_KERNELS),
            "builds": _BUILDS,
            "hits": _HITS,
        }


def cached_kernel_keys() -> List[Tuple[int, str, bool]]:
    """The (modulus, strategy, numpy) keys currently resident, sorted."""
    with _LOCK:
        return sorted(_KERNELS)
