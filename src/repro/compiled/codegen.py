"""Per-modulus kernel codegen: constants in, Python source out.

The paper's core argument (conf_dac_KuZSSWZLR024) is that modular
multiplication gets cheap once everything derivable from the modulus is
precomputed and *baked into the datapath* — ModSRAM stores the radix-4
and overflow LUTs in SRAM word lines so the main loop never recomputes
them.  This module is the software analogue of that specialization: for
one ``(modulus, bit_width)`` it derives every reduction constant once

* the Barrett reciprocal ``mu = floor(4**n / p)`` and shift ``2 n``,
* Montgomery constants (``R``, ``R^2 mod p``, ``-p^-1 mod R``) for odd
  moduli,
* the paper's Table 2 overflow LUT (``k * 2**(n+1) mod p``),

and then *emits specialized Python source* for a flattened batch loop:
no per-element branching (the single Barrett correction is computed
branch-free), every constant bound as a local default argument, operand
pairs in, products out.  The source is compiled with :func:`compile` /
``exec`` into a real code object, so the hot loop runs constant-folded
bytecode instead of attribute lookups and dict probes.

Why Barrett carries the generated loop: for Python-int operands the
interleaved carry-save recurrence of Algorithm 3 costs ``O(n/2)``
big-int operations per product, while Barrett costs three multiplies
and a shift *total* — the per-modulus specialization is the same idea,
the schedule is just the one that is optimal for this substrate.  The
correction is provably single-step: with ``mu = floor(4**n / p)`` and
``x < p**2 <= 4**n``, the estimate ``q = (x * mu) >> 2n`` satisfies
``q_true - 1 <= q <= q_true``, so ``r = x - q * p`` lies in
``[0, 2p)`` and one conditional subtraction — computed as the
branch-free ``r -= p & -(r >= p)`` — lands the result in ``[0, p)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.luts import build_overflow_lut
from repro.errors import ConfigurationError, ModulusError

__all__ = [
    "STRATEGIES",
    "ReductionConstants",
    "derive_constants",
    "generate_source",
    "compile_kernel_namespace",
    "kernel_filename",
]

#: Loop bodies the generator knows how to emit. ``"barrett"`` is the
#: default (precomputed reciprocal, branch-free correction);
#: ``"native"`` emits ``a * b % p`` and exists as the honesty baseline —
#: the generated-source machinery minus the clever reduction.
STRATEGIES: Tuple[str, ...] = ("barrett", "native")

#: Overflow-LUT entries derived per modulus (matches
#: :data:`repro.core.algorithms.r4csa_lut.OVERFLOW_LUT_ENTRIES`).
_OVERFLOW_ENTRIES = 16


@dataclass(frozen=True)
class ReductionConstants:
    """Everything derivable from ``(modulus, bit_width)`` alone.

    One instance is computed per modulus and then shared by every kernel,
    mirroring the engine-context invariant that per-modulus precomputation
    happens exactly once.  The Montgomery constants are ``None`` for even
    moduli (Montgomery needs ``gcd(R, p) = 1``); the Barrett constants and
    the overflow LUT exist for every valid modulus.
    """

    #: The modulus ``p``.
    modulus: int
    #: ``p.bit_length()`` — the ``n`` every other width derives from.
    bit_width: int
    #: The paper's redundant-register width ``n + 1``.
    register_width: int
    #: ``floor(2**(2n) / p)`` — the Barrett reciprocal.
    barrett_mu: int
    #: ``2 n`` — the Barrett shift.
    barrett_shift: int
    #: Montgomery radix ``R = 2**n`` (``None`` for even moduli).
    montgomery_r: Optional[int]
    #: ``R**2 mod p`` — converts into Montgomery form (``None`` if even).
    montgomery_r2: Optional[int]
    #: ``-p**-1 mod R`` — the REDC folding constant (``None`` if even).
    montgomery_n_prime: Optional[int]
    #: Table 2: ``k * 2**(n+1) mod p`` for every overflow field value.
    overflow_lut: Tuple[int, ...]

    def describe(self) -> Dict[str, object]:
        """Summary metadata (sizes, not values) for ``repro backends``."""
        return {
            "bit_width": self.bit_width,
            "register_width": self.register_width,
            "barrett_shift": self.barrett_shift,
            "barrett_mu_bits": self.barrett_mu.bit_length(),
            "montgomery": self.montgomery_n_prime is not None,
            "overflow_lut_entries": len(self.overflow_lut),
        }


def derive_constants(modulus: int) -> ReductionConstants:
    """Derive every per-modulus reduction constant, exactly once.

    Raises :class:`~repro.errors.ModulusError` for ``modulus <= 2`` (the
    same precondition every :class:`ModularMultiplier` enforces).
    """
    if modulus <= 2:
        raise ModulusError(f"modulus must be greater than 2, got {modulus}")
    bit_width = modulus.bit_length()
    register_width = bit_width + 1
    barrett_shift = 2 * bit_width
    barrett_mu = (1 << barrett_shift) // modulus
    montgomery_r = montgomery_r2 = montgomery_n_prime = None
    if modulus % 2 == 1:
        montgomery_r = 1 << bit_width
        montgomery_r2 = (montgomery_r * montgomery_r) % modulus
        montgomery_n_prime = (-pow(modulus, -1, montgomery_r)) % montgomery_r
    overflow = build_overflow_lut(
        modulus, register_width, entry_count=_OVERFLOW_ENTRIES
    )
    return ReductionConstants(
        modulus=modulus,
        bit_width=bit_width,
        register_width=register_width,
        barrett_mu=barrett_mu,
        barrett_shift=barrett_shift,
        montgomery_r=montgomery_r,
        montgomery_r2=montgomery_r2,
        montgomery_n_prime=montgomery_n_prime,
        overflow_lut=overflow.entries,
    )


def _validate_strategy(strategy: str) -> None:
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown codegen strategy {strategy!r}; available: "
            f"{list(STRATEGIES)}"
        )


_BARRETT_TEMPLATE = '''\
"""Specialized kernel for p = {modulus:#x} ({bit_width} bits, barrett).

Generated by repro.compiled.codegen; constants are bound as default
arguments so the loop reads them as fast locals.  The correction
``r -= p & -(r >= p)`` is branch-free: the comparison yields 0 or 1,
whose negation masks the modulus to 0 or p.
"""


def multiply(a, b, _p={modulus}, _mu={mu}, _s={shift}):
    x = a * b
    q = (x * _mu) >> _s
    r = x - q * _p
    r -= _p & -(r >= _p)
    return r


def batch_multiply(pairs, _p={modulus}, _mu={mu}, _s={shift}):
    out = []
    _append = out.append
    for a, b in pairs:
        x = a * b
        q = (x * _mu) >> _s
        r = x - q * _p
        r -= _p & -(r >= _p)
        _append(r)
    return out
'''

_NATIVE_TEMPLATE = '''\
"""Specialized kernel for p = {modulus:#x} ({bit_width} bits, native).

Generated by repro.compiled.codegen; the interpreter's own big-int
division performs the reduction.  Kept as the honesty baseline for the
barrett strategy.
"""


def multiply(a, b, _p={modulus}):
    return a * b % _p


def batch_multiply(pairs, _p={modulus}):
    out = []
    _append = out.append
    for a, b in pairs:
        _append(a * b % _p)
    return out
'''


def generate_source(
    constants: ReductionConstants, strategy: str = "barrett"
) -> str:
    """Emit the specialized kernel module source for one modulus.

    The module defines two functions with identical semantics:
    ``multiply(a, b)`` for the scalar path and ``batch_multiply(pairs)``
    for the flattened batch loop (operand pairs in, product list out).
    Operands must already satisfy ``0 <= a, b < p`` — validation lives a
    layer up, exactly as it does for every other multiplier's
    ``_multiply``.
    """
    _validate_strategy(strategy)
    if strategy == "native":
        return _NATIVE_TEMPLATE.format(
            modulus=constants.modulus, bit_width=constants.bit_width
        )
    return _BARRETT_TEMPLATE.format(
        modulus=constants.modulus,
        bit_width=constants.bit_width,
        mu=constants.barrett_mu,
        shift=constants.barrett_shift,
    )


def kernel_filename(modulus: int, strategy: str) -> str:
    """The pseudo-filename tracebacks show for a generated kernel."""
    return f"<repro.compiled {strategy} p={modulus:#x}>"


def compile_kernel_namespace(
    constants: ReductionConstants, strategy: str = "barrett"
) -> Dict[str, object]:
    """Compile the generated source and return its executed namespace.

    The namespace holds the real function objects (``multiply``,
    ``batch_multiply``) plus ``__source__`` so callers can introspect
    exactly what was compiled.
    """
    source = generate_source(constants, strategy)
    code = compile(
        source, kernel_filename(constants.modulus, strategy), "exec"
    )
    namespace: Dict[str, object] = {"__builtins__": {}}
    exec(code, namespace)  # noqa: S102 - executing our own generated source
    namespace["__source__"] = source
    return namespace
