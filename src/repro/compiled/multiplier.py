"""The ``compiled`` multiplier and its Engine backend adapter.

:class:`CompiledMultiplier` plugs the generated kernels into the
:class:`~repro.core.algorithms.base.ModularMultiplier` interface, so the
``compiled`` backend rides every existing layer unchanged: the engine's
context cache, the serving pool's shard routing, the cluster's
EngineSpec round-trip.  It additionally implements the engine's
``_multiply_batch`` hook, which is where the flattened batch loop pays
off — one call per batch instead of one dispatch per element.

:class:`CompiledBackend` is the registry adapter; it decorates its
:class:`~repro.engine.backend.BackendInfo` with ``codegen`` metadata
(strategy, numpy feature-flag state) that ``repro backends`` displays.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiled.cache import get_kernel
from repro.compiled.codegen import STRATEGIES
from repro.compiled.kernels import (
    NUMPY_ENV_VAR,
    NUMPY_MAX_BITS,
    NUMPY_MIN_BATCH,
    CompiledKernel,
    numpy_state,
)
from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.engine.backend import MultiplierBackend
from repro.errors import ConfigurationError

__all__ = ["CompiledMultiplier", "CompiledBackend"]


@register_multiplier
class CompiledMultiplier(ModularMultiplier):
    """Per-modulus codegen kernels behind the multiplier interface.

    Each modulus gets a specialized, ``compile()``-d Barrett kernel from
    the process-wide cache; the instance keeps a depth-one reference to
    the active kernel (mirroring the single LUT residency of a ModSRAM
    macro) so repeated calls under one modulus skip even the cache probe.
    """

    name = "compiled"
    description = (
        "Per-modulus generated kernels: Barrett/Montgomery constants and "
        "the Table 2 overflow LUT derived once, baked into compiled "
        "branch-free batch loops (the paper's specialization argument, "
        "software-optimal schedule)."
    )
    direct_form = True

    def __init__(
        self, strategy: str = "barrett", use_numpy: Optional[bool] = None
    ) -> None:
        super().__init__()
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown codegen strategy {strategy!r}; available: "
                f"{list(STRATEGIES)}"
            )
        self.strategy = strategy
        self.use_numpy = use_numpy
        self._kernel: Optional[CompiledKernel] = None

    # ------------------------------------------------------------------ #
    # kernel residency
    # ------------------------------------------------------------------ #
    def kernel_for(self, modulus: int) -> CompiledKernel:
        """The (shared, cached) kernel specialized for ``modulus``."""
        kernel = self._kernel
        if kernel is None or kernel.modulus != modulus:
            kernel = get_kernel(
                modulus, strategy=self.strategy, use_numpy=self.use_numpy
            )
            self._kernel = kernel
            self.stats.precomputations += 1
        return kernel

    def prepare(self, modulus: int) -> None:
        """Compile (or fetch) the kernel eagerly; idempotent, thread-safe."""
        self.kernel_for(modulus)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def _multiply(self, a: int, b: int, modulus: int) -> int:
        return self.kernel_for(modulus).multiply(a, b)

    def _multiply_batch(
        self, pairs: Sequence[Tuple[int, int]], modulus: int
    ) -> List[int]:
        """The engine's batch hook: one kernel call for the whole batch.

        Operands are already validated by the caller (the same contract
        as ``_multiply``).
        """
        return self.kernel_for(modulus).multiply_batch(pairs)


class CompiledBackend(MultiplierBackend):
    """The ``compiled`` multiplier as an Engine backend with codegen info.

    Identical to a plain :class:`MultiplierBackend` at runtime; the
    difference is metadata — :attr:`info.codegen <BackendInfo.codegen>`
    records the emission strategy and the numpy feature-flag state so
    ``repro backends`` can show *how* this backend specializes, next to
    the fidelity tier column of the accelerator backends.
    """

    def __init__(
        self, strategy: str = "barrett", use_numpy: Optional[bool] = None
    ) -> None:
        super().__init__(
            "compiled",
            kind="software",
            strategy=strategy,
            use_numpy=use_numpy,
        )
        state = numpy_state(use_numpy)
        self.info = replace(
            self.info,
            codegen={
                "strategy": strategy,
                "constants": ["barrett", "montgomery", "overflow-lut"],
                "numpy_flag": NUMPY_ENV_VAR,
                "numpy_requested": state.requested,
                "numpy_available": state.available,
                "numpy_max_bits": NUMPY_MAX_BITS,
                "numpy_min_batch": NUMPY_MIN_BATCH,
            },
        )

    def codegen_summary(self) -> Dict[str, object]:
        """The ``codegen`` metadata dict (never ``None`` on this backend)."""
        return dict(self.info.codegen or {})
