"""Compiled kernel objects and the optional numpy limb path.

A :class:`CompiledKernel` wraps the functions :mod:`repro.compiled.codegen`
generated for one modulus: the scalar ``multiply``, the flattened
``batch_multiply`` loop, the constants they were specialized with and the
source they were compiled from.

The numpy path
--------------

``REPRO_COMPILED_NUMPY=1`` (or ``use_numpy=True`` on the multiplier /
:func:`~repro.compiled.cache.get_kernel`) opts a kernel into vectorized
batch evaluation.  The path activates only when **all** of the following
hold — otherwise the kernel silently falls back to the generated scalar
loop, so the flag degrades gracefully on hosts without numpy:

* numpy imports (``numpy_state().available``);
* the modulus fits :data:`NUMPY_MAX_BITS` (31) bits, so every product
  fits an int64 word exactly — wider moduli would need multi-limb
  arithmetic whose pack/unpack overhead erases the win for Python-int
  operands;
* the batch has at least :data:`NUMPY_MIN_BATCH` pairs (array
  construction has a fixed cost the vector win must amortize).

``REPRO_COMPILED_NUMPY=0`` force-disables the path even when a caller
passed ``use_numpy=True``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiled.codegen import (
    ReductionConstants,
    compile_kernel_namespace,
)

__all__ = [
    "CompiledKernel",
    "NumpyState",
    "numpy_state",
    "NUMPY_ENV_VAR",
    "NUMPY_MAX_BITS",
    "NUMPY_MIN_BATCH",
]

#: Environment feature flag for the vectorized batch path.
NUMPY_ENV_VAR = "REPRO_COMPILED_NUMPY"
#: Widest modulus the int64 path is exact for (products stay < 2**62).
NUMPY_MAX_BITS = 31
#: Smallest batch worth paying the array-construction cost for.
NUMPY_MIN_BATCH = 64

_NUMPY = None
_NUMPY_ERROR: Optional[str] = None
_NUMPY_PROBED = False


def _probe_numpy():
    global _NUMPY, _NUMPY_ERROR, _NUMPY_PROBED
    if not _NUMPY_PROBED:
        try:
            import numpy
        except Exception as exc:  # pragma: no cover - host without numpy
            _NUMPY, _NUMPY_ERROR = None, f"numpy unavailable: {exc}"
        else:
            _NUMPY, _NUMPY_ERROR = numpy, None
        _NUMPY_PROBED = True
    return _NUMPY


@dataclass(frozen=True)
class NumpyState:
    """Whether the vectorized path can run on this host, and why not."""

    #: numpy imported successfully.
    available: bool
    #: The feature flag's resolved value (env var or explicit override).
    requested: bool
    #: ``None`` when the path can activate, else the blocking reason.
    reason: Optional[str]


def _env_requested() -> Optional[bool]:
    raw = os.environ.get(NUMPY_ENV_VAR)
    if raw is None:
        return None
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


def numpy_state(use_numpy: Optional[bool] = None) -> NumpyState:
    """Resolve the feature flag against what the host can actually do.

    ``use_numpy`` overrides the environment flag unless the environment
    *force-disables* the path (``REPRO_COMPILED_NUMPY=0`` wins, so a
    deployment can switch the path off fleet-wide without code changes).
    """
    env = _env_requested()
    if env is False:
        requested = False
    elif use_numpy is not None:
        requested = use_numpy
    else:
        requested = bool(env)
    available = _probe_numpy() is not None
    reason = None
    if not requested:
        reason = "not requested (set REPRO_COMPILED_NUMPY=1)"
    elif not available:
        reason = _NUMPY_ERROR
    return NumpyState(available=available, requested=requested, reason=reason)


class CompiledKernel:
    """The compiled functions of one ``(modulus, strategy)`` pair.

    Instances are immutable once built and are shared process-wide through
    :mod:`repro.compiled.cache`, so they carry no per-call state — calling
    them from many threads is safe.
    """

    __slots__ = (
        "constants",
        "strategy",
        "source",
        "_scalar",
        "_batch",
        "numpy_eligible",
        "numpy_requested",
        "_numpy_mod",
    )

    def __init__(
        self,
        constants: ReductionConstants,
        strategy: str = "barrett",
        use_numpy: Optional[bool] = None,
    ) -> None:
        namespace = compile_kernel_namespace(constants, strategy)
        self.constants = constants
        self.strategy = strategy
        self.source: str = namespace["__source__"]
        self._scalar = namespace["multiply"]
        self._batch = namespace["batch_multiply"]
        state = numpy_state(use_numpy)
        self.numpy_requested = state.requested
        self.numpy_eligible = (
            state.requested
            and state.available
            and constants.bit_width <= NUMPY_MAX_BITS
        )
        self._numpy_mod = _probe_numpy() if self.numpy_eligible else None

    @property
    def modulus(self) -> int:
        """The modulus this kernel was specialized for."""
        return self.constants.modulus

    def multiply(self, a: int, b: int) -> int:
        """One product through the compiled scalar kernel."""
        return self._scalar(a, b)

    def multiply_batch(self, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        """All products of ``pairs`` through the flattened batch loop.

        Dispatches to the vectorized numpy path when this kernel is
        eligible and the batch is large enough to amortize the array
        round-trip; the result is bit-identical either way.
        """
        if self._numpy_mod is not None and len(pairs) >= NUMPY_MIN_BATCH:
            return self._numpy_batch(pairs)
        return self._batch(pairs)

    def _numpy_batch(self, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        # Exact in int64: both operands are < 2**31, so the product is
        # < 2**62 and never wraps before the remainder.
        np = self._numpy_mod
        array = np.asarray(pairs, dtype=np.int64)
        products = (array[:, 0] * array[:, 1]) % self.constants.modulus
        return products.tolist()

    def describe(self) -> Dict[str, object]:
        """Kernel metadata for diagnostics and ``repro backends --json``."""
        return {
            "modulus": self.constants.modulus,
            "strategy": self.strategy,
            "numpy_requested": self.numpy_requested,
            "numpy_eligible": self.numpy_eligible,
            "source_lines": self.source.count("\n"),
            **self.constants.describe(),
        }

    def __repr__(self) -> str:
        return (
            f"CompiledKernel(modulus={self.constants.modulus:#x}, "
            f"strategy={self.strategy!r}, numpy={self.numpy_eligible})"
        )
