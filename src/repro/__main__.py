"""``python -m repro`` — same interface as the ``repro`` console script."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
