"""Standard curve parameters.

The paper's §5.2 singles out two curves: secp256k1 (Bitcoin) and BN254
(pairing-friendly, used by Zcash-style ZKP systems); NIST P-256 is included
because the NIST recommendation (≥224-bit security) is the paper's
motivation for the 256-bit datapath.  Each entry carries the base-field
prime, the curve coefficients, the group order and the generator, plus — for
BN254 — the scalar field, whose high two-adicity is what makes the ZKP NTT
(Figure 7) possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ecc.curve import EllipticCurve
from repro.ecc.field import PrimeField
from repro.errors import CurveError

__all__ = ["CurveSpec", "CURVE_SPECS", "CURVES", "build_curve", "get_curve"]


@dataclass(frozen=True)
class CurveSpec:
    """Raw parameters of one named curve."""

    name: str
    field_modulus: int
    a: int
    b: int
    generator: Tuple[int, int]
    order: int
    #: Scalar field used by proof systems built over this curve (if any);
    #: for BN254 this is the NTT-friendly field of Figure 7.
    scalar_field_modulus: Optional[int] = None

    @property
    def bitwidth(self) -> int:
        """Bit length of the base-field prime."""
        return self.field_modulus.bit_length()


#: secp256k1: the Bitcoin curve, full 256-bit prime.
_SECP256K1 = CurveSpec(
    name="secp256k1",
    field_modulus=2**256 - 2**32 - 977,
    a=0,
    b=7,
    generator=(
        0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
        0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8,
    ),
    order=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141,
)

#: BN254 (alt_bn128) G1: the pairing curve used by Zcash-era ZKP systems.
_BN254 = CurveSpec(
    name="bn254",
    field_modulus=0x30644E72E131A029B85045B68181585D97816A916871CA8D3C208C16D87CFD47,
    a=0,
    b=3,
    generator=(1, 2),
    order=0x30644E72E131A029B85045B68181585D2833E84879B9709143E1F593F0000001,
    scalar_field_modulus=0x30644E72E131A029B85045B68181585D2833E84879B9709143E1F593F0000001,
)

#: NIST P-256: the curve behind the "at least 224 bits" recommendation.
_P256 = CurveSpec(
    name="p256",
    field_modulus=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    generator=(
        0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
        0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    ),
    order=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

#: Every curve the library knows about, keyed by name.
CURVE_SPECS: Dict[str, CurveSpec] = {
    spec.name: spec for spec in (_SECP256K1, _BN254, _P256)
}


def build_curve(spec: CurveSpec, field: Optional[PrimeField] = None) -> EllipticCurve:
    """Instantiate an :class:`EllipticCurve` from a spec.

    Passing an explicit ``field`` lets callers choose the multiplication
    backend (e.g. the cycle-level ModSRAM model) and share one operation
    counter across many curve operations.
    """
    if field is None:
        field = PrimeField(spec.field_modulus)
    elif field.modulus != spec.field_modulus:
        raise CurveError(
            f"field modulus {field.modulus:#x} does not match curve "
            f"{spec.name!r} ({spec.field_modulus:#x})"
        )
    return EllipticCurve(
        name=spec.name,
        field=field,
        a=spec.a,
        b=spec.b,
        generator=spec.generator,
        order=spec.order,
    )


def get_curve(name: str, field: Optional[PrimeField] = None) -> EllipticCurve:
    """Build a named curve (``"secp256k1"``, ``"bn254"`` or ``"p256"``)."""
    key = name.lower()
    if key not in CURVE_SPECS:
        raise CurveError(
            f"unknown curve {name!r}; available: {sorted(CURVE_SPECS)}"
        )
    return build_curve(CURVE_SPECS[key], field)


class _CurveRegistry:
    """Lazy mapping of curve name → spec with attribute-style access."""

    def __getitem__(self, name: str) -> CurveSpec:
        key = name.lower()
        if key not in CURVE_SPECS:
            raise CurveError(
                f"unknown curve {name!r}; available: {sorted(CURVE_SPECS)}"
            )
        return CURVE_SPECS[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in CURVE_SPECS

    def __iter__(self):
        return iter(CURVE_SPECS)

    def keys(self):
        """Available curve names."""
        return CURVE_SPECS.keys()


#: Mapping-style access to the curve specs (``CURVES["bn254"]``).
CURVES = _CurveRegistry()
