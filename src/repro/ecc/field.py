"""Prime fields with pluggable multiplication backends.

ECC is "composed of modular arithmetic, where modular multiplication takes
most of the processing time" — the whole point of ModSRAM.  The field layer
therefore routes every multiplication through a
:class:`repro.core.ModularMultiplier` backend, so the same elliptic-curve
code can run on the software oracle, on the R4CSA-LUT reference algorithm or
on the cycle-level ModSRAM model, and every operation is counted so the
application-level analyses (Figure 7) can report how many modular
multiplications, additions and inversions a kernel performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.algorithms.base import ModularMultiplier
from repro.core.algorithms.schoolbook import SchoolbookMultiplier
from repro.errors import ModulusError, OperandRangeError
from repro.instrumentation import OperationCounter

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.engine.engine import Engine

__all__ = ["PrimeField", "FieldElement"]


class PrimeField:
    """The field GF(p) with an explicit multiplication backend."""

    def __init__(
        self,
        modulus: int,
        multiplier: Optional[ModularMultiplier] = None,
        counter: Optional[OperationCounter] = None,
    ) -> None:
        if modulus <= 2:
            raise ModulusError(f"field modulus must be greater than 2, got {modulus}")
        if modulus % 2 == 0:
            raise ModulusError(f"field modulus must be odd, got {modulus}")
        self.modulus = modulus
        self.multiplier = multiplier or SchoolbookMultiplier()
        self.counter = counter or OperationCounter("field")

    @classmethod
    def from_engine(
        cls, engine: "Engine", modulus: Optional[int] = None
    ) -> "PrimeField":
        """The engine-backed field for ``modulus`` (or the engine default).

        Delegates to :meth:`repro.engine.Engine.field`, so the returned
        field shares the engine's cached per-modulus multiplier context —
        the recommended way to wire ECC code to a backend since the Engine
        API redesign.  Constructing ``PrimeField(modulus, multiplier=...)``
        directly keeps working as before.
        """
        return engine.field(modulus)

    # ------------------------------------------------------------------ #
    # element construction
    # ------------------------------------------------------------------ #
    def element(self, value: int) -> "FieldElement":
        """Wrap an integer (reduced modulo p) as a field element."""
        return FieldElement(value % self.modulus, self)

    def zero(self) -> "FieldElement":
        """The additive identity."""
        return self.element(0)

    def one(self) -> "FieldElement":
        """The multiplicative identity."""
        return self.element(1)

    @property
    def bitwidth(self) -> int:
        """Bit length of the modulus."""
        return self.modulus.bit_length()

    # ------------------------------------------------------------------ #
    # arithmetic primitives (counted)
    # ------------------------------------------------------------------ #
    def add(self, a: int, b: int) -> int:
        """Modular addition."""
        self.counter.increment("modadd")
        result = a + b
        if result >= self.modulus:
            result -= self.modulus
        return result

    def subtract(self, a: int, b: int) -> int:
        """Modular subtraction."""
        self.counter.increment("modsub")
        result = a - b
        if result < 0:
            result += self.modulus
        return result

    def multiply(self, a: int, b: int) -> int:
        """Modular multiplication through the configured backend."""
        self.counter.increment("modmul")
        return self.multiplier.multiply(a, b, self.modulus)

    def square(self, a: int) -> int:
        """Modular squaring (counted as a multiplication)."""
        return self.multiply(a, a)

    def inverse(self, a: int) -> int:
        """Modular inverse via Fermat's little theorem.

        Counted as one ``modinv``; callers that care about the multiplication
        cost of inversion (roughly ``1.5 * log2(p)`` multiplications by
        square-and-multiply) can expand it with
        :meth:`inversion_multiplication_cost`.
        """
        if a % self.modulus == 0:
            raise OperandRangeError("zero has no multiplicative inverse")
        self.counter.increment("modinv")
        return pow(a, self.modulus - 2, self.modulus)

    def negate(self, a: int) -> int:
        """Modular negation."""
        self.counter.increment("modsub")
        return (-a) % self.modulus

    def inversion_multiplication_cost(self) -> int:
        """Equivalent multiplication count of one Fermat inversion."""
        bits = self.modulus.bit_length()
        return bits + bits // 2

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"PrimeField(modulus={self.modulus:#x}, backend={self.multiplier.name!r})"


@dataclass(frozen=True)
class FieldElement:
    """An immutable element of a :class:`PrimeField`."""

    value: int
    field: PrimeField

    def __post_init__(self) -> None:
        if not 0 <= self.value < self.field.modulus:
            raise OperandRangeError(
                f"field element {self.value} outside [0, {self.field.modulus})"
            )

    # ------------------------------------------------------------------ #
    # operators
    # ------------------------------------------------------------------ #
    def _coerce(self, other: "FieldElement | int") -> int:
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise OperandRangeError("cannot mix elements of different fields")
            return other.value
        return int(other) % self.field.modulus

    def __add__(self, other: "FieldElement | int") -> "FieldElement":
        return FieldElement(self.field.add(self.value, self._coerce(other)), self.field)

    def __sub__(self, other: "FieldElement | int") -> "FieldElement":
        return FieldElement(
            self.field.subtract(self.value, self._coerce(other)), self.field
        )

    def __mul__(self, other: "FieldElement | int") -> "FieldElement":
        return FieldElement(
            self.field.multiply(self.value, self._coerce(other)), self.field
        )

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field.negate(self.value), self.field)

    def __truediv__(self, other: "FieldElement | int") -> "FieldElement":
        divisor = self._coerce(other)
        return FieldElement(
            self.field.multiply(self.value, self.field.inverse(divisor)), self.field
        )

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = self.field.one()
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    def square(self) -> "FieldElement":
        """Square this element."""
        return self * self

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse."""
        return FieldElement(self.field.inverse(self.value), self.field)

    def is_zero(self) -> bool:
        """Whether this is the additive identity."""
        return self.value == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return other.field == self.field and other.value == self.value
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.field.modulus))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"FieldElement({self.value:#x})"
