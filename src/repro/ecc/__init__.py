"""Elliptic-curve cryptography substrate.

Prime fields with pluggable multiplication backends, the curve group law in
affine and Jacobian coordinates, scalar multiplication, and the standard
curves the paper discusses (secp256k1, BN254, P-256).
"""

from repro.ecc.curve import AffinePoint, EllipticCurve, JacobianPoint
from repro.ecc.curves_data import (
    CURVE_SPECS,
    CURVES,
    CurveSpec,
    build_curve,
    get_curve,
)
from repro.ecc.ecdsa import Ecdsa, KeyPair, Signature
from repro.ecc.field import FieldElement, PrimeField
from repro.ecc.scalar import (
    montgomery_ladder,
    scalar_multiply,
    scalar_multiply_wnaf,
    wnaf_digits,
)

__all__ = [
    "AffinePoint",
    "CURVES",
    "CURVE_SPECS",
    "CurveSpec",
    "Ecdsa",
    "EllipticCurve",
    "FieldElement",
    "JacobianPoint",
    "KeyPair",
    "PrimeField",
    "Signature",
    "build_curve",
    "get_curve",
    "montgomery_ladder",
    "scalar_multiply",
    "scalar_multiply_wnaf",
    "wnaf_digits",
]
