"""ECC workload streams for chip-level dispatch.

These generators are the *linear views* of the Workload Graph API: the
graph builders in :mod:`repro.workloads.builders` are the canonical,
dependency-aware form of the same workloads, and
``graph.to_jobs()`` linearises a builder's graph into exactly the job
sequence emitted here (pinned by ``tests/workloads/test_builders.py``).
The streams stay hand-rolled generators so that huge workloads — a
``2^16``-point NTT, thousands of signatures — can be scheduled in O(1)
memory without materialising the graph's nodes and edges first.

Each point operation expands into the multiplication sequence of
:mod:`repro.modsram.scheduler` with its multiplicand names scoped to the
operation instance, so the chip scheduler sees exactly the LUT-reuse
structure one macro would: reuse within an operation, refills between
operations.  The streams are *structural* (no big-integer operands); use
the graph builders to exploit intra-request parallelism.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import OperandRangeError
from repro.modsram.chip import MultiplicationJob
from repro.modsram.scheduler import DOUBLING_SEQUENCE, MIXED_ADDITION_SEQUENCE

__all__ = [
    "point_operation_jobs",
    "scalar_multiplication_stream",
    "ecdsa_sign_stream",
]


def point_operation_jobs(
    sequence: Sequence[Tuple[str, str, str]], tag: str
) -> Iterator[MultiplicationJob]:
    """Expand one point operation into its multiplication jobs.

    Multiplicand names are scoped to ``tag`` because the live values of one
    doubling are unrelated to those of the next: ``yy`` of ``dbl[3]`` and
    ``yy`` of ``dbl[4]`` must not look like a shared LUT.
    """
    for _, _, multiplicand in sequence:
        yield MultiplicationJob(multiplicand=f"{tag}.{multiplicand}", tag=tag)


def scalar_multiplication_stream(
    scalar_bits: int = 256, additions: int = -1
) -> Iterator[MultiplicationJob]:
    """Double-and-add scalar multiplication as a multiplication stream.

    ``scalar_bits`` doublings interleaved with ``additions`` mixed
    additions (default: half the bit length, the expected Hamming weight of
    a random scalar) — the linearisation of
    :func:`repro.workloads.builders.scalar_multiplication_graph`.
    """
    if scalar_bits <= 0:
        raise OperandRangeError(f"scalar_bits must be positive, got {scalar_bits}")
    if additions < 0:
        additions = scalar_bits // 2
    emitted = 0
    for index in range(scalar_bits):
        yield from point_operation_jobs(DOUBLING_SEQUENCE, f"dbl[{index}]")
        # Spread the additions evenly over the doubling ladder, the way the
        # set bits of a random scalar would interleave them.
        if emitted < additions and index % 2 == 1:
            yield from point_operation_jobs(MIXED_ADDITION_SEQUENCE, f"add[{emitted}]")
            emitted += 1
    while emitted < additions:
        yield from point_operation_jobs(MIXED_ADDITION_SEQUENCE, f"add[{emitted}]")
        emitted += 1


def ecdsa_sign_stream(
    scalar_bits: int = 256, signatures: int = 1
) -> Iterator[MultiplicationJob]:
    """One or more full ECDSA signing operations as a multiplication stream.

    Each signature is one ``k · G`` scalar multiplication, a Fermat
    inversion of the nonce in the scalar field (``scalar_bits`` squarings —
    each with a fresh multiplicand — plus half as many multiplies), and the
    two scalar-field products forming ``s`` — the linearisation of
    :func:`repro.workloads.builders.ecdsa_sign_graph`.
    """
    if signatures <= 0:
        raise OperandRangeError(f"signatures must be positive, got {signatures}")
    for signature in range(signatures):
        prefix = f"sig[{signature}]"
        for job in scalar_multiplication_stream(scalar_bits):
            yield MultiplicationJob(
                multiplicand=f"{prefix}.{job.multiplicand}", tag=job.tag
            )
        # Fermat inversion of the nonce: square-and-multiply over the
        # scalar field.  Every squaring squares a fresh value (no reuse);
        # the interleaved multiplies all use the base value k (reusable).
        for index in range(scalar_bits):
            yield MultiplicationJob(
                multiplicand=f"{prefix}.inv.sq[{index}]", tag="inversion"
            )
            if index % 2 == 1:
                yield MultiplicationJob(
                    multiplicand=f"{prefix}.inv.k", tag="inversion"
                )
        # r·d and k⁻¹·(z + r·d).
        yield MultiplicationJob(multiplicand=f"{prefix}.d", tag="s-computation")
        yield MultiplicationJob(multiplicand=f"{prefix}.kinv", tag="s-computation")
