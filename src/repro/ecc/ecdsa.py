"""ECDSA digital signatures.

Public-key cryptography — "digital signature and encryption" — is the first
application the paper's introduction motivates ModSRAM with.  This module
implements textbook ECDSA (key generation, signing, verification) over the
library's curve layer so that a complete, realistic workload can be run with
any multiplier backend, including the cycle-accurate ModSRAM model, and its
modular-multiplication profile measured.

The implementation is deterministic-nonce (RFC-6979-style hashing of the key
and message through SHA-256) so tests and benchmarks are reproducible; it is
a functional model for workload studies, not a hardened production signer.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ecc.curve import AffinePoint, EllipticCurve
from repro.ecc.scalar import scalar_multiply
from repro.errors import CurveError, OperandRangeError

__all__ = ["Signature", "KeyPair", "Ecdsa"]


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature (r, s)."""

    r: int
    s: int


@dataclass(frozen=True)
class KeyPair:
    """A private scalar and its public point."""

    private_key: int
    public_key: AffinePoint


class Ecdsa:
    """ECDSA over one of the library's curves."""

    def __init__(self, curve: EllipticCurve) -> None:
        if curve.order is None:
            raise CurveError(
                f"curve {curve.name!r} has no group order configured; ECDSA "
                "needs the order of the base point"
            )
        self.curve = curve
        self.order = curve.order

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _hash_to_scalar(self, message: bytes) -> int:
        digest = hashlib.sha256(message).digest()
        value = int.from_bytes(digest, "big")
        # Keep only the leftmost bits if the order is shorter than the hash.
        excess = value.bit_length() - self.order.bit_length()
        if excess > 0:
            value >>= excess
        return value % self.order

    def _deterministic_nonce(self, private_key: int, message: bytes) -> int:
        """A deterministic, per-(key, message) nonce in ``[1, order)``.

        Simplified RFC 6979: HMAC-SHA256 over the key and message, iterated
        until the candidate lands in range.  Deterministic nonces make the
        workload reproducible and avoid the catastrophic reused-nonce
        failure mode in examples.
        """
        key_bytes = private_key.to_bytes((self.order.bit_length() + 7) // 8, "big")
        counter = 0
        while True:
            material = key_bytes + message + counter.to_bytes(4, "big")
            candidate = int.from_bytes(
                hmac.new(key_bytes, material, hashlib.sha256).digest(), "big"
            )
            candidate %= self.order
            if candidate != 0:
                return candidate
            counter += 1

    # ------------------------------------------------------------------ #
    # key generation
    # ------------------------------------------------------------------ #
    def generate_keypair(self, private_key: int) -> KeyPair:
        """Derive the key pair for an explicit private scalar.

        The caller supplies the private scalar (from whatever randomness
        source is appropriate); the library derives the public point.
        """
        if not 1 <= private_key < self.order:
            raise OperandRangeError(
                "private key must satisfy 1 <= d < order"
            )
        public_key = scalar_multiply(self.curve, private_key, self.curve.generator)
        return KeyPair(private_key=private_key, public_key=public_key)

    # ------------------------------------------------------------------ #
    # signing and verification
    # ------------------------------------------------------------------ #
    def sign(self, private_key: int, message: bytes) -> Signature:
        """Sign a message with the private scalar."""
        if not 1 <= private_key < self.order:
            raise OperandRangeError("private key must satisfy 1 <= d < order")
        digest = self._hash_to_scalar(message)
        attempt = 0
        while True:
            nonce = self._deterministic_nonce(private_key, message + bytes([attempt]))
            point = scalar_multiply(self.curve, nonce, self.curve.generator)
            r = int(point.x) % self.order if not point.is_infinity else 0
            if r == 0:
                attempt += 1
                continue
            nonce_inverse = pow(nonce, -1, self.order)
            s = (nonce_inverse * (digest + r * private_key)) % self.order
            if s == 0:
                attempt += 1
                continue
            return Signature(r=r, s=s)

    def verify(self, public_key: AffinePoint, message: bytes, signature: Signature) -> bool:
        """Check a signature against a public key and message."""
        r, s = signature.r, signature.s
        if not (1 <= r < self.order and 1 <= s < self.order):
            return False
        if public_key.is_infinity or not self.curve.contains(public_key):
            return False
        digest = self._hash_to_scalar(message)
        s_inverse = pow(s, -1, self.order)
        u1 = (digest * s_inverse) % self.order
        u2 = (r * s_inverse) % self.order
        point = self.curve.add(
            scalar_multiply(self.curve, u1, self.curve.generator),
            scalar_multiply(self.curve, u2, public_key),
        )
        if point.is_infinity:
            return False
        return int(point.x) % self.order == r
