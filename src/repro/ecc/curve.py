"""Short-Weierstrass elliptic curves and point arithmetic.

The paper positions ModSRAM as the modular-multiplication engine inside an
elliptic-curve system: §5.2 notes that the 64-row array is sized to hold the
operands of one EC *point addition*, and the future-work section builds the
ZKP argument (Figure 7) on top of point operations.  This module provides
the curve group: affine points, Jacobian-coordinate addition/doubling (the
formulas that actually get scheduled onto a modular multiplier), and the
operation counts that feed the application analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.ecc.field import FieldElement, PrimeField
from repro.errors import CurveError

__all__ = ["EllipticCurve", "AffinePoint", "JacobianPoint"]


@dataclass(frozen=True)
class AffinePoint:
    """A point in affine coordinates, or the point at infinity."""

    x: Optional[FieldElement]
    y: Optional[FieldElement]

    @classmethod
    def infinity(cls) -> "AffinePoint":
        """The group identity."""
        return cls(None, None)

    @property
    def is_infinity(self) -> bool:
        """Whether this is the point at infinity."""
        return self.x is None

    def coordinates(self) -> Tuple[int, int]:
        """Integer coordinates; raises for the point at infinity."""
        if self.is_infinity or self.x is None or self.y is None:
            raise CurveError("the point at infinity has no affine coordinates")
        return int(self.x), int(self.y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffinePoint):
            return NotImplemented
        if self.is_infinity or other.is_infinity:
            return self.is_infinity and other.is_infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.is_infinity:
            return hash(("AffinePoint", None))
        return hash(("AffinePoint", int(self.x), int(self.y)))


@dataclass(frozen=True)
class JacobianPoint:
    """A point in Jacobian projective coordinates ``(X, Y, Z)``.

    The affine point is ``(X / Z², Y / Z³)``; ``Z = 0`` encodes infinity.
    Jacobian coordinates avoid the per-operation field inversion, which is
    why hardware (and this library's operation counting) uses them.
    """

    x: FieldElement
    y: FieldElement
    z: FieldElement

    @property
    def is_infinity(self) -> bool:
        """Whether this encodes the point at infinity."""
        return self.z.is_zero()


class EllipticCurve:
    """A short-Weierstrass curve ``y² = x³ + a·x + b`` over GF(p)."""

    def __init__(
        self,
        name: str,
        field: PrimeField,
        a: int,
        b: int,
        generator: Optional[Tuple[int, int]] = None,
        order: Optional[int] = None,
    ) -> None:
        self.name = name
        self.field = field
        self.a = field.element(a)
        self.b = field.element(b)
        self.order = order
        # 4a^3 + 27b^2 must be non-zero for the curve to be non-singular.
        discriminant = field.element(4) * self.a * self.a * self.a + (
            field.element(27) * self.b * self.b
        )
        if discriminant.is_zero():
            raise CurveError(f"curve {name!r} is singular (discriminant is zero)")
        self._generator: Optional[AffinePoint] = None
        if generator is not None:
            point = self.affine_point(generator[0], generator[1])
            self._generator = point

    # ------------------------------------------------------------------ #
    # point construction / validation
    # ------------------------------------------------------------------ #
    def affine_point(self, x: int, y: int) -> AffinePoint:
        """Build a validated affine point."""
        point = AffinePoint(self.field.element(x), self.field.element(y))
        if not self.contains(point):
            raise CurveError(
                f"({x:#x}, {y:#x}) does not satisfy the {self.name} curve equation"
            )
        return point

    @property
    def generator(self) -> AffinePoint:
        """The standard base point."""
        if self._generator is None:
            raise CurveError(f"curve {self.name!r} has no generator configured")
        return self._generator

    @property
    def field_modulus(self) -> int:
        """The prime of the underlying field."""
        return self.field.modulus

    def contains(self, point: AffinePoint) -> bool:
        """Whether a point satisfies the curve equation."""
        if point.is_infinity:
            return True
        x, y = point.x, point.y
        left = y * y
        right = x * x * x + self.a * x + self.b
        return left == right

    def infinity(self) -> AffinePoint:
        """The group identity."""
        return AffinePoint.infinity()

    # ------------------------------------------------------------------ #
    # coordinate conversion
    # ------------------------------------------------------------------ #
    def to_jacobian(self, point: AffinePoint) -> JacobianPoint:
        """Lift an affine point into Jacobian coordinates."""
        if point.is_infinity:
            one = self.field.one()
            return JacobianPoint(one, one, self.field.zero())
        return JacobianPoint(point.x, point.y, self.field.one())

    def to_affine(self, point: JacobianPoint) -> AffinePoint:
        """Normalise a Jacobian point back to affine coordinates."""
        if point.is_infinity:
            return AffinePoint.infinity()
        z_inverse = point.z.inverse()
        z2 = z_inverse.square()
        z3 = z2 * z_inverse
        return AffinePoint(point.x * z2, point.y * z3)

    # ------------------------------------------------------------------ #
    # group law (Jacobian coordinates)
    # ------------------------------------------------------------------ #
    def jacobian_double(self, point: JacobianPoint) -> JacobianPoint:
        """Point doubling (standard Jacobian formulas)."""
        if point.is_infinity or point.y.is_zero():
            one = self.field.one()
            return JacobianPoint(one, one, self.field.zero())
        x, y, z = point.x, point.y, point.z
        y_squared = y.square()
        s = (x * y_squared) * 4
        m = x.square() * 3
        if not self.a.is_zero():
            m = m + self.a * z.square().square()
        new_x = m.square() - s - s
        new_y = m * (s - new_x) - y_squared.square() * 8
        new_z = (y * z) * 2
        return JacobianPoint(new_x, new_y, new_z)

    def jacobian_add(self, p: JacobianPoint, q: JacobianPoint) -> JacobianPoint:
        """General Jacobian point addition."""
        if p.is_infinity:
            return q
        if q.is_infinity:
            return p
        z1_squared = p.z.square()
        z2_squared = q.z.square()
        u1 = p.x * z2_squared
        u2 = q.x * z1_squared
        s1 = p.y * z2_squared * q.z
        s2 = q.y * z1_squared * p.z
        if u1 == u2:
            if s1 == s2:
                return self.jacobian_double(p)
            one = self.field.one()
            return JacobianPoint(one, one, self.field.zero())
        h = u2 - u1
        r = s2 - s1
        h_squared = h.square()
        h_cubed = h_squared * h
        v = u1 * h_squared
        new_x = r.square() - h_cubed - v - v
        new_y = r * (v - new_x) - s1 * h_cubed
        new_z = p.z * q.z * h
        return JacobianPoint(new_x, new_y, new_z)

    def jacobian_add_mixed(self, p: JacobianPoint, q: AffinePoint) -> JacobianPoint:
        """Mixed addition (second operand affine, ``Z2 = 1``).

        Mixed addition is what multi-scalar multiplication performs almost
        exclusively, and its lower multiplication count is why the operation
        models distinguish it from the general addition.
        """
        if q.is_infinity:
            return p
        if p.is_infinity:
            return self.to_jacobian(q)
        z1_squared = p.z.square()
        u2 = q.x * z1_squared
        s2 = q.y * z1_squared * p.z
        if p.x == u2:
            if p.y == s2:
                return self.jacobian_double(p)
            one = self.field.one()
            return JacobianPoint(one, one, self.field.zero())
        h = u2 - p.x
        r = s2 - p.y
        h_squared = h.square()
        h_cubed = h_squared * h
        v = p.x * h_squared
        new_x = r.square() - h_cubed - v - v
        new_y = r * (v - new_x) - p.y * h_cubed
        new_z = p.z * h
        return JacobianPoint(new_x, new_y, new_z)

    # ------------------------------------------------------------------ #
    # affine wrappers
    # ------------------------------------------------------------------ #
    def add(self, p: AffinePoint, q: AffinePoint) -> AffinePoint:
        """Affine point addition (goes through Jacobian coordinates)."""
        result = self.jacobian_add(self.to_jacobian(p), self.to_jacobian(q))
        return self.to_affine(result)

    def double(self, p: AffinePoint) -> AffinePoint:
        """Affine point doubling."""
        return self.to_affine(self.jacobian_double(self.to_jacobian(p)))

    def negate(self, p: AffinePoint) -> AffinePoint:
        """Additive inverse of a point."""
        if p.is_infinity:
            return p
        return AffinePoint(p.x, -p.y)

    def __repr__(self) -> str:
        return f"EllipticCurve(name={self.name!r}, p={self.field.modulus:#x})"
