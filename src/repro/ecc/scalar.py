"""Scalar multiplication algorithms.

Scalar multiplication ``k · P`` is the outer loop that turns modular
multiplications into ECC; every algorithm here is written over the Jacobian
group law so the number of modular multiplications it triggers can be
measured through the field's operation counter, which is how the
application-level examples connect ModSRAM's per-multiplication cycle count
to end-to-end point-operation latency.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ecc.curve import AffinePoint, EllipticCurve, JacobianPoint
from repro.errors import OperandRangeError

__all__ = [
    "scalar_multiply",
    "scalar_multiply_wnaf",
    "montgomery_ladder",
    "wnaf_digits",
]


def _validate_scalar(scalar: int) -> None:
    if scalar < 0:
        raise OperandRangeError(f"scalar must be non-negative, got {scalar}")


def scalar_multiply(curve: EllipticCurve, scalar: int, point: AffinePoint) -> AffinePoint:
    """Left-to-right double-and-add scalar multiplication."""
    _validate_scalar(scalar)
    if scalar == 0 or point.is_infinity:
        return curve.infinity()
    accumulator = curve.to_jacobian(curve.infinity())
    for bit_index in range(scalar.bit_length() - 1, -1, -1):
        accumulator = curve.jacobian_double(accumulator)
        if (scalar >> bit_index) & 1:
            accumulator = curve.jacobian_add_mixed(accumulator, point)
    return curve.to_affine(accumulator)


def montgomery_ladder(curve: EllipticCurve, scalar: int, point: AffinePoint) -> AffinePoint:
    """Montgomery-ladder scalar multiplication (constant operation pattern).

    Performs one doubling and one addition for *every* scalar bit regardless
    of its value — the data-independent access pattern a side-channel-aware
    hardware deployment of ModSRAM would use.
    """
    _validate_scalar(scalar)
    if scalar == 0 or point.is_infinity:
        return curve.infinity()
    r0 = curve.to_jacobian(curve.infinity())
    r1 = curve.to_jacobian(point)
    for bit_index in range(scalar.bit_length() - 1, -1, -1):
        if (scalar >> bit_index) & 1:
            r0 = curve.jacobian_add(r0, r1)
            r1 = curve.jacobian_double(r1)
        else:
            r1 = curve.jacobian_add(r0, r1)
            r0 = curve.jacobian_double(r0)
    return curve.to_affine(r0)


def wnaf_digits(scalar: int, width: int) -> List[int]:
    """Windowed non-adjacent form of a scalar, least-significant digit first.

    Every non-zero digit is odd and bounded by ``2**(width-1)`` in absolute
    value, and any two non-zero digits are separated by at least ``width - 1``
    zeros, which is what reduces the addition count of
    :func:`scalar_multiply_wnaf`.
    """
    _validate_scalar(scalar)
    if width < 2:
        raise OperandRangeError(f"wNAF width must be at least 2, got {width}")
    digits: List[int] = []
    modulus = 1 << width
    half = 1 << (width - 1)
    value = scalar
    while value > 0:
        if value & 1:
            digit = value % modulus
            if digit >= half:
                digit -= modulus
            value -= digit
        else:
            digit = 0
        digits.append(digit)
        value >>= 1
    return digits


def scalar_multiply_wnaf(
    curve: EllipticCurve,
    scalar: int,
    point: AffinePoint,
    width: int = 4,
) -> AffinePoint:
    """Scalar multiplication using width-``w`` NAF with precomputed odd multiples."""
    _validate_scalar(scalar)
    if scalar == 0 or point.is_infinity:
        return curve.infinity()

    digits = wnaf_digits(scalar, width)

    # Precompute the odd multiples P, 3P, 5P, ... (2^(w-1) - 1 of them).
    table: List[JacobianPoint] = [curve.to_jacobian(point)]
    double_point = curve.jacobian_double(curve.to_jacobian(point))
    for _ in range((1 << (width - 1)) // 2 - 1 + ((1 << (width - 1)) % 2)):
        table.append(curve.jacobian_add(table[-1], double_point))

    def lookup(digit: int) -> JacobianPoint:
        index = (abs(digit) - 1) // 2
        candidate = table[index]
        if digit < 0:
            return JacobianPoint(candidate.x, -candidate.y, candidate.z)
        return candidate

    accumulator = curve.to_jacobian(curve.infinity())
    for digit in reversed(digits):
        accumulator = curve.jacobian_double(accumulator)
        if digit:
            accumulator = curve.jacobian_add(accumulator, lookup(digit))
    return curve.to_affine(accumulator)
