"""ModSRAM reproduction library.

A Python reproduction of "ModSRAM: Algorithm-Hardware Co-Design for Large
Number Modular Multiplication in SRAM" (DAC 2024): the R4CSA-LUT algorithm
family, a functional + cycle-level model of the ModSRAM 8T-SRAM PIM
accelerator, the prior-work PIM baselines it is compared against, and the
ECC / ZKP application substrates that motivate it.

Quickstart
----------
The unified :class:`~repro.engine.Engine` facade is the entry point: pick a
backend and a curve, and every layer — single multiplications, batches,
fields, curves, NTTs — shares one cached per-modulus context.

>>> from repro import Engine
>>> engine = Engine(backend="r4csa-lut", curve="bn254")
>>> int(engine.multiply(12345, 67890)) == (12345 * 67890) % engine.default_modulus
True
>>> batch = engine.multiply_batch([(3, 5), (7, 5)])    # one context, N products
>>> list(batch)
[15, 35]
>>> batch.stats.precomputations                        # LUTs built once, reused
1

``engine.field()`` / ``engine.curve()`` / ``engine.ntt(size)`` return
engine-backed ECC and ZKP substrates; ``Engine(backend="modsram")`` routes
the same calls through the cycle-accurate hardware model, and
``available_backends()`` lists every option (including the Table 3 PIM
baselines as ``pim-*``).  The low-level multiplier classes below remain
available for direct use.

Fidelity tiers and the chip backend
-----------------------------------
The hardware model is a *layered simulation core* (:mod:`repro.modsram`):
one R4CSA-LUT algorithm body executed at three fidelity tiers, all
returning bit-identical products —

* ``Engine(backend="modsram")`` — **cycle** tier: word-line-accurate SRAM
  simulation (767 main-loop cycles at 256 bits on the paper schedule);
* ``Engine(backend="modsram-fast")`` — **analytical** tier: the same exact
  cycle reports from closed-form schedule algebra at ~100x the speed (this
  is the tier for full workloads: ECDSA signing, NTTs, MSM batches);
* ``ModSRAMFastBackend(fidelity="functional")`` — **functional** tier:
  products and operation counts only, no cycle model at all.

``Engine(backend="modsram-chip")`` scales out to an N-macro chip whose
scheduler dispatches the multiplication stream with LUT-reuse-aware
placement (``ModSRAMChipBackend(macros=16)`` for custom sizes); the
``chip-scaling`` experiment and ``repro chip`` sweep throughput versus
macro count on real workload streams.  Backend capability metadata
(``info.fidelity`` / ``info.macros``) distinguishes the tiers in
``repro backends --json``.

Reproducing the paper
---------------------
Every table and figure is a registered *experiment* — declarative,
parameterisable, sweepable, executed in parallel and cached on disk by
content hash (:mod:`repro.experiments`)::

    from repro.experiments import Runner

    runner = Runner(parallel=True)
    print(runner.run("headline", quick=True).render())   # claims scorecard
    sweep = runner.sweep("design-point", {"bitwidth": [64, 128, 256]})

The same API drives the shell: ``repro experiment list`` names every
experiment, ``repro experiment run table3 --json`` emits the structured
result, ``repro experiment sweep design-point --axis bitwidth=64,128,256
--parallel`` runs a grid, and ``repro report --parallel`` composes the
full consolidated report with warm-cache reuse (``python -m repro`` is
equivalent to the ``repro`` console script).

Workload graphs and the serving layer
-------------------------------------
Requests are DAGs, not flat streams: :mod:`repro.workloads` builds a
dependency-aware :class:`~repro.workloads.WorkloadGraph` of modular
multiplications for every workload the paper motivates (point operations,
scalar multiplication, ECDSA signing, NTT stages, bucket MSM, product
trees), and the graph-aware chip scheduler
(:meth:`~repro.modsram.ChipScheduler.schedule_graph`) dispatches its ready
fronts across macros honoring dependencies and LUT residency — ~4x lower
makespan than the flat-stream path on a 2^10-point NTT at 4 macros, with
bit-identical products.  :mod:`repro.service` serves those graphs online::

    import asyncio
    from repro.service import Client, Server
    from repro.workloads import product_tree_graph

    async def main():
        async with Server(backend="r4csa-lut", curve="bn254") as server:
            client = Client(server, tenant="alice")
            response = await client.submit_graph(product_tree_graph(range(2, 18)))

    asyncio.run(main())

Serving scales past the GIL: ``Server(..., workers=N)`` (or ``repro
serve --workers N``) shards batch execution across N engine-owning
worker processes with stable modulus→shard hashing, per-shard warm
context caches, and crash retry — bit-identical products, more cores
(:mod:`repro.service.pool`).  ``repro serve --self-test`` drives the
multi-tenant traffic mix, ``repro submit`` sends one request from the
shell, and the ``serving-throughput`` experiment measures the layer.
The ``docs/`` mkdocs site carries the full architecture guide, the
serving/sharding how-to and generated CLI/API references.

The cycle-accurate hardware model lives in :mod:`repro.modsram`; the
per-exhibit reproduction modules live in :mod:`repro.analysis`.
"""

from repro.core import (
    BarrettMultiplier,
    CsaInterleavedMultiplier,
    InterleavedMultiplier,
    ModularMultiplier,
    MontgomeryMultiplier,
    R4CSALutContext,
    R4CSALutMultiplier,
    Radix4InterleavedMultiplier,
    SchoolbookMultiplier,
    available_multipliers,
    create_multiplier,
    get_multiplier,
)
from repro.engine import (
    BackendInfo,
    BatchResult,
    Engine,
    MultiplyResult,
    available_backends,
    get_backend,
)
from repro.errors import ReproError

__version__ = "1.10.0"

__all__ = [
    "BackendInfo",
    "BarrettMultiplier",
    "BatchResult",
    "CsaInterleavedMultiplier",
    "Engine",
    "InterleavedMultiplier",
    "ModularMultiplier",
    "MontgomeryMultiplier",
    "MultiplyResult",
    "R4CSALutContext",
    "R4CSALutMultiplier",
    "Radix4InterleavedMultiplier",
    "ReproError",
    "SchoolbookMultiplier",
    "available_backends",
    "available_multipliers",
    "create_multiplier",
    "get_backend",
    "get_multiplier",
    "__version__",
]
