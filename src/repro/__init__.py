"""ModSRAM reproduction library.

A Python reproduction of "ModSRAM: Algorithm-Hardware Co-Design for Large
Number Modular Multiplication in SRAM" (DAC 2024): the R4CSA-LUT algorithm
family, a functional + cycle-level model of the ModSRAM 8T-SRAM PIM
accelerator, the prior-work PIM baselines it is compared against, and the
ECC / ZKP application substrates that motivate it.

Quickstart
----------
>>> from repro import R4CSALutMultiplier
>>> from repro.ecc import CURVES
>>> curve = CURVES["bn254"]
>>> mul = R4CSALutMultiplier()
>>> mul.multiply(12345, 67890, curve.field_modulus) == (12345 * 67890) % curve.field_modulus
True

The cycle-accurate hardware model lives in :mod:`repro.modsram`; the
experiment reproductions (one module per paper figure/table) live in
:mod:`repro.analysis`.
"""

from repro.core import (
    BarrettMultiplier,
    CsaInterleavedMultiplier,
    InterleavedMultiplier,
    ModularMultiplier,
    MontgomeryMultiplier,
    R4CSALutContext,
    R4CSALutMultiplier,
    Radix4InterleavedMultiplier,
    SchoolbookMultiplier,
    available_multipliers,
    create_multiplier,
    get_multiplier,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "BarrettMultiplier",
    "CsaInterleavedMultiplier",
    "InterleavedMultiplier",
    "ModularMultiplier",
    "MontgomeryMultiplier",
    "R4CSALutContext",
    "R4CSALutMultiplier",
    "Radix4InterleavedMultiplier",
    "ReproError",
    "SchoolbookMultiplier",
    "available_multipliers",
    "create_multiplier",
    "get_multiplier",
    "__version__",
]
