"""Timing model of the ModSRAM read-compute-write pipeline.

The paper reports a 420 MHz clock for the 65 nm design, obtained from HSPICE
simulation of the critical path: precharge, read word-line assertion and
bitline development across three activated cells, triple sense amplification
and the near-memory latch.  This module replaces the SPICE run with a phase
model whose default 65 nm phase latencies are calibrated to reproduce that
clock, and which scales to other nodes with the usual constant-field rules
so the design-space examples can sweep technology.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ConfigurationError

__all__ = ["TimingModel", "DEFAULT_65NM_TIMING"]


@dataclass(frozen=True)
class TimingModel:
    """Phase latencies (in nanoseconds) of one array access."""

    technology_nm: int = 65
    precharge_ns: float = 0.55
    wordline_ns: float = 0.40
    bitline_develop_ns: float = 0.55
    sense_ns: float = 0.45
    write_ns: float = 0.85
    nmc_logic_ns: float = 0.43

    def __post_init__(self) -> None:
        for name in (
            "precharge_ns",
            "wordline_ns",
            "bitline_develop_ns",
            "sense_ns",
            "write_ns",
            "nmc_logic_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.technology_nm <= 0:
            raise ConfigurationError(
                f"technology node must be positive, got {self.technology_nm}"
            )

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def read_compute_latency_ns(self) -> float:
        """Latency of a logic-SA access (the in-memory compute path)."""
        return (
            self.precharge_ns
            + self.wordline_ns
            + self.bitline_develop_ns
            + self.sense_ns
            + self.nmc_logic_ns
        )

    @property
    def write_latency_ns(self) -> float:
        """Latency of a row write-back from the near-memory flip-flops."""
        return self.precharge_ns + self.wordline_ns + self.write_ns + self.nmc_logic_ns

    @property
    def cycle_time_ns(self) -> float:
        """Clock period: the slower of the read-compute and write paths."""
        return max(self.read_compute_latency_ns, self.write_latency_ns)

    @property
    def frequency_mhz(self) -> float:
        """Clock frequency implied by the critical path."""
        return 1e3 / self.cycle_time_ns

    def latency_us(self, cycles: int) -> float:
        """Wall-clock latency of a ``cycles``-cycle operation, in microseconds."""
        if cycles < 0:
            raise ConfigurationError(f"cycles must be non-negative, got {cycles}")
        return cycles * self.cycle_time_ns * 1e-3

    def throughput_ops_per_second(self, cycles_per_op: int) -> float:
        """Operations per second at one operation every ``cycles_per_op`` cycles."""
        if cycles_per_op <= 0:
            raise ConfigurationError(
                f"cycles_per_op must be positive, got {cycles_per_op}"
            )
        return self.frequency_mhz * 1e6 / cycles_per_op

    # ------------------------------------------------------------------ #
    # scaling
    # ------------------------------------------------------------------ #
    def scaled_to(self, technology_nm: int) -> "TimingModel":
        """Scale every phase latency linearly with the technology node.

        A first-order constant-field scaling: gate delay shrinks with the
        node.  This is only used for cross-node what-if sweeps; the paper's
        numbers are all at 65 nm.
        """
        if technology_nm <= 0:
            raise ConfigurationError(
                f"technology node must be positive, got {technology_nm}"
            )
        factor = technology_nm / self.technology_nm
        return replace(
            self,
            technology_nm=technology_nm,
            precharge_ns=self.precharge_ns * factor,
            wordline_ns=self.wordline_ns * factor,
            bitline_develop_ns=self.bitline_develop_ns * factor,
            sense_ns=self.sense_ns * factor,
            write_ns=self.write_ns * factor,
            nmc_logic_ns=self.nmc_logic_ns * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        """Phase latencies plus the derived figures, for reports."""
        return {
            "technology_nm": float(self.technology_nm),
            "precharge_ns": self.precharge_ns,
            "wordline_ns": self.wordline_ns,
            "bitline_develop_ns": self.bitline_develop_ns,
            "sense_ns": self.sense_ns,
            "write_ns": self.write_ns,
            "nmc_logic_ns": self.nmc_logic_ns,
            "read_compute_latency_ns": self.read_compute_latency_ns,
            "write_latency_ns": self.write_latency_ns,
            "cycle_time_ns": self.cycle_time_ns,
            "frequency_mhz": self.frequency_mhz,
        }


#: The calibrated 65 nm timing used throughout the reproduction; its derived
#: frequency is ~420 MHz, matching Table 3.
DEFAULT_65NM_TIMING = TimingModel()
