"""Behavioural model of the ModSRAM 8T SRAM array.

The array is the in-memory-computing half of ModSRAM: a 64 × 256 tile of 8T
cells whose read port can activate up to three read word lines at once.
When several rows are activated, each read bitline discharges in proportion
to the number of selected cells that store a one; the logic-SA module
(:mod:`repro.sram.sense_amp`) then resolves that analogue level into the
XOR3 and MAJ outputs that implement carry-save addition.

The model is bit-accurate and deliberately structural: rows are written and
read through the same narrow interface the hardware has (full-row writes via
the write port, single- or multi-row reads via the read port), every access
is counted, and illegal access patterns (activating more rows than the cell
can tolerate, mixing a 6T cell with multi-row reads) are detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReadDisturbError, SramAccessError
from repro.sram.cell import EightTransistorCell, SramCell
from repro.sram.stats import ArrayStats

__all__ = ["BitlineReadout", "SramArray"]


@dataclass(frozen=True)
class BitlineReadout:
    """Result of one (possibly multi-row) read-port access.

    Attributes
    ----------
    activated_rows:
        The row indices whose read word lines were raised.
    column_counts:
        For every column, the number of activated cells storing a one
        (0..3).  This is the digital abstraction of the read-bitline
        discharge level that the sense-amplifier module resolves.
    columns:
        Width of the access in bits.
    """

    activated_rows: Tuple[int, ...]
    column_counts: Tuple[int, ...]
    columns: int

    def wired_or(self) -> int:
        """Columns with at least one conducting cell (a plain multi-row OR)."""
        value = 0
        for index, count in enumerate(self.column_counts):
            if count:
                value |= 1 << index
        return value

    def exact_value(self) -> int:
        """Single-row reads only: the stored word."""
        if len(self.activated_rows) != 1:
            raise SramAccessError(
                "exact_value() is only defined for single-row reads; "
                f"{len(self.activated_rows)} rows were activated"
            )
        return self.wired_or()


class SramArray:
    """A rows × cols SRAM tile with separate read and write ports."""

    def __init__(
        self,
        rows: int,
        cols: int,
        cell: SramCell = EightTransistorCell,
        name: str = "sram",
        strict_disturb: bool = True,
        stats: Optional[ArrayStats] = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise SramAccessError(
                f"array dimensions must be positive, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self.cell = cell
        self.name = name
        #: When True, a disturb-prone access raises; when False it is only
        #: recorded (useful for "what would a 6T design have to do" studies).
        self.strict_disturb = strict_disturb
        #: Access accounting; pass a shared :class:`ArrayStats` to aggregate
        #: several arrays (e.g. every macro of a chip) into one profile.
        self.stats = stats if stats is not None else ArrayStats()
        self._data: List[int] = [0] * rows

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @property
    def column_mask(self) -> int:
        """All-ones mask covering every column."""
        return (1 << self.cols) - 1

    @property
    def capacity_bits(self) -> int:
        """Total storage capacity in bits."""
        return self.rows * self.cols

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise SramAccessError(
                f"row {row} out of range for {self.rows}-row array {self.name!r}"
            )

    # ------------------------------------------------------------------ #
    # write port
    # ------------------------------------------------------------------ #
    def write_row(self, row: int, value: int) -> None:
        """Write a full row through the write port."""
        self._check_row(row)
        if value < 0:
            raise SramAccessError(f"row value must be non-negative, got {value}")
        if value >> self.cols:
            raise SramAccessError(
                f"value {value:#x} does not fit in a {self.cols}-column row"
            )
        self._data[row] = value
        self.stats.record_write(self.cols)

    def clear(self) -> None:
        """Write zero to every row (counted as individual row writes)."""
        for row in range(self.rows):
            self.write_row(row, 0)

    # ------------------------------------------------------------------ #
    # read port
    # ------------------------------------------------------------------ #
    def read_row(self, row: int) -> int:
        """Plain single-row read."""
        readout = self.activate_rows([row])
        return readout.exact_value()

    def activate_rows(self, rows: Sequence[int]) -> BitlineReadout:
        """Activate one or more read word lines simultaneously.

        Returns the per-column conducting-cell counts (the digital view of
        the bitline discharge levels).  Raises :class:`ReadDisturbError` if
        the access pattern is unsafe for the configured cell and the array
        is in strict mode.
        """
        if not rows:
            raise SramAccessError("at least one row must be activated")
        unique = tuple(dict.fromkeys(rows))
        if len(unique) != len(rows):
            raise SramAccessError(f"duplicate rows in activation set: {rows}")
        for row in unique:
            self._check_row(row)

        if self.cell.disturb_risk(len(unique)):
            self.stats.record_disturb()
            if self.strict_disturb:
                raise ReadDisturbError(
                    f"activating {len(unique)} rows on a {self.cell.name} array "
                    f"exceeds the safe limit of {self.cell.max_simultaneous_reads}"
                )

        words = [self._data[row] for row in unique]
        counts = tuple(
            sum((word >> column) & 1 for word in words)
            for column in range(self.cols)
        )
        self.stats.record_read(len(unique), compute=len(unique) > 1)
        return BitlineReadout(
            activated_rows=unique, column_counts=counts, columns=self.cols
        )

    # ------------------------------------------------------------------ #
    # debug / inspection (not counted as hardware accesses)
    # ------------------------------------------------------------------ #
    def peek(self, row: int) -> int:
        """Inspect a row without modelling a hardware access."""
        self._check_row(row)
        return self._data[row]

    def poke(self, row: int, value: int) -> None:
        """Set a row without modelling a hardware access (test fixtures)."""
        self._check_row(row)
        if value < 0 or value >> self.cols:
            raise SramAccessError(
                f"value {value:#x} does not fit in a {self.cols}-column row"
            )
        self._data[row] = value

    def dump(self) -> Dict[int, int]:
        """Snapshot of every non-zero row (row index → stored word)."""
        return {row: word for row, word in enumerate(self._data) if word}

    def area_um2(self) -> float:
        """Full-custom area of the cell array alone."""
        return self.cell.area_for(self.rows, self.cols)

    def __repr__(self) -> str:
        return (
            f"SramArray(name={self.name!r}, rows={self.rows}, cols={self.cols}, "
            f"cell={self.cell.name})"
        )
