"""Access statistics collected by the SRAM array model.

The statistics mirror the quantities the paper's evaluation reasons about:
how many word lines are activated (each activation is a precharge + sense
cycle), how many of those are multi-row compute accesses versus plain reads,
and how many write-backs occur.  The energy model consumes these directly.

:class:`ArrayStats` is the *shared accounting currency* of the layered
simulation core: the behavioural array fills one in while simulating, the
functional tier fills one in from its register-file host, and the
analytical tier synthesises one in closed form — so the energy model and
the reports never need to know which fidelity tier produced the numbers.
The algebra helpers (:meth:`merged_with`, :meth:`snapshot` /
:meth:`delta_since`) support multi-macro aggregation (``Chip.stats()``) and
per-multiplication attribution (``FunctionalResult.stats``) without
coupling callers to the array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ArrayStats"]


@dataclass
class ArrayStats:
    """Counters for one :class:`repro.sram.array.SramArray` instance."""

    row_writes: int = 0
    row_reads: int = 0
    compute_reads: int = 0
    rows_activated: int = 0
    precharges: int = 0
    bits_written: int = 0
    read_disturb_events: int = 0

    def record_write(self, bits: int) -> None:
        """Account for one full-row write of ``bits`` columns."""
        self.row_writes += 1
        self.bits_written += bits

    def record_read(self, activated_rows: int, compute: bool) -> None:
        """Account for one read access activating ``activated_rows`` rows."""
        self.row_reads += 1
        if compute:
            self.compute_reads += 1
        self.rows_activated += activated_rows
        self.precharges += 1

    def record_disturb(self) -> None:
        """Account for a potential read-disturb event (6T multi-row read)."""
        self.read_disturb_events += 1

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dictionary (stable key order)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    # ------------------------------------------------------------------ #
    # algebra (multi-macro aggregation, per-operation attribution)
    # ------------------------------------------------------------------ #
    def merged_with(self, other: "ArrayStats") -> "ArrayStats":
        """A new stats object with element-wise summed counters."""
        merged = ArrayStats()
        for name in self.__dataclass_fields__:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def snapshot(self) -> "ArrayStats":
        """An independent copy of the current counters."""
        copy = ArrayStats()
        for name in self.__dataclass_fields__:
            setattr(copy, name, getattr(self, name))
        return copy

    def delta_since(self, earlier: "ArrayStats") -> "ArrayStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        delta = ArrayStats()
        for name in self.__dataclass_fields__:
            setattr(delta, name, getattr(self, name) - getattr(earlier, name))
        return delta
