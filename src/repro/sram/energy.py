"""First-order energy model for the SRAM macro.

The paper does not report energy numbers, but a PIM library is not usable
for design-space exploration without one, so the model here provides
per-event energies (precharge, word-line activation, per-column sensing,
write-back, near-memory flip-flop updates) with 65 nm-plausible defaults and
computes macro energy from the access statistics the array and accelerator
already collect.  Every constant is a parameter so users can re-calibrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.sram.stats import ArrayStats

__all__ = ["EnergyModel", "EnergyBreakdown", "DEFAULT_65NM_ENERGY"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attributed to each access mechanism, in picojoules."""

    precharge_pj: float
    wordline_pj: float
    sensing_pj: float
    write_pj: float
    near_memory_pj: float

    @property
    def total_pj(self) -> float:
        """Total macro energy in picojoules."""
        return (
            self.precharge_pj
            + self.wordline_pj
            + self.sensing_pj
            + self.write_pj
            + self.near_memory_pj
        )

    def as_dict(self) -> Dict[str, float]:
        """Breakdown plus total, for reports."""
        return {
            "precharge_pj": self.precharge_pj,
            "wordline_pj": self.wordline_pj,
            "sensing_pj": self.sensing_pj,
            "write_pj": self.write_pj,
            "near_memory_pj": self.near_memory_pj,
            "total_pj": self.total_pj,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in femtojoules (65 nm defaults)."""

    precharge_fj_per_column: float = 1.8
    wordline_fj_per_activation: float = 35.0
    sense_fj_per_column: float = 2.4
    write_fj_per_bit: float = 3.1
    flipflop_fj_per_bit: float = 1.2
    columns: int = 256

    def __post_init__(self) -> None:
        for name in (
            "precharge_fj_per_column",
            "wordline_fj_per_activation",
            "sense_fj_per_column",
            "write_fj_per_bit",
            "flipflop_fj_per_bit",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.columns <= 0:
            raise ConfigurationError(f"columns must be positive, got {self.columns}")

    def from_stats(self, stats: ArrayStats, flipflop_writes: int = 0) -> EnergyBreakdown:
        """Compute the macro energy implied by a set of access statistics.

        Parameters
        ----------
        stats:
            Counters collected by :class:`repro.sram.array.SramArray`.
        flipflop_writes:
            Number of near-memory register-bit updates (reported by the
            accelerator's datapath), charged at the flip-flop energy.
        """
        if flipflop_writes < 0:
            raise ConfigurationError(
                f"flipflop_writes must be non-negative, got {flipflop_writes}"
            )
        precharge = stats.precharges * self.columns * self.precharge_fj_per_column
        wordline = stats.rows_activated * self.wordline_fj_per_activation
        # Every read senses all columns; compute reads use three SAs per
        # column instead of one.
        plain_reads = stats.row_reads - stats.compute_reads
        sensing = (
            plain_reads * self.columns * self.sense_fj_per_column
            + stats.compute_reads * self.columns * 3 * self.sense_fj_per_column
        )
        write = stats.bits_written * self.write_fj_per_bit
        near_memory = flipflop_writes * self.flipflop_fj_per_bit
        return EnergyBreakdown(
            precharge_pj=precharge * 1e-3,
            wordline_pj=wordline * 1e-3,
            sensing_pj=sensing * 1e-3,
            write_pj=write * 1e-3,
            near_memory_pj=near_memory * 1e-3,
        )

    def energy_per_modmul_pj(
        self, stats: ArrayStats, flipflop_writes: int, multiplications: int
    ) -> float:
        """Average energy of one modular multiplication, in picojoules."""
        if multiplications <= 0:
            raise ConfigurationError(
                f"multiplications must be positive, got {multiplications}"
            )
        return self.from_stats(stats, flipflop_writes).total_pj / multiplications


#: Default 65 nm energy model matching the 256-column ModSRAM macro.
DEFAULT_65NM_ENERGY = EnergyModel()
