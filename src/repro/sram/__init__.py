"""8T SRAM processing-in-memory substrate.

Behavioural models of the pieces ModSRAM is built from: bit cells, the
array with its separate read/write ports and multi-row activation, the
logic-SA sense-amplifier module that computes XOR3/MAJ in memory, word-line
decoders, and the timing/energy models that stand in for the paper's
circuit-level simulation.
"""

from repro.sram.array import BitlineReadout, SramArray
from repro.sram.cell import EightTransistorCell, SixTransistorCell, SramCell, make_cell
from repro.sram.decoder import DecoderBank, WordlineDecoder
from repro.sram.energy import DEFAULT_65NM_ENERGY, EnergyBreakdown, EnergyModel
from repro.sram.montecarlo import ColumnTrialResult, MonteCarloSenseAnalysis
from repro.sram.sense_amp import (
    LatchSenseAmplifier,
    LogicSenseAmpModule,
    LogicSenseAmpResult,
    SenseAmpParameters,
)
from repro.sram.stats import ArrayStats
from repro.sram.timing import DEFAULT_65NM_TIMING, TimingModel

__all__ = [
    "ArrayStats",
    "BitlineReadout",
    "ColumnTrialResult",
    "DEFAULT_65NM_ENERGY",
    "DEFAULT_65NM_TIMING",
    "DecoderBank",
    "EightTransistorCell",
    "EnergyBreakdown",
    "EnergyModel",
    "LatchSenseAmplifier",
    "LogicSenseAmpModule",
    "LogicSenseAmpResult",
    "MonteCarloSenseAnalysis",
    "SenseAmpParameters",
    "SixTransistorCell",
    "SramArray",
    "SramCell",
    "TimingModel",
    "WordlineDecoder",
    "make_cell",
]
