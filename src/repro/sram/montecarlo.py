"""Monte-Carlo robustness analysis of the logic-SA sensing scheme.

The multi-level sensing that makes in-memory XOR3/MAJ possible is the part
of ModSRAM a silicon team would worry about: the read bitline must settle at
one of four levels and three sense amplifiers must each resolve a quarter-VDD
margin in the presence of offset and noise.  The paper validates this with
HSPICE; the reproduction provides (a) the analytic flip probability already
exposed by :class:`repro.sram.sense_amp.LogicSenseAmpModule` and (b) this
Monte-Carlo harness, which injects Gaussian bitline noise into the
behavioural model, measures how often a column's recovered XOR3/MAJ pair is
wrong, and — run against the full accelerator — how often a whole modular
multiplication silently corrupts.  The two estimates are cross-checked in the
test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sram.sense_amp import SenseAmpParameters

__all__ = ["ColumnTrialResult", "MonteCarloSenseAnalysis"]


@dataclass(frozen=True)
class ColumnTrialResult:
    """Outcome of one batch of noisy column-sensing trials."""

    noise_sigma_v: float
    trials: int
    level_errors: int
    xor_errors: int
    maj_errors: int

    @property
    def level_error_rate(self) -> float:
        """Fraction of trials in which the recovered count was wrong."""
        return self.level_errors / self.trials if self.trials else 0.0

    @property
    def logic_error_rate(self) -> float:
        """Fraction of trials in which XOR3 or MAJ was wrong.

        A level error of ±2 can still produce a correct XOR3 bit, so this is
        the rate that actually matters for computation correctness.
        """
        if not self.trials:
            return 0.0
        wrong = self.xor_errors + self.maj_errors
        return min(1.0, wrong / (2 * self.trials))


class MonteCarloSenseAnalysis:
    """Noise-injection experiments on the multi-level sensing scheme."""

    def __init__(
        self,
        parameters: Optional[SenseAmpParameters] = None,
        seed: int = 0,
    ) -> None:
        self.parameters = parameters or SenseAmpParameters()
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    # column-level trials
    # ------------------------------------------------------------------ #
    def _noisy_level(self, count: int, noise_sigma_v: float) -> int:
        """Recover the discharge level of one column under noise.

        The bitline voltage and each reference are perturbed independently;
        the recovered level is the number of references the (noisy) bitline
        has fallen below, exactly as the three SAs decide it.
        """
        voltage = self.parameters.bitline_voltage(count) + self._rng.gauss(
            0.0, noise_sigma_v
        )
        level = 0
        for reference in self.parameters.reference_voltages():
            noisy_reference = reference + self._rng.gauss(0.0, noise_sigma_v)
            if voltage < noisy_reference:
                level += 1
        return level

    def column_trials(
        self, noise_sigma_v: float, trials: int = 10000
    ) -> ColumnTrialResult:
        """Measure level/XOR3/MAJ error rates for one column under noise."""
        if trials <= 0:
            raise ConfigurationError(f"trials must be positive, got {trials}")
        if noise_sigma_v < 0:
            raise ConfigurationError(
                f"noise sigma must be non-negative, got {noise_sigma_v}"
            )
        level_errors = 0
        xor_errors = 0
        maj_errors = 0
        for _ in range(trials):
            true_count = self._rng.randrange(4)
            recovered = self._noisy_level(true_count, noise_sigma_v)
            if recovered != true_count:
                level_errors += 1
            if (recovered & 1) != (true_count & 1):
                xor_errors += 1
            if (recovered >= 2) != (true_count >= 2):
                maj_errors += 1
        return ColumnTrialResult(
            noise_sigma_v=noise_sigma_v,
            trials=trials,
            level_errors=level_errors,
            xor_errors=xor_errors,
            maj_errors=maj_errors,
        )

    def noise_sweep(
        self, sigmas_v: Tuple[float, ...] = (0.005, 0.015, 0.03, 0.045, 0.06),
        trials: int = 5000,
    ) -> Dict[float, ColumnTrialResult]:
        """Column error rates across a range of noise levels."""
        return {sigma: self.column_trials(sigma, trials) for sigma in sigmas_v}

    # ------------------------------------------------------------------ #
    # derived figures
    # ------------------------------------------------------------------ #
    def multiplication_failure_probability(
        self,
        column_error_rate: float,
        columns: int,
        accesses: int,
    ) -> float:
        """Probability that at least one bit of one multiplication is wrong.

        ``accesses`` is the number of logic-SA accesses in the schedule (two
        per iteration); each access senses every column independently.
        """
        if not 0.0 <= column_error_rate <= 1.0:
            raise ConfigurationError(
                f"column error rate must be a probability, got {column_error_rate}"
            )
        if columns <= 0 or accesses <= 0:
            raise ConfigurationError("columns and accesses must be positive")
        survive = (1.0 - column_error_rate) ** (columns * accesses)
        return 1.0 - survive

    def maximum_tolerable_column_error_rate(
        self, columns: int, accesses: int, target_failure: float = 1e-9
    ) -> float:
        """Column error rate that keeps whole multiplications below a target.

        Useful for turning a reliability target (say, one corrupted
        multiplication per 10^9) into a sensing-margin requirement.
        """
        if not 0.0 < target_failure < 1.0:
            raise ConfigurationError(
                f"target failure must be in (0, 1), got {target_failure}"
            )
        exponent = 1.0 / (columns * accesses)
        return 1.0 - (1.0 - target_failure) ** exponent
