"""SRAM bit-cell models.

ModSRAM uses a standard 8T cell — a 6T storage core plus a decoupled
two-transistor read port — because the logic-SA scheme activates *three*
read word lines at once and a shared-port 6T cell would suffer read disturb
under multi-row activation (§4.2 of the paper).  The cell classes here carry
the structural facts the rest of the model needs: transistor count, port
structure, how many rows may be activated together without corrupting data,
and the full-custom layout area used by the area model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SramCell", "SixTransistorCell", "EightTransistorCell", "make_cell"]


@dataclass(frozen=True)
class SramCell:
    """Structural description of one SRAM bit cell.

    Attributes
    ----------
    name:
        Short identifier (``"6T"`` or ``"8T"``).
    transistor_count:
        Transistors per cell.
    read_ports / write_ports:
        Number of dedicated ports of each kind.
    shared_read_write_port:
        ``True`` when reads and writes go through the same access
        transistors (the classic 6T cell), which is what makes multi-row
        activation disturb-prone.
    max_simultaneous_reads:
        How many rows sharing a bitline may be activated for a read without
        risking data corruption.
    area_um2:
        Full-custom layout area of one cell in the reference 65 nm process.
    """

    name: str
    transistor_count: int
    read_ports: int
    write_ports: int
    shared_read_write_port: bool
    max_simultaneous_reads: int
    area_um2: float

    def disturb_risk(self, activated_rows: int) -> bool:
        """Whether activating ``activated_rows`` rows risks read disturb."""
        if activated_rows < 1:
            raise ConfigurationError(
                f"activated_rows must be at least 1, got {activated_rows}"
            )
        return activated_rows > self.max_simultaneous_reads

    def area_for(self, rows: int, cols: int) -> float:
        """Array area in µm² for a ``rows`` × ``cols`` tile of this cell."""
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(
                f"array dimensions must be positive, got {rows}x{cols}"
            )
        return self.area_um2 * rows * cols


#: The classic single-port cell: compact, but reads and writes share the
#: access transistors, so activating more than one row on a read risks
#: flipping the weaker cell.  Used by MeNTT and BP-NTT.
SixTransistorCell = SramCell(
    name="6T",
    transistor_count=6,
    read_ports=1,
    write_ports=1,
    shared_read_write_port=True,
    max_simultaneous_reads=1,
    area_um2=1.10,
)

#: ModSRAM's cell: a 6T storage core plus a decoupled read buffer, giving a
#: separate read port so three rows can be sensed at once for XOR3/MAJ
#: without disturbing the stored data.
EightTransistorCell = SramCell(
    name="8T",
    transistor_count=8,
    read_ports=1,
    write_ports=1,
    shared_read_write_port=False,
    max_simultaneous_reads=3,
    area_um2=2.165,
)

_CELLS = {"6T": SixTransistorCell, "8T": EightTransistorCell}


def make_cell(name: str) -> SramCell:
    """Return a cell model by name (``"6T"`` or ``"8T"``)."""
    try:
        return _CELLS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown cell type {name!r}; available: {sorted(_CELLS)}"
        ) from None
