"""Sense amplifiers and the logic-SA module.

The in-memory compute trick ModSRAM borrows from Sridharan et al. (ESSCIRC
2022) is that when three rows are activated on an 8T read port, the read
bitline discharges by an amount proportional to the number of selected cells
storing a one.  Placing *three* conventional latch-type sense amplifiers on
each bitline, with reference voltages between the four possible discharge
levels, yields a thermometer code of that count, from which the two
functions a carry-save adder needs fall out combinationally:

* ``XOR3`` — the count is odd (level 1 or 3),
* ``MAJ``  — the count is at least two (level 2 or 3).

This module models the latch sense amplifier (including offset and optional
noise, so sensing-margin ablations are possible) and the per-column logic-SA
block, and exposes a whole-row evaluation used by the accelerator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SenseMarginError
from repro.sram.array import BitlineReadout

__all__ = [
    "SenseAmpParameters",
    "LatchSenseAmplifier",
    "LogicSenseAmpResult",
    "LogicSenseAmpModule",
]


@dataclass(frozen=True)
class SenseAmpParameters:
    """Electrical parameters of the bitline + sense-amplifier system.

    The defaults describe the 65 nm reference design: a 1.2 V precharged
    read bitline that discharges by ``discharge_per_cell_v`` for every
    activated cell storing a one, sensed by latch-type amplifiers with a
    small input-referred offset.
    """

    vdd_v: float = 1.2
    discharge_per_cell_v: float = 0.25
    sense_offset_v: float = 0.02
    noise_sigma_v: float = 0.0
    sense_amps_per_bitline: int = 3

    def __post_init__(self) -> None:
        if self.vdd_v <= 0:
            raise ConfigurationError(f"vdd must be positive, got {self.vdd_v}")
        if self.discharge_per_cell_v <= 0:
            raise ConfigurationError(
                f"discharge step must be positive, got {self.discharge_per_cell_v}"
            )
        if not 0 <= self.sense_offset_v < self.discharge_per_cell_v / 2:
            raise ConfigurationError(
                "sense offset must be non-negative and below half a discharge step"
            )
        if self.noise_sigma_v < 0:
            raise ConfigurationError(
                f"noise sigma must be non-negative, got {self.noise_sigma_v}"
            )
        if self.sense_amps_per_bitline < 1:
            raise ConfigurationError("at least one sense amplifier is required")

    def bitline_voltage(self, conducting_cells: int) -> float:
        """RBL voltage after the develop phase for a given cell count."""
        if conducting_cells < 0:
            raise ConfigurationError(
                f"cell count must be non-negative, got {conducting_cells}"
            )
        return self.vdd_v - conducting_cells * self.discharge_per_cell_v

    def reference_voltages(self) -> Tuple[float, ...]:
        """Reference levels placed midway between adjacent discharge levels."""
        return tuple(
            self.vdd_v - (index + 0.5) * self.discharge_per_cell_v
            for index in range(self.sense_amps_per_bitline)
        )


class LatchSenseAmplifier:
    """A conventional latch-type voltage sense amplifier.

    Resolves the sign of ``v_plus - v_minus``.  A deterministic offset and
    an optional Gaussian noise term model the non-ideality that limits how
    close the reference may sit to a discharge level; if the differential
    input (after noise) is smaller than the offset the amplifier cannot be
    trusted and a :class:`SenseMarginError` is raised.
    """

    def __init__(
        self,
        offset_v: float = 0.02,
        noise_sigma_v: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if offset_v < 0:
            raise ConfigurationError(f"offset must be non-negative, got {offset_v}")
        if noise_sigma_v < 0:
            raise ConfigurationError(
                f"noise sigma must be non-negative, got {noise_sigma_v}"
            )
        self.offset_v = offset_v
        self.noise_sigma_v = noise_sigma_v
        self._rng = rng or random.Random(0)
        self.evaluations = 0

    def resolve(self, v_plus: float, v_minus: float) -> bool:
        """Return ``True`` when ``v_plus`` is reliably above ``v_minus``."""
        self.evaluations += 1
        differential = v_plus - v_minus
        if self.noise_sigma_v:
            differential += self._rng.gauss(0.0, self.noise_sigma_v)
        if abs(differential) < self.offset_v:
            raise SenseMarginError(
                f"sense margin {abs(differential) * 1e3:.1f} mV is below the "
                f"amplifier offset {self.offset_v * 1e3:.1f} mV"
            )
        return differential > 0


@dataclass(frozen=True)
class LogicSenseAmpResult:
    """Per-access output of the logic-SA module across a full row."""

    xor3: int
    maj: int
    thermometer_levels: Tuple[int, ...]

    def as_tuple(self) -> Tuple[int, int]:
        """The two carry-save outputs ``(xor3, maj)``."""
        return self.xor3, self.maj


class LogicSenseAmpModule:
    """One logic-SA block per column: three SAs plus decode logic.

    ``evaluate`` maps a :class:`BitlineReadout` (per-column conducting-cell
    counts) to the row-wide XOR3 and MAJ words, modelling each column's
    three sense-amplifier comparisons explicitly.
    """

    def __init__(
        self,
        columns: int,
        parameters: SenseAmpParameters = SenseAmpParameters(),
        rng: Optional[random.Random] = None,
    ) -> None:
        if columns <= 0:
            raise ConfigurationError(f"columns must be positive, got {columns}")
        self.columns = columns
        self.parameters = parameters
        self._rng = rng or random.Random(0)
        self._amplifier = LatchSenseAmplifier(
            offset_v=parameters.sense_offset_v,
            noise_sigma_v=parameters.noise_sigma_v,
            rng=self._rng,
        )
        self.accesses = 0

    # ------------------------------------------------------------------ #
    # per-column behaviour
    # ------------------------------------------------------------------ #
    def column_level(self, conducting_cells: int) -> int:
        """Thermometer-decode one column's discharge level (0..3).

        The three sense amplifiers compare the bitline against the three
        references; the number of references the bitline has fallen below is
        the recovered count.
        """
        voltage = self.parameters.bitline_voltage(conducting_cells)
        level = 0
        for reference in self.parameters.reference_voltages():
            if self._amplifier.resolve(reference, voltage):
                level += 1
        return level

    @staticmethod
    def decode(level: int) -> Tuple[int, int]:
        """Map a recovered count to the ``(xor3, maj)`` bit pair."""
        return level & 1, 1 if level >= 2 else 0

    # ------------------------------------------------------------------ #
    # whole-row behaviour
    # ------------------------------------------------------------------ #
    def evaluate(self, readout: BitlineReadout) -> LogicSenseAmpResult:
        """Resolve a multi-row access into XOR3/MAJ words."""
        if readout.columns != self.columns:
            raise ConfigurationError(
                f"readout width {readout.columns} does not match the "
                f"{self.columns}-column sense-amplifier bank"
            )
        self.accesses += 1
        xor3_word = 0
        maj_word = 0
        levels: List[int] = []
        for column, count in enumerate(readout.column_counts):
            level = self.column_level(count)
            levels.append(level)
            xor3_bit, maj_bit = self.decode(level)
            xor3_word |= xor3_bit << column
            maj_word |= maj_bit << column
        return LogicSenseAmpResult(
            xor3=xor3_word, maj=maj_word, thermometer_levels=tuple(levels)
        )

    # ------------------------------------------------------------------ #
    # robustness analysis helpers
    # ------------------------------------------------------------------ #
    def worst_case_margin_v(self) -> float:
        """Smallest distance between any discharge level and any reference."""
        references = self.parameters.reference_voltages()
        margins = []
        for count in range(self.parameters.sense_amps_per_bitline + 1):
            voltage = self.parameters.bitline_voltage(count)
            margins.extend(abs(voltage - reference) for reference in references)
        return min(margins)

    def failure_probability(self, noise_sigma_v: float) -> float:
        """Analytic probability that one comparison flips under noise.

        Assumes Gaussian bitline/reference noise with the given sigma and
        the worst-case margin; used by the sensing-margin ablation bench.
        """
        if noise_sigma_v <= 0:
            return 0.0
        margin = self.worst_case_margin_v()
        return 0.5 * math.erfc(margin / (noise_sigma_v * math.sqrt(2.0)))
