"""Read / write word-line decoders and drivers.

ModSRAM needs two decoders: a write word-line (WWL) decoder that activates a
single row for write-back, and a read word-line (RWL) decoder/driver block
able to raise up to three read word lines at once (the two accumulator rows
plus the selected LUT row).  The paper notes the decoders are small — about
2 % of the macro area — because the array has only 64 rows; the transistor
estimate here feeds the area model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SramAccessError

__all__ = ["WordlineDecoder", "DecoderBank"]


class WordlineDecoder:
    """A ``log2(rows)``-to-``rows`` one-hot decoder with multi-hot drivers."""

    def __init__(self, rows: int, max_active: int = 1, name: str = "decoder") -> None:
        if rows <= 1:
            raise SramAccessError(f"decoder needs at least 2 rows, got {rows}")
        if max_active < 1:
            raise SramAccessError(f"max_active must be at least 1, got {max_active}")
        self.rows = rows
        self.max_active = max_active
        self.name = name
        self.address_bits = max(1, math.ceil(math.log2(rows)))
        self.activations = 0
        self.wordlines_raised = 0

    def decode(self, addresses: Sequence[int]) -> Tuple[int, ...]:
        """Raise the word lines for ``addresses``; returns the one-hot vector.

        The result is a tuple of ``rows`` bits with a one for every selected
        word line — the value the drivers place on the word lines for one
        access.
        """
        if not addresses:
            raise SramAccessError("decoder requires at least one address")
        unique = tuple(dict.fromkeys(addresses))
        if len(unique) != len(addresses):
            raise SramAccessError(f"duplicate addresses in {addresses!r}")
        if len(unique) > self.max_active:
            raise SramAccessError(
                f"{self.name} can raise at most {self.max_active} word lines, "
                f"{len(unique)} requested"
            )
        for address in unique:
            if not 0 <= address < self.rows:
                raise SramAccessError(
                    f"address {address} out of range for {self.rows} rows"
                )
        self.activations += 1
        self.wordlines_raised += len(unique)
        onehot = [0] * self.rows
        for address in unique:
            onehot[address] = 1
        return tuple(onehot)

    def transistor_estimate(self) -> int:
        """Rough transistor count: predecoders plus a driver per word line.

        Each word line needs an AND of the predecoded address (modelled as a
        ``address_bits``-input gate, ~2 transistors per input) plus a driver
        (4 transistors); multi-hot capability adds one enable transistor per
        supported simultaneous activation.
        """
        gate = 2 * self.address_bits + 4
        return self.rows * (gate + self.max_active)


@dataclass
class DecoderBank:
    """The pair of decoders ModSRAM instantiates (one RWL, one WWL)."""

    read_decoder: WordlineDecoder
    write_decoder: WordlineDecoder

    @classmethod
    def for_array(cls, rows: int, max_read_rows: int = 3) -> "DecoderBank":
        """Build the standard ModSRAM decoder pair for a ``rows``-row array."""
        return cls(
            read_decoder=WordlineDecoder(rows, max_active=max_read_rows, name="rwl"),
            write_decoder=WordlineDecoder(rows, max_active=1, name="wwl"),
        )

    def transistor_estimate(self) -> int:
        """Combined transistor estimate of both decoders."""
        return (
            self.read_decoder.transistor_estimate()
            + self.write_decoder.transistor_estimate()
        )
