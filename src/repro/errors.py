"""Exception hierarchy for the ModSRAM reproduction library.

Every exception raised by :mod:`repro` derives from :class:`ReproError` so
that callers can distinguish library failures from programming errors in
their own code with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class BitWidthError(ReproError, ValueError):
    """An operand does not fit in the declared bit width."""


class OperandRangeError(ReproError, ValueError):
    """An operand violates a range precondition (e.g. ``0 <= a < p``)."""


class ModulusError(ReproError, ValueError):
    """The modulus is invalid for the requested operation."""


class ConfigurationError(ReproError, ValueError):
    """A hardware or algorithm configuration is inconsistent."""


class MemoryMapError(ReproError, ValueError):
    """A request addresses the SRAM memory map incorrectly."""


class SramAccessError(ReproError, ValueError):
    """An SRAM array access is out of range or malformed."""


class ReadDisturbError(ReproError, RuntimeError):
    """A simulated access pattern would corrupt 6T cells (read disturb)."""


class SenseMarginError(ReproError, RuntimeError):
    """The sense amplifier could not resolve the bitline level reliably."""


class ControllerError(ReproError, RuntimeError):
    """The ModSRAM controller reached an illegal state."""


class CurveError(ReproError, ValueError):
    """An elliptic-curve parameter or point is invalid."""


class NttError(ReproError, ValueError):
    """An NTT size or modulus is unsupported."""


class ServiceError(ReproError, RuntimeError):
    """The serving layer could not accept or complete a request."""


class AdmissionError(ServiceError):
    """A request was rejected at admission (queue full — backpressure)."""


class DeadlineError(ServiceError):
    """A request's deadline expired before it could be dispatched."""


class WorkerCrashError(ServiceError):
    """A pool worker died and the job exhausted its cross-shard retries.

    The cluster router raises the same error when a *node* is lost and a
    job exhausts its cross-node re-dispatches: the pool's crash-retry
    contract, generalized over the wire."""


class ProtocolError(ServiceError):
    """A cluster wire frame is malformed, oversized or of unknown type.

    The router answers such frames with a structured error response (the
    connection stays usable); the raising side carries the reason."""
