"""Scheduling elliptic-curve point operations onto one ModSRAM macro.

§5.2 of the paper sizes the 64-row array so that "operands of a point
addition operation" stay resident while its several modular multiplications
execute, and argues that LUT reuse across those multiplications is what makes
the in-memory approach pay off.  This module makes that argument executable:
it takes the multiplication sequence of a Jacobian point operation, assigns
every live value to an operand word line, decides for each multiplication
whether the resident radix-4 LUT can be reused (same multiplicand as the
previous multiplication) and produces a cycle/row budget for the whole point
operation — the quantity the ECC examples project end-to-end latency from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MemoryMapError
from repro.modsram.config import ModSRAMConfig, PAPER_CONFIG
from repro.modsram.memory_map import MemoryMap

__all__ = [
    "ScheduledMultiplication",
    "PointOperationSchedule",
    "PointOperationScheduler",
    "MIXED_ADDITION_SEQUENCE",
    "DOUBLING_SEQUENCE",
]

#: Multiplication sequence of a mixed Jacobian addition (8M + 3S for a = 0
#: curves): each entry is ``(product, multiplier, multiplicand)`` over the
#: named live values of the formula.
MIXED_ADDITION_SEQUENCE: Tuple[Tuple[str, str, str], ...] = (
    ("z1z1", "z1", "z1"),
    ("u2", "x2", "z1z1"),
    ("t0", "y2", "z1z1"),
    ("s2", "t0", "z1"),
    ("hh", "h", "h"),
    ("hhh", "hh", "h"),
    ("v", "x1", "hh"),
    ("rr", "r", "r"),
    ("t1", "r", "v_minus_x3"),
    ("t2", "y1", "hhh"),
    ("z3", "z1", "h"),
)

#: Multiplication sequence of a Jacobian doubling (4M + 4S for a = 0 curves).
DOUBLING_SEQUENCE: Tuple[Tuple[str, str, str], ...] = (
    ("yy", "y1", "y1"),
    ("s", "x1", "yy"),
    ("xx", "x1", "x1"),
    ("mm", "m", "m"),
    ("yyyy", "yy", "yy"),
    ("t0", "m", "s_minus_x3"),
    ("z3", "y1", "z1"),
    ("xx3", "xx", "three"),
)


@dataclass(frozen=True)
class ScheduledMultiplication:
    """One modular multiplication placed on the macro."""

    index: int
    product: str
    multiplier: str
    multiplicand: str
    multiplier_row: int
    multiplicand_row: int
    product_row: int
    lut_reused: bool
    iteration_cycles: int
    precompute_cycles: int

    @property
    def total_cycles(self) -> int:
        """Cycles charged to this multiplication (loop + LUT fill)."""
        return self.iteration_cycles + self.precompute_cycles


@dataclass(frozen=True)
class PointOperationSchedule:
    """The complete schedule of one point operation on one macro."""

    operation: str
    multiplications: Tuple[ScheduledMultiplication, ...]
    operand_rows_used: int
    lut_rows_used: int

    @property
    def multiplication_count(self) -> int:
        """Number of modular multiplications in the operation."""
        return len(self.multiplications)

    @property
    def iteration_cycles(self) -> int:
        """Main-loop cycles summed over every multiplication."""
        return sum(entry.iteration_cycles for entry in self.multiplications)

    @property
    def precompute_cycles(self) -> int:
        """LUT-fill cycles actually paid (reuse removes most of them)."""
        return sum(entry.precompute_cycles for entry in self.multiplications)

    @property
    def total_cycles(self) -> int:
        """Every cycle of the point operation's multiplications."""
        return self.iteration_cycles + self.precompute_cycles

    @property
    def lut_reuse_rate(self) -> float:
        """Fraction of multiplications that reused the resident radix-4 LUT."""
        if not self.multiplications:
            return 0.0
        reused = sum(1 for entry in self.multiplications if entry.lut_reused)
        return reused / len(self.multiplications)

    def latency_us(self, frequency_mhz: float) -> float:
        """Wall-clock latency at a given clock."""
        return self.total_cycles / frequency_mhz

    def as_dict(self) -> Dict[str, object]:
        """Summary for reports."""
        return {
            "operation": self.operation,
            "multiplications": self.multiplication_count,
            "iteration_cycles": self.iteration_cycles,
            "precompute_cycles": self.precompute_cycles,
            "total_cycles": self.total_cycles,
            "operand_rows_used": self.operand_rows_used,
            "lut_rows_used": self.lut_rows_used,
            "lut_reuse_rate": self.lut_reuse_rate,
        }


class PointOperationScheduler:
    """Places the multiplications of a point operation onto one macro."""

    #: Cycles to fill the radix-4 LUT for a new multiplicand (five row writes
    #: plus the near-memory computation of 2B, -B, -2B — see the accelerator).
    RADIX4_PRECOMPUTE_CYCLES = 5 + 6

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        self.config = config or PAPER_CONFIG
        self.memory_map = MemoryMap(self.config)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        sequence: Sequence[Tuple[str, str, str]],
        operation: str = "point-operation",
        preloaded: Sequence[str] = ("x1", "y1", "z1", "x2", "y2", "modulus"),
    ) -> PointOperationSchedule:
        """Assign rows and LUT reuse for a multiplication sequence.

        ``preloaded`` names the values already resident in the operand region
        before the operation starts (the input point coordinates and the
        modulus).  Every product is written to a fresh operand row; the
        overflow LUT depends only on the modulus and is never refilled.
        """
        row_of: Dict[str, int] = {}
        next_slot = 0

        def assign(name: str) -> int:
            nonlocal next_slot
            if name in row_of:
                return row_of[name]
            if next_slot >= len(self.memory_map.operand_region):
                raise MemoryMapError(
                    f"point operation needs more than the "
                    f"{len(self.memory_map.operand_region)} operand rows the "
                    "macro provides"
                )
            row_of[name] = self.memory_map.operand_row(next_slot)
            next_slot += 1
            return row_of[name]

        for name in preloaded:
            assign(name)

        scheduled: List[ScheduledMultiplication] = []
        resident_multiplicand: Optional[str] = None
        for index, (product, multiplier, multiplicand) in enumerate(sequence):
            multiplier_row = assign(multiplier)
            multiplicand_row = assign(multiplicand)
            product_row = assign(product)
            reused = multiplicand == resident_multiplicand
            precompute = 0 if reused else self.RADIX4_PRECOMPUTE_CYCLES
            scheduled.append(
                ScheduledMultiplication(
                    index=index,
                    product=product,
                    multiplier=multiplier,
                    multiplicand=multiplicand,
                    multiplier_row=multiplier_row,
                    multiplicand_row=multiplicand_row,
                    product_row=product_row,
                    lut_reused=reused,
                    iteration_cycles=self.config.expected_iteration_cycles,
                    precompute_cycles=precompute,
                )
            )
            resident_multiplicand = multiplicand

        return PointOperationSchedule(
            operation=operation,
            multiplications=tuple(scheduled),
            operand_rows_used=next_slot,
            lut_rows_used=self.config.lut_rows,
        )

    # ------------------------------------------------------------------ #
    # canned operations
    # ------------------------------------------------------------------ #
    def schedule_mixed_addition(self) -> PointOperationSchedule:
        """Schedule of one mixed Jacobian point addition (8M + 3S)."""
        return self.schedule(MIXED_ADDITION_SEQUENCE, operation="mixed-addition")

    def schedule_doubling(self) -> PointOperationSchedule:
        """Schedule of one Jacobian point doubling (4M + 4S)."""
        return self.schedule(
            DOUBLING_SEQUENCE,
            operation="doubling",
            preloaded=("x1", "y1", "z1", "modulus", "three"),
        )

    def scalar_multiplication_cycles(self, scalar_bits: int) -> int:
        """Projected cycles of a double-and-add scalar multiplication.

        ``scalar_bits`` doublings plus (on average) half as many additions,
        each using the canned schedules above.
        """
        if scalar_bits <= 0:
            raise MemoryMapError(f"scalar_bits must be positive, got {scalar_bits}")
        doubling = self.schedule_doubling().total_cycles
        addition = self.schedule_mixed_addition().total_cycles
        return scalar_bits * doubling + (scalar_bits // 2) * addition
