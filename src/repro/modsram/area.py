"""Parametric area model of the ModSRAM macro (Figure 5 / Table 3).

The paper reports 0.053 mm² in 65 nm for the 64 × 256 macro, broken down as
67 % SRAM array, 20 % in-memory circuit (the three sense amplifiers per read
bitline plus the LUT-select mux), 11 % near-memory circuit (three full-width
flip-flop registers, shifters, Booth encoder, overflow logic and the
controller) and 2 % word-line decoders, and a 32 % area overhead over a
plain SRAM macro of the same capacity (which already contains one sense
amplifier per column and a word-line decoder).

The model rebuilds those numbers from per-component primitives (8T cell,
latch-type SA, DFF, NAND2-equivalent gate) whose 65 nm areas are calibrated
so the default configuration lands on the published total and breakdown; the
same primitives then produce breakdowns for any other configuration, which
is what the ablation benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError
from repro.modsram.config import ModSRAMConfig

__all__ = ["AreaParameters", "AreaBreakdown", "AreaModel", "PAPER_AREA_MM2"]

#: Total macro area reported by the paper (mm², 65 nm, 64 x 256).
PAPER_AREA_MM2 = 0.053

#: Breakdown percentages reported in Figure 5.
PAPER_BREAKDOWN_PERCENT = {
    "sram_array": 67.0,
    "in_memory_circuit": 20.0,
    "near_memory_circuit": 11.0,
    "decoder": 2.0,
}

#: Area overhead over a plain SRAM macro of the same capacity (§5.3).
PAPER_AREA_OVERHEAD_PERCENT = 32.0


@dataclass(frozen=True)
class AreaParameters:
    """Per-component layout areas (µm², 65 nm full-custom / synthesized)."""

    cell_area_um2: float = 2.165
    sense_amp_area_um2: float = 13.45
    column_mux_area_um2: float = 0.45
    #: Effective area per near-memory register bit (latch-based register
    #: file, synthesised); calibrated against the Figure 5 breakdown.
    flipflop_area_um2: float = 4.1
    nand2_area_um2: float = 1.44
    wordline_driver_area_um2: float = 3.1
    #: NAND2-equivalent gates of the Booth encoder, overflow logic, shifters
    #: (per register bit) and the controller FSM.
    booth_encoder_gates: int = 18
    overflow_logic_gates: int = 26
    shifter_gates_per_bit: int = 2
    controller_gates: int = 420

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def scaled_to(self, technology_nm: int, reference_nm: int = 65) -> "AreaParameters":
        """Scale every area quadratically with the technology node."""
        if technology_nm <= 0:
            raise ConfigurationError(
                f"technology node must be positive, got {technology_nm}"
            )
        factor = (technology_nm / reference_nm) ** 2
        return AreaParameters(
            cell_area_um2=self.cell_area_um2 * factor,
            sense_amp_area_um2=self.sense_amp_area_um2 * factor,
            column_mux_area_um2=self.column_mux_area_um2 * factor,
            flipflop_area_um2=self.flipflop_area_um2 * factor,
            nand2_area_um2=self.nand2_area_um2 * factor,
            wordline_driver_area_um2=self.wordline_driver_area_um2 * factor,
            booth_encoder_gates=self.booth_encoder_gates,
            overflow_logic_gates=self.overflow_logic_gates,
            shifter_gates_per_bit=self.shifter_gates_per_bit,
            controller_gates=self.controller_gates,
        )


@dataclass(frozen=True)
class AreaBreakdown:
    """Component areas in mm² plus derived summary figures."""

    sram_array_mm2: float
    in_memory_circuit_mm2: float
    near_memory_circuit_mm2: float
    decoder_mm2: float

    @property
    def total_mm2(self) -> float:
        """Total macro area."""
        return (
            self.sram_array_mm2
            + self.in_memory_circuit_mm2
            + self.near_memory_circuit_mm2
            + self.decoder_mm2
        )

    @property
    def percentages(self) -> Dict[str, float]:
        """Per-component share of the total, in percent (Figure 5)."""
        total = self.total_mm2
        return {
            "sram_array": 100.0 * self.sram_array_mm2 / total,
            "in_memory_circuit": 100.0 * self.in_memory_circuit_mm2 / total,
            "near_memory_circuit": 100.0 * self.near_memory_circuit_mm2 / total,
            "decoder": 100.0 * self.decoder_mm2 / total,
        }

    def as_dict(self) -> Dict[str, float]:
        """Areas plus total for the analysis layer."""
        return {
            "sram_array_mm2": self.sram_array_mm2,
            "in_memory_circuit_mm2": self.in_memory_circuit_mm2,
            "near_memory_circuit_mm2": self.near_memory_circuit_mm2,
            "decoder_mm2": self.decoder_mm2,
            "total_mm2": self.total_mm2,
        }


class AreaModel:
    """Computes the macro area of a :class:`ModSRAMConfig`."""

    def __init__(
        self,
        config: ModSRAMConfig,
        parameters: AreaParameters = AreaParameters(),
    ) -> None:
        self.config = config
        self.parameters = (
            parameters
            if config.technology_nm == 65
            else parameters.scaled_to(config.technology_nm)
        )

    # ------------------------------------------------------------------ #
    # component areas
    # ------------------------------------------------------------------ #
    def sram_array_area_um2(self) -> float:
        """Area of the cell array."""
        return self.parameters.cell_area_um2 * self.config.rows * self.config.columns

    def in_memory_circuit_area_um2(self) -> float:
        """Area of the logic-SA block: three SAs and a mux per read bitline."""
        per_column = (
            3 * self.parameters.sense_amp_area_um2 + self.parameters.column_mux_area_um2
        )
        return per_column * self.config.columns

    def near_memory_circuit_area_um2(self) -> float:
        """Area of the NMC: registers, shifters, encoder, overflow logic, controller."""
        register_bits = self.config.bitwidth + 2 * self.config.register_width + 8
        registers = register_bits * self.parameters.flipflop_area_um2
        shifters = (
            2
            * self.config.register_width
            * self.parameters.shifter_gates_per_bit
            * self.parameters.nand2_area_um2
        )
        logic_gates = (
            self.parameters.booth_encoder_gates
            + self.parameters.overflow_logic_gates
            + self.parameters.controller_gates
        )
        logic = logic_gates * self.parameters.nand2_area_um2
        return registers + shifters + logic

    def decoder_area_um2(self) -> float:
        """Area of the read and write word-line decoders and drivers."""
        # Two decoders (RWL is triple-ported); drivers on every word line.
        driver_area = 3 * self.config.rows * self.parameters.wordline_driver_area_um2
        gate_count = 2 * self.config.rows * 6  # predecode + final AND per WL
        return driver_area + gate_count * self.parameters.nand2_area_um2 * 0.5

    # ------------------------------------------------------------------ #
    # reports
    # ------------------------------------------------------------------ #
    def breakdown(self) -> AreaBreakdown:
        """Full breakdown in mm² (Figure 5)."""
        return AreaBreakdown(
            sram_array_mm2=self.sram_array_area_um2() * 1e-6,
            in_memory_circuit_mm2=self.in_memory_circuit_area_um2() * 1e-6,
            near_memory_circuit_mm2=self.near_memory_circuit_area_um2() * 1e-6,
            decoder_mm2=self.decoder_area_um2() * 1e-6,
        )

    def total_mm2(self) -> float:
        """Total macro area in mm²."""
        return self.breakdown().total_mm2

    def baseline_sram_mm2(self) -> float:
        """Area of a plain SRAM macro with the same capacity.

        A conventional macro already contains the cell array, one sense
        amplifier per column and a single word-line decoder; the PIM overhead
        (two extra SAs per column, the mux, the NMC and the second decoder)
        is measured against this baseline, giving the paper's 32 % figure.
        """
        array = self.sram_array_area_um2()
        sense = self.config.columns * self.parameters.sense_amp_area_um2
        decoder = self.decoder_area_um2() / 2.0
        return (array + sense + decoder) * 1e-6

    def overhead_percent(self) -> float:
        """PIM area overhead over the plain SRAM baseline (§5.3, ≈32 %)."""
        baseline = self.baseline_sram_mm2()
        return 100.0 * (self.total_mm2() - baseline) / baseline
