"""Cycle-level model of the ModSRAM accelerator.

:class:`ModSRAMAccelerator` is the **cycle** fidelity tier of the layered
simulation core: it executes the shared R4CSA-LUT algorithm body
(:mod:`repro.modsram.kernel`) on the behavioural SRAM substrate.  Every LUT
entry, operand and intermediate lives in an actual simulated word line,
every carry-save addition is performed by the logic-SA sense-amplifier model
on three simultaneously activated rows, every write-back goes through the
write port, and the controller FSM charges exactly one clock cycle per array
access.  The result is both the product (verified against the big-integer
oracle in the tests) and a cycle/area/energy report that reproduces the
paper's evaluation numbers (767 main-loop cycles at 256 bits under the
paper's schedule).

Trace collection is a pluggable :class:`~repro.modsram.tracesink.TraceSink`:
the default run allocates no per-cycle events at all; pass ``trace=True``
(or an explicit ``trace_sink``) to collect the full Figure 3-style
walk-through.  The cheaper **functional** and **analytical** tiers live in
:mod:`repro.modsram.functional` and :mod:`repro.modsram.analytical` and run
the same kernel without the SRAM substrate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.instrumentation import OperationCounter
from repro.modsram.config import ModSRAMConfig
from repro.modsram.controller import Controller, ControllerState
from repro.modsram.datapath import NearMemoryDatapath
from repro.modsram.kernel import (
    NMC_COUNTER_OF_KIND,
    KernelHost,
    LutResidency,
    run_kernel,
)
from repro.modsram.memory_map import MemoryMap
from repro.modsram.report import CycleReport, MultiplicationResult
from repro.modsram.trace import CycleEvent, ExecutionTrace, Phase
from repro.modsram.tracesink import NULL_SINK, TraceSink
from repro.sram.array import SramArray
from repro.sram.decoder import DecoderBank
from repro.sram.sense_amp import LogicSenseAmpModule

__all__ = ["CycleReport", "MultiplicationResult", "ModSRAMAccelerator"]


class ModSRAMAccelerator(KernelHost):
    """Executes 256-bit (or any configured width) modular multiplication in SRAM."""

    def __init__(
        self,
        config: Optional[ModSRAMConfig] = None,
        trace: bool = False,
        trace_sink: Optional[TraceSink] = None,
    ) -> None:
        self.config = config or ModSRAMConfig()
        self.memory_map = MemoryMap(self.config)
        self.array = SramArray(
            rows=self.config.rows,
            cols=self.config.columns,
            cell=self.config.cell,
            name="modsram-array",
        )
        self.sense_module = LogicSenseAmpModule(
            columns=self.config.columns, parameters=self.config.sense
        )
        self.decoders = DecoderBank.for_array(self.config.rows)
        self.datapath = NearMemoryDatapath(self.config)
        self.counter = OperationCounter("modsram")
        self.trace_enabled = trace or trace_sink is not None
        #: Legacy per-multiplication trace; rebuilt on each multiply when the
        #: accelerator owns its sink (``trace=True``).
        self.trace = ExecutionTrace(enabled=trace and trace_sink is None)
        self._external_sink = trace_sink
        self._sink: TraceSink = trace_sink if trace_sink is not None else (
            self.trace if trace else NULL_SINK
        )
        self._controller: Optional[Controller] = None
        # Resident LUT state for data reuse across multiplications.
        self.lut_residency = LutResidency()

    # ------------------------------------------------------------------ #
    # kernel-host interface (each array access is one clock cycle)
    # ------------------------------------------------------------------ #
    def transition(self, state: ControllerState) -> None:
        assert self._controller is not None
        self._controller.transition(state)

    def begin_iteration(self, iteration: int) -> None:
        assert self._controller is not None
        self._controller.begin_iteration(iteration)

    def write_row(
        self,
        phase: Phase,
        row: int,
        value: int,
        iteration: Optional[int] = None,
        note: str = "",
    ) -> None:
        self.decoders.write_decoder.decode([row])
        self.array.write_row(row, value)
        cycle = self._controller.tick(phase)
        self.counter.increment("memory_write")
        sink = self._sink
        if sink.active:
            sink.record(
                CycleEvent(
                    cycle=cycle,
                    phase=phase,
                    iteration=iteration,
                    rows_written=(row,),
                    note=note,
                )
            )

    def read_row(
        self,
        phase: Phase,
        row: int,
        iteration: Optional[int] = None,
        note: str = "",
    ) -> int:
        self.decoders.read_decoder.decode([row])
        readout = self.array.activate_rows([row])
        cycle = self._controller.tick(phase)
        self.counter.increment("memory_read")
        sink = self._sink
        if sink.active:
            sink.record(
                CycleEvent(
                    cycle=cycle,
                    phase=phase,
                    iteration=iteration,
                    rows_read=(row,),
                    note=note,
                )
            )
        return readout.exact_value()

    def nmc_cycle(
        self,
        phase: Phase,
        note: str,
        iteration: Optional[int] = None,
        kind: str = "nmc",
    ) -> None:
        """One clock cycle spent purely in the near-memory circuit."""
        cycle = self._controller.tick(phase)
        counter_name = NMC_COUNTER_OF_KIND.get(kind)
        if counter_name is not None:
            self.counter.increment(counter_name)
        sink = self._sink
        if sink.active:
            sink.record(
                CycleEvent(cycle=cycle, phase=phase, iteration=iteration, note=note)
            )

    def imc_access(
        self,
        phase: Phase,
        rows: Tuple[int, int, int],
        iteration: int,
        digit: Optional[int] = None,
        overflow_index: Optional[int] = None,
    ) -> Tuple[int, int]:
        """One logic-SA access: activate three rows, sense XOR3 and MAJ."""
        self.decoders.read_decoder.decode(list(rows))
        readout = self.array.activate_rows(list(rows))
        result = self.sense_module.evaluate(readout)
        cycle = self._controller.tick(phase)
        self.counter.increment("imc_access")
        sink = self._sink
        if sink.active:
            sink.record(
                CycleEvent(
                    cycle=cycle,
                    phase=phase,
                    iteration=iteration,
                    rows_read=rows,
                    digit=digit,
                    overflow_index=overflow_index,
                )
            )
        return result.xor3, result.maj

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def multiply(self, a: int, b: int, modulus: int) -> MultiplicationResult:
        """Compute ``a * b mod modulus`` on the simulated macro."""
        if self._external_sink is None:
            # The accelerator owns its trace: one ExecutionTrace per run,
            # enabled only when the caller opted in at construction.
            self.trace = ExecutionTrace(enabled=self.trace_enabled)
            self._sink = self.trace if self.trace_enabled else NULL_SINK
        self._controller = Controller(self.config.iterations)

        outcome = run_kernel(self, a, b, modulus)

        budget = self._controller.budget
        report = CycleReport(
            iterations=self.config.iterations,
            load_cycles=budget.load_cycles,
            precompute_cycles=budget.precompute_cycles,
            iteration_cycles=budget.iteration_cycles,
            finalize_cycles=budget.finalize_cycles,
            extra_overflow_folds=outcome.extra_overflow_folds,
            lut_reused=outcome.lut_reused,
            frequency_mhz=self.config.frequency_mhz,
        )
        self.counter.increment("modmul")
        return MultiplicationResult(
            product=outcome.product, report=report, trace=self.trace
        )

    def multiply_many(
        self, pairs: List[Tuple[int, int]], modulus: int
    ) -> List[MultiplicationResult]:
        """Multiply a batch of operand pairs, reusing LUTs where possible."""
        return [self.multiply(a, b, modulus) for a, b in pairs]

    # ------------------------------------------------------------------ #
    # reporting helpers
    # ------------------------------------------------------------------ #
    def expected_iteration_cycles(self) -> int:
        """The analytic main-loop cycle count for this configuration."""
        return self.config.expected_iteration_cycles

    def utilization(self, operand_rows_used: int = 3):
        """Row-utilisation summary (Figure 6) for this macro."""
        return self.memory_map.utilization(operand_rows_used)

    def energy_report(self):
        """Energy breakdown implied by the accesses performed so far."""
        return self.config.energy.from_stats(
            self.array.stats, self.datapath.stats.register_bits_written
        )
