"""Cycle-level model of the ModSRAM accelerator.

:class:`ModSRAMAccelerator` executes the R4CSA-LUT algorithm on the
behavioural SRAM substrate: every LUT entry, operand and intermediate lives
in an actual simulated word line, every carry-save addition is performed by
the logic-SA sense-amplifier model on three simultaneously activated rows,
every write-back goes through the write port, and the controller FSM charges
exactly one clock cycle per array access.  The result is both the product
(verified against the big-integer oracle in the tests) and a cycle/area/
energy report that reproduces the paper's evaluation numbers (767 main-loop
cycles at 256 bits under the paper's schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.luts import RADIX4_DIGIT_ORDER, build_overflow_lut, build_radix4_lut
from repro.errors import ControllerError, OperandRangeError
from repro.instrumentation import OperationCounter
from repro.modsram.config import ModSRAMConfig
from repro.modsram.controller import Controller, ControllerState, CycleBudget
from repro.modsram.datapath import NearMemoryDatapath
from repro.modsram.memory_map import MemoryMap
from repro.modsram.trace import CycleEvent, ExecutionTrace, Phase
from repro.sram.array import SramArray
from repro.sram.decoder import DecoderBank
from repro.sram.sense_amp import LogicSenseAmpModule

__all__ = ["CycleReport", "MultiplicationResult", "ModSRAMAccelerator"]


@dataclass(frozen=True)
class CycleReport:
    """Cycle accounting for one modular multiplication."""

    iterations: int
    load_cycles: int
    precompute_cycles: int
    iteration_cycles: int
    finalize_cycles: int
    extra_overflow_folds: int
    lut_reused: bool
    frequency_mhz: float

    @property
    def total_cycles(self) -> int:
        """Every cycle spent, including loading and LUT precomputation."""
        return (
            self.load_cycles
            + self.precompute_cycles
            + self.iteration_cycles
            + self.finalize_cycles
        )

    @property
    def latency_us(self) -> float:
        """Wall-clock latency of the main loop at the modelled frequency."""
        return self.iteration_cycles / self.frequency_mhz

    def as_dict(self) -> Dict[str, float]:
        """Report as a dictionary for the analysis layer."""
        return {
            "iterations": self.iterations,
            "load_cycles": self.load_cycles,
            "precompute_cycles": self.precompute_cycles,
            "iteration_cycles": self.iteration_cycles,
            "finalize_cycles": self.finalize_cycles,
            "extra_overflow_folds": self.extra_overflow_folds,
            "total_cycles": self.total_cycles,
            "lut_reused": int(self.lut_reused),
            "frequency_mhz": self.frequency_mhz,
            "latency_us": self.latency_us,
        }


@dataclass(frozen=True)
class MultiplicationResult:
    """Product plus the execution metadata of one run."""

    product: int
    report: CycleReport
    trace: ExecutionTrace


class ModSRAMAccelerator:
    """Executes 256-bit (or any configured width) modular multiplication in SRAM."""

    def __init__(self, config: Optional[ModSRAMConfig] = None, trace: bool = False) -> None:
        self.config = config or ModSRAMConfig()
        self.memory_map = MemoryMap(self.config)
        self.array = SramArray(
            rows=self.config.rows,
            cols=self.config.columns,
            cell=self.config.cell,
            name="modsram-array",
        )
        self.sense_module = LogicSenseAmpModule(
            columns=self.config.columns, parameters=self.config.sense
        )
        self.decoders = DecoderBank.for_array(self.config.rows)
        self.datapath = NearMemoryDatapath(self.config)
        self.counter = OperationCounter("modsram")
        self.trace_enabled = trace
        self.trace = ExecutionTrace(enabled=trace)
        # Cached LUT state for data reuse across multiplications.
        self._cached_multiplicand: Optional[int] = None
        self._cached_modulus: Optional[int] = None

    # ------------------------------------------------------------------ #
    # low-level array operations (each is one clock cycle)
    # ------------------------------------------------------------------ #
    def _write_row(
        self,
        controller: Controller,
        phase: Phase,
        row: int,
        value: int,
        iteration: Optional[int] = None,
        note: str = "",
    ) -> None:
        self.decoders.write_decoder.decode([row])
        self.array.write_row(row, value)
        cycle = controller.tick(phase)
        self.counter.increment("memory_write")
        self.trace.record(
            CycleEvent(
                cycle=cycle,
                phase=phase,
                iteration=iteration,
                rows_written=(row,),
                note=note,
            )
        )

    def _read_row(
        self,
        controller: Controller,
        phase: Phase,
        row: int,
        iteration: Optional[int] = None,
        note: str = "",
    ) -> int:
        self.decoders.read_decoder.decode([row])
        readout = self.array.activate_rows([row])
        cycle = controller.tick(phase)
        self.counter.increment("memory_read")
        self.trace.record(
            CycleEvent(
                cycle=cycle,
                phase=phase,
                iteration=iteration,
                rows_read=(row,),
                note=note,
            )
        )
        return readout.exact_value()

    def _nmc_cycle(
        self,
        controller: Controller,
        phase: Phase,
        note: str,
        iteration: Optional[int] = None,
    ) -> None:
        """One clock cycle spent purely in the near-memory circuit."""
        cycle = controller.tick(phase)
        self.trace.record(
            CycleEvent(cycle=cycle, phase=phase, iteration=iteration, note=note)
        )

    def _imc_access(
        self,
        controller: Controller,
        phase: Phase,
        rows: Tuple[int, int, int],
        iteration: int,
        digit: Optional[int] = None,
        overflow_index: Optional[int] = None,
    ) -> Tuple[int, int]:
        """One logic-SA access: activate three rows, sense XOR3 and MAJ."""
        self.decoders.read_decoder.decode(list(rows))
        readout = self.array.activate_rows(list(rows))
        result = self.sense_module.evaluate(readout)
        cycle = controller.tick(phase)
        self.counter.increment("imc_access")
        self.trace.record(
            CycleEvent(
                cycle=cycle,
                phase=phase,
                iteration=iteration,
                rows_read=rows,
                digit=digit,
                overflow_index=overflow_index,
            )
        )
        return result.xor3, result.maj

    # ------------------------------------------------------------------ #
    # operand loading and LUT precomputation
    # ------------------------------------------------------------------ #
    def _validate_operands(self, a: int, b: int, modulus: int) -> None:
        n = self.config.bitwidth
        if modulus <= 2:
            raise OperandRangeError(f"modulus must be greater than 2, got {modulus}")
        if modulus.bit_length() > n:
            raise OperandRangeError(
                f"modulus needs {modulus.bit_length()} bits but the macro is "
                f"configured for {n}"
            )
        if modulus.bit_length() < n - 2:
            raise OperandRangeError(
                f"the macro is sized for {n}-bit moduli but the modulus only "
                f"needs {modulus.bit_length()} bits; reconfigure with "
                "ModSRAMConfig.with_bitwidth(modulus.bit_length()) so the "
                "redundant registers and the final reduction stay bounded"
            )
        for name, operand in (("a", a), ("b", b)):
            if not 0 <= operand < modulus:
                raise OperandRangeError(
                    f"operand {name} must satisfy 0 <= {name} < p, got {operand}"
                )
        if not self.config.extend_for_full_range:
            top_bit = 2 * self.config.iterations - 1
            if (a >> top_bit) & 1:
                raise OperandRangeError(
                    "the paper-mode schedule (extend_for_full_range=False) "
                    "requires the multiplier's top bit to be clear; operand a "
                    f"has bit {top_bit} set — use a full-range configuration"
                )

    def _load_operands(self, controller: Controller, a: int, b: int, modulus: int) -> None:
        """Write A, B, p to their word lines and latch the multiplier."""
        controller.transition(ControllerState.LOAD)
        mm = self.memory_map
        self._write_row(controller, Phase.LOAD_MULTIPLIER, mm.multiplier_row, a, note="A")
        self._write_row(controller, Phase.LOAD_MULTIPLIER, mm.multiplicand_row, b, note="B")
        self._write_row(controller, Phase.LOAD_MULTIPLIER, mm.modulus_row, modulus, note="p")
        # Clear the accumulator rows left over from any previous result.
        self._write_row(
            controller, Phase.LOAD_MULTIPLIER, mm.sum_row, 0, note="clear sum"
        )
        self._write_row(
            controller, Phase.LOAD_MULTIPLIER, mm.carry_row, 0, note="clear carry"
        )
        multiplier = self._read_row(
            controller, Phase.LOAD_MULTIPLIER, mm.multiplier_row, note="A -> FF"
        )
        self.datapath.load_multiplier(multiplier)
        self.datapath.set_accumulator_msbs(0, 0)
        self.datapath.set_shift_overflow(0)
        self.datapath.set_pending_carry_out(0)

    def _precompute_luts(self, controller: Controller, b: int, modulus: int) -> bool:
        """Fill the radix-4 and overflow LUT word lines.

        Returns ``True`` when the cached tables were reused (same
        multiplicand and modulus as the previous multiplication), in which
        case no cycles are charged — this is the data-reuse behaviour the
        paper highlights.
        """
        reused = (
            self._cached_multiplicand == b and self._cached_modulus == modulus
        )
        controller.transition(ControllerState.PRECOMPUTE)
        if reused:
            return True

        mm = self.memory_map
        radix4 = build_radix4_lut(b, modulus)
        overflow = build_overflow_lut(
            modulus, self.config.register_width, entry_count=len(mm.overflow_rows)
        )
        # Near-memory computation of the non-trivial entries is charged one
        # cycle per modular add/subtract (see DESIGN.md §4); the writes are
        # one cycle per word line like any other write.
        compute_cycles = radix4.computed_entry_count() * 2 + (len(overflow) - 1) * 2
        for _ in range(compute_cycles):
            self._nmc_cycle(controller, Phase.PRECOMPUTE, "nmc LUT computation")
        self.counter.add("nmc_compute", compute_cycles)

        for digit in RADIX4_DIGIT_ORDER:
            self._write_row(
                controller,
                Phase.PRECOMPUTE,
                mm.radix4_row(digit),
                radix4[digit],
                note=f"LUT-radix4[{digit:+d}]",
            )
        for index, row in enumerate(mm.overflow_rows):
            self._write_row(
                controller,
                Phase.PRECOMPUTE,
                row,
                overflow[index],
                note=f"LUT-overflow[{index}]",
            )
        self._cached_multiplicand = b
        self._cached_modulus = modulus
        return False

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def _carry_save_step(
        self,
        controller: Controller,
        phase: Phase,
        lut_row: int,
        iteration: int,
        digit: Optional[int],
        overflow_index: Optional[int],
    ) -> Tuple[int, int, int]:
        """One in-memory carry-save addition against a LUT row.

        The logic-SA produces XOR3/MAJ of the low ``n`` bits; the near-memory
        logic extends them with bit ``n`` of the redundant registers (the LUT
        entry's bit ``n`` is always zero because every entry is below the
        modulus).  Returns the full-width new sum, the new carry (already
        shifted left by one) and the carry word's escaped top bit.
        """
        n = self.config.bitwidth
        width = self.config.register_width
        mm = self.memory_map

        xor_low, maj_low = self._imc_access(
            controller,
            phase,
            (lut_row, mm.sum_row, mm.carry_row),
            iteration,
            digit=digit,
            overflow_index=overflow_index,
        )
        sum_msb = self.datapath.sum_msb
        carry_msb = self.datapath.carry_msb
        xor_top = sum_msb ^ carry_msb
        maj_top = sum_msb & carry_msb

        new_sum = xor_low | (xor_top << n)
        maj_word = maj_low | (maj_top << n)
        shifted_carry = maj_word << 1
        escaped = shifted_carry >> width
        new_carry = shifted_carry & ((1 << width) - 1)
        self.datapath.latch_imc_result(new_sum, maj_word)
        return new_sum, new_carry, escaped

    def _writeback(
        self,
        controller: Controller,
        value: int,
        row: int,
        msb_setter: str,
        shift: int,
        iteration: int,
        note: str,
    ) -> int:
        """Write a redundant register back to its row, optionally pre-shifted.

        Returns the overflow bits that escaped the register because of the
        shift (captured by the near-memory overflow flip-flops).
        """
        n = self.config.bitwidth
        width = self.config.register_width
        shifted = value << shift
        overflow = shifted >> width
        shifted &= (1 << width) - 1
        phase = Phase.WRITEBACK_SUM if msb_setter == "sum" else Phase.WRITEBACK_CARRY
        self._write_row(
            controller, phase, row, shifted & ((1 << n) - 1), iteration, note
        )
        if msb_setter == "sum":
            self.datapath.set_accumulator_msbs((shifted >> n) & 1, self.datapath.carry_msb)
        else:
            self.datapath.set_accumulator_msbs(self.datapath.sum_msb, (shifted >> n) & 1)
        return overflow

    def _run_iterations(
        self, controller: Controller, modulus: int
    ) -> Tuple[int, int, int, int]:
        """Execute the main loop; returns (sum, carry, pending, extra_folds)."""
        mm = self.memory_map
        width = self.config.register_width
        iterations = self.config.iterations
        controller.transition(ControllerState.ITERATE)

        extra_folds = 0
        final_sum = 0
        final_carry = 0
        pending_weight_bits = 0

        for iteration in range(iterations):
            controller.begin_iteration(iteration)
            last = iteration == iterations - 1
            digit = self.datapath.booth_digit(iteration, iterations)

            # ---- first section: add the Booth-digit entry ---------------- #
            new_sum, new_carry, escaped = self._carry_save_step(
                controller,
                Phase.IMC_RADIX4,
                mm.radix4_row(digit),
                iteration,
                digit=digit,
                overflow_index=None,
            )
            self._writeback(
                controller, new_sum, mm.sum_row, "sum", 0, iteration, "sum"
            )
            self._writeback(
                controller, new_carry, mm.carry_row, "carry", 0, iteration, "carry<<1"
            )

            # ---- second section: fold the overflow back in ---------------- #
            overflow_index = self.datapath.overflow_index(escaped)
            remaining = overflow_index
            pending_bits = 0
            while True:
                fold = min(remaining, len(mm.overflow_rows) - 1)
                new_sum, new_carry, escaped = self._carry_save_step(
                    controller,
                    Phase.IMC_OVERFLOW,
                    mm.overflow_row(fold),
                    iteration,
                    digit=None,
                    overflow_index=fold,
                )
                pending_bits += escaped
                remaining -= fold
                if remaining == 0:
                    break
                # Pathological overflow (never observed for real operands,
                # see DESIGN.md): write the partial result back and fold again.
                extra_folds += 1
                self._writeback(
                    controller, new_sum, mm.sum_row, "sum", 0, iteration, "sum (extra fold)"
                )
                self._writeback(
                    controller, new_carry, mm.carry_row, "carry", 0, iteration,
                    "carry (extra fold)",
                )

            # ---- write back, pre-shifted for the next iteration ----------- #
            if last:
                # No shift after the final iteration; the carry write-back is
                # elided (the finaliser consumes it straight from the FF).
                self._writeback(
                    controller, new_sum, mm.sum_row, "sum", 0, iteration, "sum (final)"
                )
                final_sum = new_sum
                final_carry = new_carry
                pending_weight_bits = pending_bits
            else:
                sum_overflow = self._writeback(
                    controller, new_sum, mm.sum_row, "sum", 2, iteration, "sum<<2"
                )
                carry_overflow = self._writeback(
                    controller, new_carry, mm.carry_row, "carry", 2, iteration, "carry<<2"
                )
                self.datapath.set_shift_overflow(sum_overflow + carry_overflow)
                self.datapath.set_pending_carry_out(min(pending_bits, 1))
                if pending_bits > 1:
                    # More than one escaped bit can only happen on an extra
                    # fold; keep correctness by folding the surplus into the
                    # shift-overflow field (weight 4 after the shift).
                    self.datapath.set_shift_overflow(
                        sum_overflow + carry_overflow + 4 * (pending_bits - 1)
                    )

        return final_sum, final_carry, pending_weight_bits, extra_folds

    def _finalize(
        self,
        controller: Controller,
        sum_word: int,
        carry_word: int,
        pending: int,
        modulus: int,
    ) -> int:
        """Final full addition and reduction performed near-memory."""
        controller.transition(ControllerState.FINALIZE)
        mm = self.memory_map
        n = self.config.bitwidth
        width = self.config.register_width

        # Read the sum row back (one cycle); the carry is still in the FF.
        stored_sum_low = self._read_row(
            controller, Phase.FINALIZE, mm.sum_row, note="sum -> adder"
        )
        stored_sum = stored_sum_low | (self.datapath.sum_msb << n)
        if stored_sum != sum_word:
            raise ControllerError(
                "sum row/register mismatch at finalisation: the array holds "
                f"{stored_sum:#x} but the datapath computed {sum_word:#x}"
            )

        total = stored_sum + carry_word + (pending << width)
        self._nmc_cycle(controller, Phase.FINALIZE, "full addition of sum and carry")
        self.counter.increment("nmc_full_add")
        while total >= modulus:
            total -= modulus
            self._nmc_cycle(controller, Phase.FINALIZE, "conditional subtraction")
            self.counter.increment("nmc_subtract")
        controller.transition(ControllerState.DONE)
        return total

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def multiply(self, a: int, b: int, modulus: int) -> MultiplicationResult:
        """Compute ``a * b mod modulus`` on the simulated macro."""
        self._validate_operands(a, b, modulus)
        self.trace = ExecutionTrace(enabled=self.trace_enabled)
        controller = Controller(self.config.iterations)

        self._load_operands(controller, a, b, modulus)
        reused = self._precompute_luts(controller, b, modulus)
        sum_word, carry_word, pending, extra_folds = self._run_iterations(
            controller, modulus
        )
        product = self._finalize(controller, sum_word, carry_word, pending, modulus)

        report = CycleReport(
            iterations=self.config.iterations,
            load_cycles=controller.budget.load_cycles,
            precompute_cycles=controller.budget.precompute_cycles,
            iteration_cycles=controller.budget.iteration_cycles,
            finalize_cycles=controller.budget.finalize_cycles,
            extra_overflow_folds=extra_folds,
            lut_reused=reused,
            frequency_mhz=self.config.frequency_mhz,
        )
        self.counter.increment("modmul")
        return MultiplicationResult(product=product, report=report, trace=self.trace)

    def multiply_many(
        self, pairs: List[Tuple[int, int]], modulus: int
    ) -> List[MultiplicationResult]:
        """Multiply a batch of operand pairs, reusing LUTs where possible."""
        return [self.multiply(a, b, modulus) for a, b in pairs]

    # ------------------------------------------------------------------ #
    # reporting helpers
    # ------------------------------------------------------------------ #
    def expected_iteration_cycles(self) -> int:
        """The analytic main-loop cycle count for this configuration."""
        return self.config.expected_iteration_cycles

    def utilization(self, operand_rows_used: int = 3):
        """Row-utilisation summary (Figure 6) for this macro."""
        return self.memory_map.utilization(operand_rows_used)

    def energy_report(self):
        """Energy breakdown implied by the accesses performed so far."""
        return self.config.energy.from_stats(
            self.array.stats, self.datapath.stats.register_bits_written
        )
