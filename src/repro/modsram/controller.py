"""ModSRAM controller finite-state machine.

The controller sequences every SRAM operation (precharge, word-line
activation, sense enable, write-back) and the near-memory register
transfers.  In the paper it is a small synthesized Verilog block; here it is
a state machine that owns the cycle counter, enforces the legal phase order
and produces the per-phase cycle accounting the evaluation reports.

The schedule it enforces for the main loop is the six-access pattern
described in DESIGN.md §4:

    IMC-radix4 → writeback-sum → writeback-carry →
    IMC-overflow → writeback-sum → writeback-carry

with the final iteration's last carry write-back elided, giving
``6 * iterations - 1`` main-loop cycles (767 at 256 bits with the paper's
128-iteration schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.errors import ControllerError
from repro.modsram.trace import Phase

__all__ = ["ControllerState", "CycleBudget", "Controller"]


class ControllerState(str, Enum):
    """Top-level states of the controller FSM."""

    IDLE = "idle"
    LOAD = "load"
    PRECOMPUTE = "precompute"
    ITERATE = "iterate"
    FINALIZE = "finalize"
    DONE = "done"


#: Legal state transitions of the FSM.
_TRANSITIONS: Dict[ControllerState, tuple] = {
    ControllerState.IDLE: (ControllerState.LOAD,),
    ControllerState.LOAD: (ControllerState.PRECOMPUTE, ControllerState.ITERATE),
    ControllerState.PRECOMPUTE: (ControllerState.ITERATE,),
    ControllerState.ITERATE: (ControllerState.FINALIZE,),
    ControllerState.FINALIZE: (ControllerState.DONE,),
    ControllerState.DONE: (ControllerState.IDLE,),
}

#: Which trace phases are allowed in which controller state.
_ALLOWED_PHASES: Dict[ControllerState, tuple] = {
    ControllerState.LOAD: (Phase.LOAD_MULTIPLIER, Phase.PRECOMPUTE),
    ControllerState.PRECOMPUTE: (Phase.PRECOMPUTE,),
    ControllerState.ITERATE: (
        Phase.IMC_RADIX4,
        Phase.WRITEBACK_SUM,
        Phase.WRITEBACK_CARRY,
        Phase.IMC_OVERFLOW,
    ),
    ControllerState.FINALIZE: (Phase.FINALIZE,),
}


@dataclass
class CycleBudget:
    """Per-phase cycle counters for one multiplication."""

    load_cycles: int = 0
    precompute_cycles: int = 0
    iteration_cycles: int = 0
    finalize_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """All cycles, including operand loading and LUT precomputation."""
        return (
            self.load_cycles
            + self.precompute_cycles
            + self.iteration_cycles
            + self.finalize_cycles
        )

    def as_dict(self) -> Dict[str, int]:
        """Counters plus total, for reports."""
        return {
            "load_cycles": self.load_cycles,
            "precompute_cycles": self.precompute_cycles,
            "iteration_cycles": self.iteration_cycles,
            "finalize_cycles": self.finalize_cycles,
            "total_cycles": self.total_cycles,
        }


class Controller:
    """The FSM driving one ModSRAM macro."""

    def __init__(self, iterations: int) -> None:
        if iterations <= 0:
            raise ControllerError(f"iterations must be positive, got {iterations}")
        self.iterations = iterations
        self.state = ControllerState.IDLE
        self.budget = CycleBudget()
        self.cycle = 0
        self.current_iteration: Optional[int] = None

    # ------------------------------------------------------------------ #
    # state machine
    # ------------------------------------------------------------------ #
    def transition(self, target: ControllerState) -> None:
        """Move to ``target``, enforcing the legal transition graph."""
        if target not in _TRANSITIONS[self.state]:
            raise ControllerError(
                f"illegal controller transition {self.state.value} -> {target.value}"
            )
        self.state = target
        if target is ControllerState.IDLE:
            self.budget = CycleBudget()
            self.cycle = 0
            self.current_iteration = None

    def begin_iteration(self, iteration: int) -> None:
        """Mark the start of a main-loop iteration."""
        if self.state is not ControllerState.ITERATE:
            raise ControllerError(
                f"cannot iterate while in state {self.state.value}"
            )
        if not 0 <= iteration < self.iterations:
            raise ControllerError(
                f"iteration {iteration} outside 0..{self.iterations - 1}"
            )
        expected = 0 if self.current_iteration is None else self.current_iteration + 1
        if iteration != expected:
            raise ControllerError(
                f"iterations must be sequential: expected {expected}, got {iteration}"
            )
        self.current_iteration = iteration

    def tick(self, phase: Phase) -> int:
        """Advance one clock cycle in ``phase``; returns the cycle index."""
        allowed = _ALLOWED_PHASES.get(self.state, ())
        if phase not in allowed:
            raise ControllerError(
                f"phase {phase.value} is not legal in controller state "
                f"{self.state.value}"
            )
        index = self.cycle
        self.cycle += 1
        if self.state is ControllerState.LOAD:
            self.budget.load_cycles += 1
        elif self.state is ControllerState.PRECOMPUTE:
            self.budget.precompute_cycles += 1
        elif self.state is ControllerState.ITERATE:
            self.budget.iteration_cycles += 1
        elif self.state is ControllerState.FINALIZE:
            self.budget.finalize_cycles += 1
        return index

    # ------------------------------------------------------------------ #
    # accounting helpers
    # ------------------------------------------------------------------ #
    def expected_iteration_cycles(self) -> int:
        """The schedule's main-loop cycle count (``6 * iterations - 1``)."""
        return 6 * self.iterations - 1

    def finished(self) -> bool:
        """Whether the FSM has reached the DONE state."""
        return self.state is ControllerState.DONE
