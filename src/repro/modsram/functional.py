"""Functional fidelity tier: the R4CSA-LUT kernel without the SRAM substrate.

:class:`FunctionalModSRAM` runs the exact algorithm body of the
cycle-accurate model (:mod:`repro.modsram.kernel`) on a plain register file:
rows are Python integers, the three-row logic-SA access is two bitwise
expressions (XOR3 and MAJ), and nothing per-cycle is materialised.  The
product is therefore bit-identical to the cycle tier by construction, while
a 256-bit multiplication costs tens of microseconds instead of hundreds of
milliseconds — this is the tier the full-workload studies (ECDSA signing,
NTT/MSM batches, chip scale-out) run on.

What it reports: the product, the LUT-reuse flag and *operation counts*
(word-line writes/reads, logic-SA accesses, near-memory cycles) accumulated
in the same :class:`~repro.sram.stats.ArrayStats` currency the real array
collects — no cycle or energy accounting (that is the analytical tier's
job, see :mod:`repro.modsram.analytical`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.instrumentation import OperationCounter
from repro.modsram.config import ModSRAMConfig
from repro.modsram.controller import ControllerState
from repro.modsram.datapath import NearMemoryDatapath
from repro.modsram.kernel import (
    NMC_COUNTER_OF_KIND,
    KernelHost,
    LutResidency,
    run_kernel,
)
from repro.modsram.memory_map import MemoryMap
from repro.modsram.trace import Phase
from repro.sram.stats import ArrayStats

__all__ = ["FunctionalResult", "FunctionalModSRAM", "FastHost"]


@dataclass(frozen=True)
class FunctionalResult:
    """Product plus operation counts of one functional-tier multiplication."""

    product: int
    lut_reused: bool
    extra_overflow_folds: int
    finalize_subtractions: int
    #: Operation counts of this multiplication alone (not cumulative).
    operations: Dict[str, int]
    #: Array-access profile of this multiplication alone; feed it straight
    #: to :meth:`repro.sram.energy.EnergyModel.from_stats` for per-operation
    #: energy attribution.
    stats: ArrayStats


class FastHost(KernelHost):
    """Kernel host backed by a plain register file instead of an SRAM array.

    Rows live in a list of integers; the logic-SA access is computed
    bitwise.  Access statistics accumulate into the same
    :class:`ArrayStats` shape the behavioural array produces, so energy
    models and reports can consume either tier interchangeably.
    """

    def __init__(self, config: ModSRAMConfig) -> None:
        self.config = config
        self.memory_map = MemoryMap(config)
        self.datapath = NearMemoryDatapath(config)
        self.lut_residency = LutResidency()
        self.stats = ArrayStats()
        self.counter = OperationCounter("modsram-functional")
        self._rows: List[int] = [0] * config.rows
        self._columns = config.columns

    # -- kernel-host interface ---------------------------------------- #
    def transition(self, state: ControllerState) -> None:
        """No controller FSM at this tier."""

    def begin_iteration(self, iteration: int) -> None:
        """No per-iteration sequencing checks at this tier."""

    def write_row(
        self,
        phase: Phase,
        row: int,
        value: int,
        iteration: Optional[int] = None,
        note: str = "",
    ) -> None:
        self._rows[row] = value
        self.stats.record_write(self._columns)
        self.counter.increment("memory_write")

    def read_row(
        self,
        phase: Phase,
        row: int,
        iteration: Optional[int] = None,
        note: str = "",
    ) -> int:
        self.stats.record_read(1, compute=False)
        self.counter.increment("memory_read")
        return self._rows[row]

    def nmc_cycle(
        self,
        phase: Phase,
        note: str,
        iteration: Optional[int] = None,
        kind: str = "nmc",
    ) -> None:
        counter_name = NMC_COUNTER_OF_KIND.get(kind)
        if counter_name is not None:
            self.counter.increment(counter_name)

    def imc_access(
        self,
        phase: Phase,
        rows: Tuple[int, int, int],
        iteration: int,
        digit: Optional[int] = None,
        overflow_index: Optional[int] = None,
    ) -> Tuple[int, int]:
        data = self._rows
        r0, r1, r2 = data[rows[0]], data[rows[1]], data[rows[2]]
        self.stats.record_read(3, compute=True)
        self.counter.increment("imc_access")
        return r0 ^ r1 ^ r2, (r0 & r1) | (r0 & r2) | (r1 & r2)


class FunctionalModSRAM:
    """The functional fidelity tier: products and operation counts only."""

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        self.config = config or ModSRAMConfig()
        self.host = FastHost(self.config)

    @property
    def counter(self) -> OperationCounter:
        """Cumulative operation counts across every multiplication."""
        return self.host.counter

    @property
    def stats(self) -> ArrayStats:
        """Cumulative access statistics (ArrayStats currency)."""
        return self.host.stats

    def multiply(self, a: int, b: int, modulus: int) -> FunctionalResult:
        """Compute ``a * b mod modulus`` through the shared kernel."""
        host = self.host
        before = host.counter.as_dict()
        stats_before = host.stats.snapshot()
        outcome = run_kernel(host, a, b, modulus)
        host.counter.increment("modmul")
        after = host.counter.as_dict()
        delta = {
            name: after[name] - before.get(name, 0)
            for name in after
            if after[name] != before.get(name, 0)
        }
        return FunctionalResult(
            product=outcome.product,
            lut_reused=outcome.lut_reused,
            extra_overflow_folds=outcome.extra_overflow_folds,
            finalize_subtractions=outcome.finalize_subtractions,
            operations=delta,
            stats=host.stats.delta_since(stats_before),
        )

    def multiply_many(
        self, pairs: List[Tuple[int, int]], modulus: int
    ) -> List[FunctionalResult]:
        """Multiply a batch of operand pairs, reusing LUTs where possible."""
        return [self.multiply(a, b, modulus) for a, b in pairs]
