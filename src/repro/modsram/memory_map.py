"""Row-level memory map of the ModSRAM array.

One modular multiplication touches three kinds of word lines (Figure 6 of
the paper):

* **operands** — the multiplier ``A``, multiplicand ``B`` and modulus ``p``,
  plus whatever additional operands the surrounding computation (e.g. an
  elliptic-curve point addition) wants resident;
* **intermediates** — the redundant accumulator, i.e. the ``sum`` and
  ``carry`` rows, the only values rewritten every iteration;
* **LUTs** — the 5-row radix-4 table (Table 1b) and the 8-row overflow
  table (Table 2), written once per ``(B, p)`` / ``p`` and reused across
  iterations and across multiplications.

The map places the LUTs and intermediates at the top of the array and
leaves the remaining rows (49 of 64 in the default configuration) as
operand storage, reproducing the utilisation picture of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.luts import RADIX4_DIGIT_ORDER
from repro.errors import MemoryMapError
from repro.modsram.config import (
    INTERMEDIATE_ROWS,
    MINIMUM_OPERAND_ROWS,
    OVERFLOW_LUT_ROWS,
    RADIX4_LUT_ROWS,
    ModSRAMConfig,
)

__all__ = ["MemoryMap", "MemoryUtilization"]


@dataclass(frozen=True)
class MemoryUtilization:
    """Row usage summary in the shape of Figure 6."""

    total_rows: int
    operand_rows_used: int
    operand_capacity: int
    intermediate_rows: int
    lut_rows: int

    @property
    def rows_used(self) -> int:
        """Rows occupied by live data during one multiplication."""
        return self.operand_rows_used + self.intermediate_rows + self.lut_rows

    @property
    def free_rows(self) -> int:
        """Rows still available for more operands."""
        return self.total_rows - self.rows_used

    def as_dict(self) -> Dict[str, int]:
        """Summary as a dictionary for the analysis layer."""
        return {
            "total_rows": self.total_rows,
            "operand_rows_used": self.operand_rows_used,
            "operand_capacity": self.operand_capacity,
            "intermediate_rows": self.intermediate_rows,
            "lut_rows": self.lut_rows,
            "rows_used": self.rows_used,
            "free_rows": self.free_rows,
        }


class MemoryMap:
    """Assignment of logical values to word lines for one macro."""

    def __init__(self, config: ModSRAMConfig) -> None:
        self.config = config
        rows = config.rows

        # Operand region occupies the bottom of the array.
        self.multiplier_row = 0
        self.multiplicand_row = 1
        self.modulus_row = 2
        self.operand_region = tuple(range(0, config.operand_capacity))

        # Intermediates and LUTs are packed at the top of the array.
        top = rows
        overflow_base = top - OVERFLOW_LUT_ROWS
        radix4_base = overflow_base - RADIX4_LUT_ROWS
        self.sum_row = radix4_base - 2
        self.carry_row = radix4_base - 1
        self._radix4_rows: Dict[int, int] = {
            digit: radix4_base + offset
            for offset, digit in enumerate(RADIX4_DIGIT_ORDER)
        }
        self._overflow_rows: Tuple[int, ...] = tuple(
            overflow_base + offset for offset in range(OVERFLOW_LUT_ROWS)
        )

        if self.sum_row < MINIMUM_OPERAND_ROWS:
            raise MemoryMapError(
                f"array with {rows} rows cannot hold operands, LUTs and "
                "intermediates simultaneously"
            )

    # ------------------------------------------------------------------ #
    # look-ups
    # ------------------------------------------------------------------ #
    def radix4_row(self, digit: int) -> int:
        """Word line holding ``digit * B mod p`` (Table 1b row)."""
        try:
            return self._radix4_rows[digit]
        except KeyError:
            raise MemoryMapError(
                f"no radix-4 LUT row for digit {digit}; valid digits: "
                f"{sorted(self._radix4_rows)}"
            ) from None

    def overflow_row(self, overflow: int) -> int:
        """Word line holding ``overflow * 2**(n+1) mod p`` (Table 2 row)."""
        if not 0 <= overflow < len(self._overflow_rows):
            raise MemoryMapError(
                f"overflow index {overflow} outside the {len(self._overflow_rows)}-row "
                "overflow LUT"
            )
        return self._overflow_rows[overflow]

    def operand_row(self, slot: int) -> int:
        """Word line of operand slot ``slot`` (0 = A, 1 = B, 2 = p, ...)."""
        if not 0 <= slot < len(self.operand_region):
            raise MemoryMapError(
                f"operand slot {slot} outside the {len(self.operand_region)}-row "
                "operand region"
            )
        return self.operand_region[slot]

    @property
    def radix4_rows(self) -> Dict[int, int]:
        """Digit → word-line mapping of the radix-4 LUT."""
        return dict(self._radix4_rows)

    @property
    def overflow_rows(self) -> Tuple[int, ...]:
        """Word lines of the overflow LUT, in index order."""
        return self._overflow_rows

    @property
    def lut_rows(self) -> List[int]:
        """Every LUT word line (13 rows in the default configuration)."""
        return sorted(self._radix4_rows.values()) + list(self._overflow_rows)

    @property
    def intermediate_rows(self) -> Tuple[int, int]:
        """The sum and carry word lines."""
        return self.sum_row, self.carry_row

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def utilization(self, operand_rows_used: int = MINIMUM_OPERAND_ROWS) -> MemoryUtilization:
        """Row-usage summary for Figure 6.

        ``operand_rows_used`` defaults to the three rows one bare modular
        multiplication needs; an elliptic-curve point addition keeps more
        operands resident.
        """
        if not MINIMUM_OPERAND_ROWS <= operand_rows_used <= len(self.operand_region):
            raise MemoryMapError(
                f"operand_rows_used must be between {MINIMUM_OPERAND_ROWS} and "
                f"{len(self.operand_region)}, got {operand_rows_used}"
            )
        return MemoryUtilization(
            total_rows=self.config.rows,
            operand_rows_used=operand_rows_used,
            operand_capacity=len(self.operand_region),
            intermediate_rows=INTERMEDIATE_ROWS,
            lut_rows=len(self.lut_rows),
        )

    def describe(self) -> Dict[str, object]:
        """Full row assignment, for documentation and debugging."""
        return {
            "multiplier_row": self.multiplier_row,
            "multiplicand_row": self.multiplicand_row,
            "modulus_row": self.modulus_row,
            "operand_region": list(self.operand_region),
            "sum_row": self.sum_row,
            "carry_row": self.carry_row,
            "radix4_rows": dict(self._radix4_rows),
            "overflow_rows": list(self._overflow_rows),
        }
