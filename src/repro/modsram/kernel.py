"""The R4CSA-LUT algorithm body, shared by every fidelity tier.

The layered simulation core runs *one* algorithm — load operands, fill the
radix-4/overflow LUTs, iterate Booth digit + overflow-fold carry-save
additions, finalise — against interchangeable execution hosts:

* the **cycle** tier (:class:`~repro.modsram.accelerator.ModSRAMAccelerator`)
  executes every step on the simulated SRAM substrate: word-line writes,
  three-row logic-SA accesses, the controller FSM, the decoders;
* the **functional** tier (:mod:`repro.modsram.functional`) executes the
  same steps on a plain register file with bitwise XOR3/MAJ, producing the
  identical product and operation counts at a fraction of the cost;
* the **analytical** tier (:mod:`repro.modsram.analytical`) reuses the
  functional host and derives exact cycle/energy reports from closed-form
  schedule algebra instead of per-cycle simulation.

Because the tiers share this body, product parity across fidelity levels is
structural rather than coincidental (``tests/modsram/test_fidelity.py``
checks it on randomised 254/256-bit operands anyway).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.luts import RADIX4_DIGIT_ORDER, build_overflow_lut, build_radix4_lut
from repro.errors import ControllerError, OperandRangeError
from repro.modsram.config import ModSRAMConfig
from repro.modsram.controller import ControllerState
from repro.modsram.memory_map import MemoryMap
from repro.modsram.trace import Phase

__all__ = [
    "KernelHost",
    "KernelOutcome",
    "LutResidency",
    "NMC_COUNTER_OF_KIND",
    "run_kernel",
    "validate_operands",
]

#: Counter name charged for each near-memory cycle ``kind`` the kernel
#: passes to :meth:`KernelHost.nmc_cycle`; shared by every host so the
#: tiers' operation counts cannot drift apart.
NMC_COUNTER_OF_KIND = {
    "lut_compute": "nmc_compute",
    "full_add": "nmc_full_add",
    "subtract": "nmc_subtract",
}


@dataclass
class LutResidency:
    """Which (multiplicand, modulus) LUTs are resident on a host's rows."""

    multiplicand: Optional[int] = None
    modulus: Optional[int] = None

    def matches(self, multiplicand: int, modulus: int) -> bool:
        """Whether the resident tables serve this multiplication unchanged."""
        return self.multiplicand == multiplicand and self.modulus == modulus

    def retain(self, multiplicand: int, modulus: int) -> None:
        """Mark the tables for this pair as resident."""
        self.multiplicand = multiplicand
        self.modulus = modulus

    def invalidate(self) -> None:
        """Drop residency (e.g. after external writes to the LUT rows)."""
        self.multiplicand = None
        self.modulus = None


@dataclass(frozen=True)
class KernelOutcome:
    """Everything one kernel run reports back to its tier."""

    product: int
    lut_reused: bool
    extra_overflow_folds: int
    #: Conditional subtractions performed during finalisation (each is one
    #: near-memory cycle in the cycle-accurate schedule).
    finalize_subtractions: int


class KernelHost(abc.ABC):
    """Execution substrate the algorithm body runs against.

    A host provides storage rows, the near-memory datapath registers and the
    per-step accounting of its fidelity tier.  Every method maps to exactly
    one clock cycle in the cycle-accurate schedule; cheaper tiers may charge
    it to a counter or ignore it entirely.
    """

    config: ModSRAMConfig
    memory_map: MemoryMap
    datapath: "object"  # NearMemoryDatapath-compatible
    lut_residency: LutResidency

    @abc.abstractmethod
    def transition(self, state: ControllerState) -> None:
        """Move the controller FSM (a no-op for tiers without one)."""

    @abc.abstractmethod
    def begin_iteration(self, iteration: int) -> None:
        """Mark the start of a main-loop iteration."""

    @abc.abstractmethod
    def write_row(
        self,
        phase: Phase,
        row: int,
        value: int,
        iteration: Optional[int] = None,
        note: str = "",
    ) -> None:
        """Write a full row through the write port (one cycle)."""

    @abc.abstractmethod
    def read_row(
        self,
        phase: Phase,
        row: int,
        iteration: Optional[int] = None,
        note: str = "",
    ) -> int:
        """Read one row through the read port (one cycle)."""

    @abc.abstractmethod
    def nmc_cycle(
        self,
        phase: Phase,
        note: str,
        iteration: Optional[int] = None,
        kind: str = "nmc",
    ) -> None:
        """One cycle spent purely in the near-memory circuit.

        ``kind`` names the operation for the host's accounting:
        ``"lut_compute"``, ``"full_add"`` or ``"subtract"``.
        """

    @abc.abstractmethod
    def imc_access(
        self,
        phase: Phase,
        rows: Tuple[int, int, int],
        iteration: int,
        digit: Optional[int] = None,
        overflow_index: Optional[int] = None,
    ) -> Tuple[int, int]:
        """One logic-SA access: activate three rows, sense XOR3 and MAJ."""


def validate_operands(config: ModSRAMConfig, a: int, b: int, modulus: int) -> None:
    """Operand preconditions shared by every tier (macro sizing, ranges)."""
    n = config.bitwidth
    if modulus <= 2:
        raise OperandRangeError(f"modulus must be greater than 2, got {modulus}")
    if modulus.bit_length() > n:
        raise OperandRangeError(
            f"modulus needs {modulus.bit_length()} bits but the macro is "
            f"configured for {n}"
        )
    if modulus.bit_length() < n - 2:
        raise OperandRangeError(
            f"the macro is sized for {n}-bit moduli but the modulus only "
            f"needs {modulus.bit_length()} bits; reconfigure with "
            "ModSRAMConfig.with_bitwidth(modulus.bit_length()) so the "
            "redundant registers and the final reduction stay bounded"
        )
    for name, operand in (("a", a), ("b", b)):
        if not 0 <= operand < modulus:
            raise OperandRangeError(
                f"operand {name} must satisfy 0 <= {name} < p, got {operand}"
            )
    if not config.extend_for_full_range:
        top_bit = 2 * config.iterations - 1
        if (a >> top_bit) & 1:
            raise OperandRangeError(
                "the paper-mode schedule (extend_for_full_range=False) "
                "requires the multiplier's top bit to be clear; operand a "
                f"has bit {top_bit} set — use a full-range configuration"
            )


def _load_operands(host: KernelHost, a: int, b: int, modulus: int) -> None:
    """Write A, B, p to their word lines and latch the multiplier."""
    host.transition(ControllerState.LOAD)
    mm = host.memory_map
    host.write_row(Phase.LOAD_MULTIPLIER, mm.multiplier_row, a, note="A")
    host.write_row(Phase.LOAD_MULTIPLIER, mm.multiplicand_row, b, note="B")
    host.write_row(Phase.LOAD_MULTIPLIER, mm.modulus_row, modulus, note="p")
    # Clear the accumulator rows left over from any previous result.
    host.write_row(Phase.LOAD_MULTIPLIER, mm.sum_row, 0, note="clear sum")
    host.write_row(Phase.LOAD_MULTIPLIER, mm.carry_row, 0, note="clear carry")
    multiplier = host.read_row(Phase.LOAD_MULTIPLIER, mm.multiplier_row, note="A -> FF")
    host.datapath.load_multiplier(multiplier)
    host.datapath.set_accumulator_msbs(0, 0)
    host.datapath.set_shift_overflow(0)
    host.datapath.set_pending_carry_out(0)


def _precompute_luts(host: KernelHost, b: int, modulus: int) -> bool:
    """Fill the radix-4 and overflow LUT word lines.

    Returns ``True`` when the resident tables were reused (same multiplicand
    and modulus as the previous multiplication), in which case no cycles are
    charged — this is the data-reuse behaviour the paper highlights.
    """
    reused = host.lut_residency.matches(b, modulus)
    host.transition(ControllerState.PRECOMPUTE)
    if reused:
        return True

    mm = host.memory_map
    radix4 = build_radix4_lut(b, modulus)
    overflow = build_overflow_lut(
        modulus, host.config.register_width, entry_count=len(mm.overflow_rows)
    )
    # Near-memory computation of the non-trivial entries is charged one
    # cycle per modular add/subtract (see DESIGN.md §4); the writes are
    # one cycle per word line like any other write.
    compute_cycles = radix4.computed_entry_count() * 2 + (len(overflow) - 1) * 2
    for _ in range(compute_cycles):
        host.nmc_cycle(Phase.PRECOMPUTE, "nmc LUT computation", kind="lut_compute")

    for digit in RADIX4_DIGIT_ORDER:
        host.write_row(
            Phase.PRECOMPUTE,
            mm.radix4_row(digit),
            radix4[digit],
            note=f"LUT-radix4[{digit:+d}]",
        )
    for index, row in enumerate(mm.overflow_rows):
        host.write_row(
            Phase.PRECOMPUTE, row, overflow[index], note=f"LUT-overflow[{index}]"
        )
    host.lut_residency.retain(b, modulus)
    return False


def _carry_save_step(
    host: KernelHost,
    phase: Phase,
    lut_row: int,
    iteration: int,
    digit: Optional[int],
    overflow_index: Optional[int],
) -> Tuple[int, int, int]:
    """One in-memory carry-save addition against a LUT row.

    The logic-SA produces XOR3/MAJ of the low ``n`` bits; the near-memory
    logic extends them with bit ``n`` of the redundant registers (the LUT
    entry's bit ``n`` is always zero because every entry is below the
    modulus).  Returns the full-width new sum, the new carry (already
    shifted left by one) and the carry word's escaped top bit.
    """
    n = host.config.bitwidth
    width = host.config.register_width
    mm = host.memory_map

    xor_low, maj_low = host.imc_access(
        phase,
        (lut_row, mm.sum_row, mm.carry_row),
        iteration,
        digit=digit,
        overflow_index=overflow_index,
    )
    sum_msb = host.datapath.sum_msb
    carry_msb = host.datapath.carry_msb
    xor_top = sum_msb ^ carry_msb
    maj_top = sum_msb & carry_msb

    new_sum = xor_low | (xor_top << n)
    maj_word = maj_low | (maj_top << n)
    shifted_carry = maj_word << 1
    escaped = shifted_carry >> width
    new_carry = shifted_carry & ((1 << width) - 1)
    host.datapath.latch_imc_result(new_sum, maj_word)
    return new_sum, new_carry, escaped


def _writeback(
    host: KernelHost,
    value: int,
    row: int,
    msb_setter: str,
    shift: int,
    iteration: int,
    note: str,
) -> int:
    """Write a redundant register back to its row, optionally pre-shifted.

    Returns the overflow bits that escaped the register because of the
    shift (captured by the near-memory overflow flip-flops).
    """
    n = host.config.bitwidth
    width = host.config.register_width
    shifted = value << shift
    overflow = shifted >> width
    shifted &= (1 << width) - 1
    phase = Phase.WRITEBACK_SUM if msb_setter == "sum" else Phase.WRITEBACK_CARRY
    host.write_row(phase, row, shifted & ((1 << n) - 1), iteration, note)
    if msb_setter == "sum":
        host.datapath.set_accumulator_msbs((shifted >> n) & 1, host.datapath.carry_msb)
    else:
        host.datapath.set_accumulator_msbs(host.datapath.sum_msb, (shifted >> n) & 1)
    return overflow


def _run_iterations(host: KernelHost) -> Tuple[int, int, int, int]:
    """Execute the main loop; returns (sum, carry, pending, extra_folds)."""
    mm = host.memory_map
    iterations = host.config.iterations
    host.transition(ControllerState.ITERATE)

    extra_folds = 0
    final_sum = 0
    final_carry = 0
    pending_weight_bits = 0

    for iteration in range(iterations):
        host.begin_iteration(iteration)
        last = iteration == iterations - 1
        digit = host.datapath.booth_digit(iteration, iterations)

        # ---- first section: add the Booth-digit entry ---------------- #
        new_sum, new_carry, escaped = _carry_save_step(
            host,
            Phase.IMC_RADIX4,
            mm.radix4_row(digit),
            iteration,
            digit=digit,
            overflow_index=None,
        )
        _writeback(host, new_sum, mm.sum_row, "sum", 0, iteration, "sum")
        _writeback(host, new_carry, mm.carry_row, "carry", 0, iteration, "carry<<1")

        # ---- second section: fold the overflow back in ---------------- #
        overflow_index = host.datapath.overflow_index(escaped)
        remaining = overflow_index
        pending_bits = 0
        while True:
            fold = min(remaining, len(mm.overflow_rows) - 1)
            new_sum, new_carry, escaped = _carry_save_step(
                host,
                Phase.IMC_OVERFLOW,
                mm.overflow_row(fold),
                iteration,
                digit=None,
                overflow_index=fold,
            )
            pending_bits += escaped
            remaining -= fold
            if remaining == 0:
                break
            # Pathological overflow (never observed for real operands,
            # see DESIGN.md): write the partial result back and fold again.
            extra_folds += 1
            _writeback(
                host, new_sum, mm.sum_row, "sum", 0, iteration, "sum (extra fold)"
            )
            _writeback(
                host, new_carry, mm.carry_row, "carry", 0, iteration,
                "carry (extra fold)",
            )

        # ---- write back, pre-shifted for the next iteration ----------- #
        if last:
            # No shift after the final iteration; the carry write-back is
            # elided (the finaliser consumes it straight from the FF).
            _writeback(host, new_sum, mm.sum_row, "sum", 0, iteration, "sum (final)")
            final_sum = new_sum
            final_carry = new_carry
            pending_weight_bits = pending_bits
        else:
            sum_overflow = _writeback(
                host, new_sum, mm.sum_row, "sum", 2, iteration, "sum<<2"
            )
            carry_overflow = _writeback(
                host, new_carry, mm.carry_row, "carry", 2, iteration, "carry<<2"
            )
            host.datapath.set_shift_overflow(sum_overflow + carry_overflow)
            host.datapath.set_pending_carry_out(min(pending_bits, 1))
            if pending_bits > 1:
                # More than one escaped bit can only happen on an extra
                # fold; keep correctness by folding the surplus into the
                # shift-overflow field (weight 4 after the shift).
                host.datapath.set_shift_overflow(
                    sum_overflow + carry_overflow + 4 * (pending_bits - 1)
                )

    return final_sum, final_carry, pending_weight_bits, extra_folds


def _finalize(
    host: KernelHost, sum_word: int, carry_word: int, pending: int, modulus: int
) -> Tuple[int, int]:
    """Final full addition and reduction performed near-memory.

    Returns ``(product, conditional_subtractions)``.
    """
    host.transition(ControllerState.FINALIZE)
    mm = host.memory_map
    n = host.config.bitwidth
    width = host.config.register_width

    # Read the sum row back (one cycle); the carry is still in the FF.
    stored_sum_low = host.read_row(Phase.FINALIZE, mm.sum_row, note="sum -> adder")
    stored_sum = stored_sum_low | (host.datapath.sum_msb << n)
    if stored_sum != sum_word:
        raise ControllerError(
            "sum row/register mismatch at finalisation: the array holds "
            f"{stored_sum:#x} but the datapath computed {sum_word:#x}"
        )

    total = stored_sum + carry_word + (pending << width)
    host.nmc_cycle(Phase.FINALIZE, "full addition of sum and carry", kind="full_add")
    subtractions = 0
    while total >= modulus:
        total -= modulus
        subtractions += 1
        host.nmc_cycle(Phase.FINALIZE, "conditional subtraction", kind="subtract")
    host.transition(ControllerState.DONE)
    return total, subtractions


def run_kernel(host: KernelHost, a: int, b: int, modulus: int) -> KernelOutcome:
    """Execute one modular multiplication on a host (any fidelity tier)."""
    validate_operands(host.config, a, b, modulus)
    _load_operands(host, a, b, modulus)
    reused = _precompute_luts(host, b, modulus)
    sum_word, carry_word, pending, extra_folds = _run_iterations(host)
    product, subtractions = _finalize(host, sum_word, carry_word, pending, modulus)
    return KernelOutcome(
        product=product,
        lut_reused=reused,
        extra_overflow_folds=extra_folds,
        finalize_subtractions=subtractions,
    )
