"""Equivalence checking between the hardware model and the reference algorithm.

The paper verifies ModSRAM with HSPICE and Verilog testbenches; the Python
counterpart is an equivalence-checking harness that drives the cycle-accurate
accelerator, the functional R4CSA-LUT algorithm and the big-integer oracle
with the same operand corpus and cross-checks every result.  The corpus mixes
random operands with the directed patterns hardware verification actually
uses (all-zeros, all-ones, single-bit walks, values straddling the modulus),
because those are the patterns that exercise the overflow LUT and the
register-boundary corner cases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.algorithms.r4csa_lut import R4CSALutMultiplier
from repro.errors import ConfigurationError
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.config import ModSRAMConfig

__all__ = ["VerificationCase", "VerificationReport", "EquivalenceChecker", "directed_operands"]


def directed_operands(modulus: int, bitwidth: int) -> List[Tuple[int, int]]:
    """Directed (non-random) operand pairs for corner-case coverage."""
    top = modulus - 1
    half = modulus >> 1
    pairs = [
        (0, 0),
        (0, top),
        (1, 1),
        (1, top),
        (top, top),
        (half, half),
        (half, half + 1),
        (top, 1),
    ]
    # Single-bit walks through the multiplier exercise every Booth window.
    for position in range(0, bitwidth, max(1, bitwidth // 8)):
        bit = 1 << position
        if bit < modulus:
            pairs.append((bit, top))
            pairs.append((bit | 1, half))
    return pairs


@dataclass(frozen=True)
class VerificationCase:
    """One checked multiplication."""

    a: int
    b: int
    modulus: int
    expected: int
    accelerator_product: int
    algorithm_product: int
    iteration_cycles: int

    @property
    def passed(self) -> bool:
        """Whether both implementations matched the oracle."""
        return (
            self.accelerator_product == self.expected
            and self.algorithm_product == self.expected
        )


@dataclass
class VerificationReport:
    """Outcome of one equivalence-checking run."""

    modulus: int
    bitwidth: int
    cases: List[VerificationCase] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of checked multiplications."""
        return len(self.cases)

    @property
    def failures(self) -> List[VerificationCase]:
        """Every mismatching case (empty when the models agree)."""
        return [case for case in self.cases if not case.passed]

    @property
    def passed(self) -> bool:
        """Whether every case matched the oracle."""
        return not self.failures

    @property
    def cycle_counts(self) -> List[int]:
        """Main-loop cycle count of every case (constant for a config)."""
        return [case.iteration_cycles for case in self.cases]

    def constant_time(self) -> bool:
        """Whether the schedule length was operand-independent."""
        return len(set(self.cycle_counts)) <= 1

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "PASS" if self.passed else f"FAIL ({len(self.failures)} mismatches)"
        cycles = self.cycle_counts[0] if self.cases else 0
        return (
            f"{status}: {self.total} multiplications checked at "
            f"{self.bitwidth} bits, {cycles} main-loop cycles each, "
            f"constant-time={self.constant_time()}"
        )


class EquivalenceChecker:
    """Drives the accelerator, the algorithm and the oracle with one corpus."""

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        self.config = config or ModSRAMConfig()
        self.accelerator = ModSRAMAccelerator(self.config)
        self.algorithm = R4CSALutMultiplier(full_range=self.config.extend_for_full_range)

    def _check_one(self, a: int, b: int, modulus: int) -> VerificationCase:
        expected = (a * b) % modulus
        accelerated = self.accelerator.multiply(a, b, modulus)
        algorithmic = self.algorithm.multiply(a, b, modulus)
        return VerificationCase(
            a=a,
            b=b,
            modulus=modulus,
            expected=expected,
            accelerator_product=accelerated.product,
            algorithm_product=algorithmic,
            iteration_cycles=accelerated.report.iteration_cycles,
        )

    def run(
        self,
        modulus: int,
        random_cases: int = 16,
        seed: int = 0,
        include_directed: bool = True,
    ) -> VerificationReport:
        """Check a corpus of multiplications against the oracle.

        The corpus is ``random_cases`` uniform operand pairs plus (by
        default) the directed corner-case patterns.  In paper-mode
        configurations the multiplier operand is masked to keep its top bit
        clear, matching the schedule's precondition.
        """
        if random_cases < 0:
            raise ConfigurationError(
                f"random_cases must be non-negative, got {random_cases}"
            )
        bitwidth = self.config.bitwidth
        report = VerificationReport(modulus=modulus, bitwidth=bitwidth)
        rng = random.Random(seed)

        mask = (1 << bitwidth) - 1
        if not self.config.extend_for_full_range:
            mask >>= 1  # keep the multiplier's top bit clear in paper mode

        pairs: List[Tuple[int, int]] = []
        if include_directed:
            pairs.extend(directed_operands(modulus, bitwidth))
        for _ in range(random_cases):
            pairs.append((rng.randrange(modulus), rng.randrange(modulus)))

        for a, b in pairs:
            report.cases.append(self._check_one(a & mask, b % modulus, modulus))
        return report
