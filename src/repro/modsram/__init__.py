"""ModSRAM: the 8T SRAM PIM accelerator co-designed with R4CSA-LUT.

The cycle-level model (:class:`ModSRAMAccelerator`) executes the algorithm
on the simulated array; the surrounding modules provide the memory map, the
near-memory datapath, the controller FSM, the area model behind Figure 5 and
the :class:`ModSRAMMultiplier` adapter that plugs the hardware model into
any code written against the generic multiplier interface.
"""

from repro.modsram.accelerator import (
    CycleReport,
    ModSRAMAccelerator,
    MultiplicationResult,
)
from repro.modsram.area import (
    PAPER_AREA_MM2,
    PAPER_AREA_OVERHEAD_PERCENT,
    PAPER_BREAKDOWN_PERCENT,
    AreaBreakdown,
    AreaModel,
    AreaParameters,
)
from repro.modsram.config import PAPER_CONFIG, ModSRAMConfig
from repro.modsram.controller import Controller, ControllerState, CycleBudget
from repro.modsram.datapath import DatapathStats, NearMemoryDatapath
from repro.modsram.memory_map import MemoryMap, MemoryUtilization
from repro.modsram.multiplier import ModSRAMMultiplier
from repro.modsram.scheduler import (
    PointOperationSchedule,
    PointOperationScheduler,
    ScheduledMultiplication,
)
from repro.modsram.system import ModSRAMSystem, SystemProjection, Workload
from repro.modsram.trace import CycleEvent, ExecutionTrace, Phase
from repro.modsram.verification import (
    EquivalenceChecker,
    VerificationCase,
    VerificationReport,
)

__all__ = [
    "AreaBreakdown",
    "AreaModel",
    "AreaParameters",
    "Controller",
    "ControllerState",
    "CycleBudget",
    "CycleEvent",
    "CycleReport",
    "DatapathStats",
    "EquivalenceChecker",
    "ExecutionTrace",
    "MemoryMap",
    "MemoryUtilization",
    "ModSRAMAccelerator",
    "ModSRAMConfig",
    "ModSRAMMultiplier",
    "ModSRAMSystem",
    "MultiplicationResult",
    "NearMemoryDatapath",
    "PAPER_AREA_MM2",
    "PAPER_AREA_OVERHEAD_PERCENT",
    "PAPER_BREAKDOWN_PERCENT",
    "PAPER_CONFIG",
    "Phase",
    "PointOperationSchedule",
    "PointOperationScheduler",
    "ScheduledMultiplication",
    "SystemProjection",
    "VerificationCase",
    "VerificationReport",
    "Workload",
]
