"""ModSRAM: the 8T SRAM PIM accelerator co-designed with R4CSA-LUT.

The package is a *layered simulation core*: one R4CSA-LUT algorithm body
(:mod:`repro.modsram.kernel`) executed at three fidelity tiers —
``functional`` (:class:`FunctionalModSRAM`: product + operation counts),
``analytical`` (:class:`AnalyticalModSRAM`: exact closed-form cycle/energy
reports) and ``cycle`` (:class:`ModSRAMAccelerator`: the word-line-accurate
SRAM model with pluggable :class:`TraceSink` collection) — selected via
:func:`build_simulator`.  On top of the analytical tier,
:class:`Chip` scales the macro out to an N-macro chip whose scheduler
dispatches multiplication streams with LUT-reuse-aware placement.  The
surrounding modules provide the memory map, the near-memory datapath, the
controller FSM, the area model behind Figure 5 and the multiplier adapters
(``modsram``, ``modsram-fast``, ``modsram-chip``) that plug the tiers into
any code written against the generic multiplier interface.
"""

from repro.modsram.accelerator import (
    CycleReport,
    ModSRAMAccelerator,
    MultiplicationResult,
)
from repro.modsram.analytical import AnalyticalCostModel, AnalyticalModSRAM
from repro.modsram.area import (
    PAPER_AREA_MM2,
    PAPER_AREA_OVERHEAD_PERCENT,
    PAPER_BREAKDOWN_PERCENT,
    AreaBreakdown,
    AreaModel,
    AreaParameters,
)
from repro.modsram.chip import (
    SCHEDULER_POLICIES,
    Chip,
    ChipGraphRun,
    ChipSchedule,
    ChipScheduler,
    GraphSchedule,
    MultiplicationJob,
)
from repro.modsram.config import PAPER_CONFIG, ModSRAMConfig
from repro.modsram.geometry import SUPPORTED_RADICES, MacroGeometry
from repro.modsram.controller import Controller, ControllerState, CycleBudget
from repro.modsram.datapath import DatapathStats, NearMemoryDatapath
from repro.modsram.fidelity import Fidelity, build_simulator
from repro.modsram.functional import FastHost, FunctionalModSRAM, FunctionalResult
from repro.modsram.kernel import KernelHost, KernelOutcome, LutResidency, run_kernel
from repro.modsram.memory_map import MemoryMap, MemoryUtilization
from repro.modsram.multiplier import (
    ModSRAMChipMultiplier,
    ModSRAMFastMultiplier,
    ModSRAMMultiplier,
)
from repro.modsram.scheduler import (
    PointOperationSchedule,
    PointOperationScheduler,
    ScheduledMultiplication,
)
from repro.modsram.system import ModSRAMSystem, SystemProjection, Workload
from repro.modsram.trace import CycleEvent, ExecutionTrace, Phase
from repro.modsram.tracesink import NULL_SINK, NullTraceSink, TraceSink
from repro.modsram.verification import (
    EquivalenceChecker,
    VerificationCase,
    VerificationReport,
)

__all__ = [
    "AnalyticalCostModel",
    "AnalyticalModSRAM",
    "AreaBreakdown",
    "AreaModel",
    "AreaParameters",
    "Chip",
    "ChipGraphRun",
    "ChipSchedule",
    "ChipScheduler",
    "GraphSchedule",
    "MacroGeometry",
    "SCHEDULER_POLICIES",
    "SUPPORTED_RADICES",
    "Controller",
    "ControllerState",
    "CycleBudget",
    "CycleEvent",
    "CycleReport",
    "DatapathStats",
    "EquivalenceChecker",
    "ExecutionTrace",
    "FastHost",
    "Fidelity",
    "FunctionalModSRAM",
    "FunctionalResult",
    "KernelHost",
    "KernelOutcome",
    "LutResidency",
    "MemoryMap",
    "MemoryUtilization",
    "ModSRAMAccelerator",
    "ModSRAMChipMultiplier",
    "ModSRAMConfig",
    "ModSRAMFastMultiplier",
    "ModSRAMMultiplier",
    "ModSRAMSystem",
    "MultiplicationJob",
    "MultiplicationResult",
    "NULL_SINK",
    "NearMemoryDatapath",
    "NullTraceSink",
    "PAPER_AREA_MM2",
    "PAPER_AREA_OVERHEAD_PERCENT",
    "PAPER_BREAKDOWN_PERCENT",
    "PAPER_CONFIG",
    "Phase",
    "PointOperationSchedule",
    "PointOperationScheduler",
    "ScheduledMultiplication",
    "SystemProjection",
    "TraceSink",
    "VerificationCase",
    "VerificationReport",
    "Workload",
    "build_simulator",
    "run_kernel",
]
