"""Multi-macro chip model: scale-out of the ModSRAM macro.

§5.2 of the paper sizes one 64-row macro so a point operation's operands
stay resident while its multiplications execute; this module generalises
that scheduling argument from one macro to a *chip* of ``N`` macros.  A
workload arrives as a stream of :class:`MultiplicationJob`\\ s — each naming
the multiplicand whose radix-4 LUT it needs — and the chip-level scheduler
places every job on the macro where it finishes earliest, which makes the
placement LUT-reuse-aware: a macro whose resident LUT already matches skips
the refill and therefore usually wins the placement race.

Two layers share the placement core:

* :class:`ChipScheduler` schedules *abstract* streams (no operand values)
  with the analytical cost algebra — this is what the ``chip-scaling``
  experiment runs at 2^16-NTT scale;
* :class:`Chip` *executes* real multiplications on ``N`` analytical-tier
  macros (the substrate behind the ``modsram-chip`` engine backend),
  charging each macro the exact per-multiplication cycle report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.modsram.analytical import AnalyticalCostModel, AnalyticalModSRAM
from repro.modsram.config import ModSRAMConfig
from repro.modsram.geometry import MacroGeometry
from repro.modsram.report import MultiplicationResult
from repro.sram.stats import ArrayStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.workloads.graph import WorkloadGraph

__all__ = [
    "MultiplicationJob",
    "ChipSchedule",
    "ChipScheduler",
    "GraphSchedule",
    "ChipGraphRun",
    "Chip",
    "SCHEDULER_POLICIES",
]

#: Flat-stream placement policies the chip scheduler implements.
#: ``lut-aware`` is the paper-motivated finish-time-greedy rule;
#: ``round-robin`` is the residency-blind baseline the DSE sweeps use to
#: quantify what LUT-aware placement buys at each design point.
SCHEDULER_POLICIES = ("lut-aware", "round-robin")


@dataclass(frozen=True)
class MultiplicationJob:
    """One modular multiplication of a workload stream.

    ``multiplicand`` is the LUT-reuse key: two consecutive jobs on the same
    macro with equal keys share the resident radix-4 LUT.  ``tag`` is a free
    annotation naming the originating operation (``"double[17]"``,
    ``"ntt:s3"``, ...) for diagnostics.
    """

    multiplicand: str
    tag: str = ""


@dataclass(frozen=True)
class ChipSchedule:
    """Outcome of dispatching one stream across a chip's macros."""

    operation: str
    macros: int
    jobs: int
    per_macro_jobs: Tuple[int, ...]
    per_macro_cycles: Tuple[int, ...]
    lut_refills: int
    frequency_mhz: float

    @property
    def makespan_cycles(self) -> int:
        """Cycles until the busiest macro finishes (the chip's latency)."""
        return max(self.per_macro_cycles) if self.per_macro_cycles else 0

    @property
    def total_cycles(self) -> int:
        """Cycles summed over every macro (the chip's energy-relevant work)."""
        return sum(self.per_macro_cycles)

    @property
    def lut_reuse_rate(self) -> float:
        """Fraction of jobs that reused a resident radix-4 LUT."""
        if not self.jobs:
            return 0.0
        return 1.0 - self.lut_refills / self.jobs

    @property
    def utilization(self) -> float:
        """How evenly the stream spread (1.0 = perfectly balanced)."""
        if not self.jobs or self.makespan_cycles == 0:
            return 0.0
        return self.total_cycles / (self.macros * self.makespan_cycles)

    @property
    def latency_ms(self) -> float:
        """Wall-clock makespan at the macro clock."""
        return self.makespan_cycles / (self.frequency_mhz * 1e6) * 1e3

    @property
    def throughput_mops(self) -> float:
        """Modular multiplications per second (in millions) at the clock."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.jobs / (self.makespan_cycles / (self.frequency_mhz * 1e6)) / 1e6

    def as_dict(self) -> Dict[str, object]:
        """Flat summary for reports and JSON payloads."""
        return {
            "operation": self.operation,
            "macros": self.macros,
            "jobs": self.jobs,
            "per_macro_jobs": list(self.per_macro_jobs),
            "per_macro_cycles": list(self.per_macro_cycles),
            "lut_refills": self.lut_refills,
            "lut_reuse_rate": self.lut_reuse_rate,
            "makespan_cycles": self.makespan_cycles,
            "total_cycles": self.total_cycles,
            "utilization": self.utilization,
            "latency_ms": self.latency_ms,
            "throughput_mops": self.throughput_mops,
            "frequency_mhz": self.frequency_mhz,
        }


@dataclass(frozen=True)
class GraphSchedule:
    """Outcome of dependency-aware dispatch of one workload graph.

    Unlike :class:`ChipSchedule` (whose streams never idle a macro), a
    graph schedule distinguishes *busy* cycles from the *makespan*: a macro
    may sit idle waiting for a dependency, so ``utilization`` measures how
    much of the chip's capacity the dependency structure let the scheduler
    actually use.
    """

    operation: str
    macros: int
    jobs: int
    per_macro_jobs: Tuple[int, ...]
    per_macro_busy_cycles: Tuple[int, ...]
    makespan_cycles: int
    #: Cost of the longest dependency chain — the makespan lower bound no
    #: macro count can beat.
    critical_path_cycles: int
    #: Topological depth of the graph (levels of the ready-front dispatch).
    depth: int
    lut_refills: int
    frequency_mhz: float

    @property
    def total_busy_cycles(self) -> int:
        """Cycles of actual work summed over every macro."""
        return sum(self.per_macro_busy_cycles)

    @property
    def utilization(self) -> float:
        """Busy fraction of the chip over the makespan (1.0 = no idling)."""
        if not self.jobs or self.makespan_cycles == 0:
            return 0.0
        return self.total_busy_cycles / (self.macros * self.makespan_cycles)

    @property
    def lut_reuse_rate(self) -> float:
        """Fraction of jobs that reused a resident radix-4 LUT."""
        if not self.jobs:
            return 0.0
        return 1.0 - self.lut_refills / self.jobs

    @property
    def latency_ms(self) -> float:
        """Wall-clock makespan at the macro clock."""
        return self.makespan_cycles / (self.frequency_mhz * 1e6) * 1e3

    @property
    def throughput_mops(self) -> float:
        """Modular multiplications per second (in millions) at the clock."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.jobs / (self.makespan_cycles / (self.frequency_mhz * 1e6)) / 1e6

    def as_dict(self) -> Dict[str, object]:
        """Flat summary for reports and JSON payloads."""
        return {
            "operation": self.operation,
            "macros": self.macros,
            "jobs": self.jobs,
            "per_macro_jobs": list(self.per_macro_jobs),
            "per_macro_busy_cycles": list(self.per_macro_busy_cycles),
            "makespan_cycles": self.makespan_cycles,
            "critical_path_cycles": self.critical_path_cycles,
            "depth": self.depth,
            "total_busy_cycles": self.total_busy_cycles,
            "lut_refills": self.lut_refills,
            "lut_reuse_rate": self.lut_reuse_rate,
            "utilization": self.utilization,
            "latency_ms": self.latency_ms,
            "throughput_mops": self.throughput_mops,
            "frequency_mhz": self.frequency_mhz,
        }


def _dispatch_graph(
    graph: "WorkloadGraph",
    macros: int,
    iteration_cycles: int,
    refill_cycles: int,
    execute=None,
    placement_key=None,
):
    """Dependency-aware, LUT-residency-aware list scheduling.

    Nodes enter the ready heap when every dependency has finished, ordered
    by ``(ready time, -priority, index)``; each popped node is placed on
    the macro where it *finishes* earliest, with ties broken toward the
    macro whose resident LUT already matches (then the lowest index) — the
    exact placement rule of the flat stream scheduler, generalised with
    start times.  For a dependency-free graph this degenerates to the flat
    scheduler's placement decision for decision, which is what the parity
    tests pin down.

    ``execute(node, macro)``, when given, runs the node on that macro and
    returns its *measured* cycles, which replace the nominal charge (the
    placement decision itself always uses the nominal cost, mirroring
    :meth:`Chip.multiply`).  ``placement_key(node)``, when given,
    overrides the LUT-residency key (execution paths key on the resolved
    multiplicand *value* so the schedule's reuse accounting matches what
    the macros actually measure).
    """
    nodes = graph.nodes
    count = len(nodes)
    dependents: List[List[int]] = [[] for _ in range(count)]
    remaining = [0] * count
    for node in nodes:
        deps = set(node.deps)
        remaining[node.index] = len(deps)
        for dep in deps:
            dependents[dep].append(node.index)

    free = [0] * macros
    busy = [0] * macros
    jobs_on = [0] * macros
    resident: List[Optional[str]] = [None] * macros
    refills = 0
    finish = [0] * count
    critical = [0] * count

    ready = [
        (0, -nodes[index].priority, index)
        for index in range(count)
        if remaining[index] == 0
    ]
    heapq.heapify(ready)
    while ready:
        ready_time, _, index = heapq.heappop(ready)
        node = nodes[index]
        key = node.multiplicand if placement_key is None else placement_key(node)
        best_macro = 0
        best_finish: Optional[int] = None
        best_reused = False
        best_start = 0
        for macro in range(macros):
            reused = resident[macro] == key
            cost = iteration_cycles + (0 if reused else refill_cycles)
            start = max(free[macro], ready_time)
            finish_time = start + cost
            if (
                best_finish is None
                or finish_time < best_finish
                or (finish_time == best_finish and reused and not best_reused)
            ):
                best_macro = macro
                best_finish = finish_time
                best_reused = reused
                best_start = start
        cost = iteration_cycles + (0 if best_reused else refill_cycles)
        if execute is not None:
            cost = execute(node, best_macro)
            best_finish = best_start + cost
        free[best_macro] = best_finish
        busy[best_macro] += cost
        jobs_on[best_macro] += 1
        resident[best_macro] = key
        if not best_reused:
            refills += 1
        finish[index] = best_finish
        critical[index] = cost + max(
            (critical[dep] for dep in node.deps), default=0
        )
        for dependent in dependents[index]:
            remaining[dependent] -= 1
            if remaining[dependent] == 0:
                ready_at = max(
                    (finish[dep] for dep in nodes[dependent].deps), default=0
                )
                heapq.heappush(
                    ready, (ready_at, -nodes[dependent].priority, dependent)
                )

    if sum(jobs_on) != count:
        raise ConfigurationError(
            f"graph dispatch scheduled {sum(jobs_on)} of {count} nodes; "
            "the dependency structure is not a DAG"
        )
    return {
        "jobs": count,
        "per_macro_jobs": tuple(jobs_on),
        "per_macro_busy_cycles": tuple(busy),
        "makespan_cycles": max(finish, default=0),
        "critical_path_cycles": max(critical, default=0),
        "lut_refills": refills,
    }


class _PlacementState:
    """Flat-stream placement shared by both chip layers.

    The default ``lut-aware`` policy is finish-time-greedy and
    LUT-residency-aware; ``round-robin`` ignores both and cycles through
    the macros in index order (the baseline the DSE sweeps race against).
    """

    def __init__(
        self,
        macros: int,
        iteration_cycles: int,
        refill_cycles: int,
        policy: str = "lut-aware",
    ) -> None:
        if macros <= 0:
            raise ConfigurationError(f"macros must be positive, got {macros}")
        if policy not in SCHEDULER_POLICIES:
            raise ConfigurationError(
                f"unknown scheduler policy {policy!r}; choose from "
                f"{SCHEDULER_POLICIES}"
            )
        self.macros = macros
        self.policy = policy
        self.iteration_cycles = iteration_cycles
        self.refill_cycles = refill_cycles
        self.loads = [0] * macros
        self.jobs = [0] * macros
        self.resident: List[Optional[str]] = [None] * macros
        self.refills = 0
        self._cursor = 0

    def place(self, key: str) -> Tuple[int, bool]:
        """Place one job; returns ``(macro_index, lut_reused)``.

        Under ``lut-aware`` the job lands where it finishes earliest: a
        macro with the matching resident LUT saves the refill cycles, so it
        wins unless it is already more than one refill ahead of the
        least-loaded macro; ties break toward the reusing macro, then the
        lowest index.  Under ``round-robin`` the job lands on the next
        macro in index order regardless of residency.
        """
        if self.policy == "round-robin":
            macro = self._cursor
            self._cursor = (self._cursor + 1) % self.macros
            reused = self.resident[macro] == key
            cost = self.loads[macro] + self.iteration_cycles
            if not reused:
                cost += self.refill_cycles
            self.loads[macro] = cost
            self.jobs[macro] += 1
            self.resident[macro] = key
            if not reused:
                self.refills += 1
            return macro, reused
        best_macro = 0
        best_cost = None
        best_reused = False
        for macro in range(self.macros):
            reused = self.resident[macro] == key
            cost = self.loads[macro] + self.iteration_cycles
            if not reused:
                cost += self.refill_cycles
            if (
                best_cost is None
                or cost < best_cost
                or (cost == best_cost and reused and not best_reused)
            ):
                best_macro, best_cost, best_reused = macro, cost, reused
        self.loads[best_macro] = best_cost
        self.jobs[best_macro] += 1
        self.resident[best_macro] = key
        if not best_reused:
            self.refills += 1
        return best_macro, best_reused

    def charge(self, macro: int, actual_cycles: int, nominal_cycles: int) -> None:
        """Replace a nominal placement charge with measured cycles."""
        self.loads[macro] += actual_cycles - nominal_cycles


class ChipScheduler:
    """Schedules abstract multiplication streams onto an N-macro chip.

    Uses the analytical cost algebra: every job costs the configuration's
    main-loop cycles plus (when the resident LUT does not match) the
    radix-4 refill — the same constants as the single-macro
    :class:`~repro.modsram.scheduler.PointOperationScheduler`, generalised
    to a pool of macros.
    """

    def __init__(
        self,
        macros: int = 4,
        config: Optional[ModSRAMConfig] = None,
        geometry: Optional[MacroGeometry] = None,
        policy: str = "lut-aware",
    ) -> None:
        if macros <= 0:
            raise ConfigurationError(f"macros must be positive, got {macros}")
        if policy not in SCHEDULER_POLICIES:
            raise ConfigurationError(
                f"unknown scheduler policy {policy!r}; choose from "
                f"{SCHEDULER_POLICIES}"
            )
        self.macros = macros
        self.config = config or ModSRAMConfig()
        self.policy = policy
        self.cost_model = AnalyticalCostModel(self.config, geometry)

    def schedule(
        self,
        jobs: Iterable[MultiplicationJob],
        operation: str = "stream",
    ) -> ChipSchedule:
        """Dispatch one stream; returns the chip-level schedule summary."""
        state = _PlacementState(
            self.macros,
            self.cost_model.iteration_cycles(),
            self.cost_model.radix4_refill_cycles(),
            policy=self.policy,
        )
        count = 0
        for job in jobs:
            state.place(job.multiplicand)
            count += 1
        return ChipSchedule(
            operation=operation,
            macros=self.macros,
            jobs=count,
            per_macro_jobs=tuple(state.jobs),
            per_macro_cycles=tuple(state.loads),
            lut_refills=state.refills,
            frequency_mhz=self.config.frequency_mhz,
        )

    def schedule_graph(
        self,
        graph: "WorkloadGraph",
        operation: Optional[str] = None,
    ) -> GraphSchedule:
        """Dependency-aware dispatch of one workload graph.

        Ready fronts (nodes whose dependencies have finished) are placed
        finish-time-greedy and LUT-residency-aware across the macros; a
        node never starts before its dependencies complete, so — unlike
        :meth:`schedule`, which assumes a stream of independent jobs — the
        resulting makespan is *valid* for dependent workloads.  For a
        dependency-free graph the two paths place identically.  Graph
        dispatch is always LUT-residency-aware; the flat-stream ``policy``
        does not apply here.
        """
        dispatch = _dispatch_graph(
            graph,
            self.macros,
            self.cost_model.iteration_cycles(),
            self.cost_model.radix4_refill_cycles(),
        )
        return GraphSchedule(
            operation=operation or getattr(graph, "name", "graph"),
            macros=self.macros,
            depth=graph.depth,
            frequency_mhz=self.config.frequency_mhz,
            **dispatch,
        )


@dataclass(frozen=True)
class ChipGraphRun:
    """Products plus schedule of one graph executed on a :class:`Chip`."""

    schedule: GraphSchedule
    #: Product of every node, indexed like the graph's nodes.
    values: Tuple[int, ...]
    #: Node indices nothing depends on (the request's results).
    sinks: Tuple[int, ...]

    @property
    def results(self) -> Tuple[int, ...]:
        """The sink products, in node order."""
        return tuple(self.values[index] for index in self.sinks)


class Chip:
    """``N`` analytical-tier macros executing real multiplications.

    Every :meth:`multiply` is placed LUT-reuse-aware (the key is the actual
    multiplicand value and modulus) and executed on that macro's
    :class:`AnalyticalModSRAM`, whose exact cycle report is charged to the
    macro's busy time.  :meth:`activity` summarises the accumulated
    schedule in the same :class:`ChipSchedule` shape the abstract scheduler
    produces.
    """

    def __init__(
        self,
        macros: int = 4,
        config: Optional[ModSRAMConfig] = None,
        geometry: Optional[MacroGeometry] = None,
    ) -> None:
        if macros <= 0:
            raise ConfigurationError(f"macros must be positive, got {macros}")
        base = config or ModSRAMConfig()
        self._macros = [
            AnalyticalModSRAM(base, geometry) for _ in range(macros)
        ]
        # Executable macros apply the geometry to their config, so the
        # chip-level view (config, cost model) follows the first macro.
        self.config = self._macros[0].config
        self.cost_model = self._macros[0].cost_model
        self._state = _PlacementState(
            macros,
            self.cost_model.iteration_cycles(),
            self.cost_model.lut_fill_cycles(),
        )

    @property
    def macros(self) -> int:
        """Number of macros on the chip."""
        return len(self._macros)

    def macro(self, index: int) -> AnalyticalModSRAM:
        """Direct access to one macro (tests, diagnostics)."""
        return self._macros[index]

    def multiply(self, a: int, b: int, modulus: int) -> MultiplicationResult:
        """Place and execute one multiplication on the best macro."""
        key = f"{b:#x}@{modulus:#x}"
        macro_index, reused = self._state.place(key)
        nominal = self._state.iteration_cycles + (
            0 if reused else self._state.refill_cycles
        )
        result = self._macros[macro_index].multiply(a, b, modulus)
        actual = result.report.iteration_cycles + result.report.precompute_cycles
        self._state.charge(macro_index, actual, nominal)
        return result

    def multiply_many(
        self, pairs: List[Tuple[int, int]], modulus: int
    ) -> List[MultiplicationResult]:
        """Dispatch a batch of operand pairs across the chip."""
        return [self.multiply(a, b, modulus) for a, b in pairs]

    def run_graph(
        self,
        graph: "WorkloadGraph",
        modulus: int,
        operation: Optional[str] = None,
    ) -> ChipGraphRun:
        """Execute an operand-carrying graph across the chip's macros.

        Placement is the same dependency-aware, LUT-residency-aware rule
        as :meth:`ChipScheduler.schedule_graph`; every node then runs on
        its macro's :class:`AnalyticalModSRAM` and the *measured* cycle
        report replaces the nominal charge (mirroring :meth:`multiply`).
        Products are bit-identical to evaluating the nodes one by one —
        placement changes the timing, never the arithmetic.
        """
        if not getattr(graph, "executable", False):
            raise ConfigurationError(
                f"graph {getattr(graph, 'name', '?')!r} is structural "
                "(nodes without operands); only operand-carrying graphs "
                "can be executed"
            )
        values: List[Optional[int]] = [None] * len(graph.nodes)

        def resolve(operand) -> int:
            if hasattr(operand, "node"):
                resolved = values[operand.node]
                assert resolved is not None  # dispatch order guarantees it
                return resolved
            return int(operand) % modulus

        def execute(node, macro: int) -> int:
            result = self._macros[macro].multiply(
                resolve(node.a), resolve(node.b), modulus
            )
            values[node.index] = result.product
            return (
                result.report.iteration_cycles
                + result.report.precompute_cycles
            )

        def placement_key(node) -> str:
            # Key residency on the actual multiplicand value (mirroring
            # :meth:`multiply`), so the schedule's reuse accounting agrees
            # with the precompute cycles the macros measure.
            return f"{resolve(node.b):#x}@{modulus:#x}"

        dispatch = _dispatch_graph(
            graph,
            self.macros,
            self._state.iteration_cycles,
            self._state.refill_cycles,
            execute=execute,
            placement_key=placement_key,
        )
        schedule = GraphSchedule(
            operation=operation or getattr(graph, "name", "graph"),
            macros=self.macros,
            depth=graph.depth,
            frequency_mhz=self.config.frequency_mhz,
            **dispatch,
        )
        return ChipGraphRun(
            schedule=schedule,
            values=tuple(value for value in values),  # type: ignore[arg-type]
            sinks=tuple(graph.sinks()),
        )

    def activity(self, operation: str = "executed") -> ChipSchedule:
        """Schedule summary of everything executed so far."""
        state = self._state
        return ChipSchedule(
            operation=operation,
            macros=self.macros,
            jobs=sum(state.jobs),
            per_macro_jobs=tuple(state.jobs),
            per_macro_cycles=tuple(state.loads),
            lut_refills=state.refills,
            frequency_mhz=self.config.frequency_mhz,
        )

    def stats(self):
        """Chip-wide access profile: every macro's stats merged."""
        merged = ArrayStats()
        for macro in self._macros:
            merged = merged.merged_with(macro.host.stats)
        return merged

    def energy_report(self):
        """Energy implied by everything executed so far, chip-wide."""
        register_bits = sum(
            macro.host.datapath.stats.register_bits_written
            for macro in self._macros
        )
        return self.config.energy.from_stats(self.stats(), register_bits)
