"""Multi-macro chip model: scale-out of the ModSRAM macro.

§5.2 of the paper sizes one 64-row macro so a point operation's operands
stay resident while its multiplications execute; this module generalises
that scheduling argument from one macro to a *chip* of ``N`` macros.  A
workload arrives as a stream of :class:`MultiplicationJob`\\ s — each naming
the multiplicand whose radix-4 LUT it needs — and the chip-level scheduler
places every job on the macro where it finishes earliest, which makes the
placement LUT-reuse-aware: a macro whose resident LUT already matches skips
the refill and therefore usually wins the placement race.

Two layers share the placement core:

* :class:`ChipScheduler` schedules *abstract* streams (no operand values)
  with the analytical cost algebra — this is what the ``chip-scaling``
  experiment runs at 2^16-NTT scale;
* :class:`Chip` *executes* real multiplications on ``N`` analytical-tier
  macros (the substrate behind the ``modsram-chip`` engine backend),
  charging each macro the exact per-multiplication cycle report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.modsram.analytical import AnalyticalCostModel, AnalyticalModSRAM
from repro.modsram.config import ModSRAMConfig
from repro.modsram.report import MultiplicationResult
from repro.sram.stats import ArrayStats

__all__ = ["MultiplicationJob", "ChipSchedule", "ChipScheduler", "Chip"]


@dataclass(frozen=True)
class MultiplicationJob:
    """One modular multiplication of a workload stream.

    ``multiplicand`` is the LUT-reuse key: two consecutive jobs on the same
    macro with equal keys share the resident radix-4 LUT.  ``tag`` is a free
    annotation naming the originating operation (``"double[17]"``,
    ``"ntt:s3"``, ...) for diagnostics.
    """

    multiplicand: str
    tag: str = ""


@dataclass(frozen=True)
class ChipSchedule:
    """Outcome of dispatching one stream across a chip's macros."""

    operation: str
    macros: int
    jobs: int
    per_macro_jobs: Tuple[int, ...]
    per_macro_cycles: Tuple[int, ...]
    lut_refills: int
    frequency_mhz: float

    @property
    def makespan_cycles(self) -> int:
        """Cycles until the busiest macro finishes (the chip's latency)."""
        return max(self.per_macro_cycles) if self.per_macro_cycles else 0

    @property
    def total_cycles(self) -> int:
        """Cycles summed over every macro (the chip's energy-relevant work)."""
        return sum(self.per_macro_cycles)

    @property
    def lut_reuse_rate(self) -> float:
        """Fraction of jobs that reused a resident radix-4 LUT."""
        if not self.jobs:
            return 0.0
        return 1.0 - self.lut_refills / self.jobs

    @property
    def utilization(self) -> float:
        """How evenly the stream spread (1.0 = perfectly balanced)."""
        if not self.jobs or self.makespan_cycles == 0:
            return 0.0
        return self.total_cycles / (self.macros * self.makespan_cycles)

    @property
    def latency_ms(self) -> float:
        """Wall-clock makespan at the macro clock."""
        return self.makespan_cycles / (self.frequency_mhz * 1e6) * 1e3

    @property
    def throughput_mops(self) -> float:
        """Modular multiplications per second (in millions) at the clock."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.jobs / (self.makespan_cycles / (self.frequency_mhz * 1e6)) / 1e6

    def as_dict(self) -> Dict[str, object]:
        """Flat summary for reports and JSON payloads."""
        return {
            "operation": self.operation,
            "macros": self.macros,
            "jobs": self.jobs,
            "per_macro_jobs": list(self.per_macro_jobs),
            "per_macro_cycles": list(self.per_macro_cycles),
            "lut_refills": self.lut_refills,
            "lut_reuse_rate": self.lut_reuse_rate,
            "makespan_cycles": self.makespan_cycles,
            "total_cycles": self.total_cycles,
            "utilization": self.utilization,
            "latency_ms": self.latency_ms,
            "throughput_mops": self.throughput_mops,
            "frequency_mhz": self.frequency_mhz,
        }


class _PlacementState:
    """Finish-time-greedy, LUT-reuse-aware placement shared by both layers."""

    def __init__(self, macros: int, iteration_cycles: int, refill_cycles: int) -> None:
        if macros <= 0:
            raise ConfigurationError(f"macros must be positive, got {macros}")
        self.macros = macros
        self.iteration_cycles = iteration_cycles
        self.refill_cycles = refill_cycles
        self.loads = [0] * macros
        self.jobs = [0] * macros
        self.resident: List[Optional[str]] = [None] * macros
        self.refills = 0

    def place(self, key: str) -> Tuple[int, bool]:
        """Place one job; returns ``(macro_index, lut_reused)``.

        The job lands where it finishes earliest.  A macro with the matching
        resident LUT saves the refill cycles, so it wins unless it is
        already more than one refill ahead of the least-loaded macro; ties
        break toward the reusing macro, then the lowest index.
        """
        best_macro = 0
        best_cost = None
        best_reused = False
        for macro in range(self.macros):
            reused = self.resident[macro] == key
            cost = self.loads[macro] + self.iteration_cycles
            if not reused:
                cost += self.refill_cycles
            if (
                best_cost is None
                or cost < best_cost
                or (cost == best_cost and reused and not best_reused)
            ):
                best_macro, best_cost, best_reused = macro, cost, reused
        self.loads[best_macro] = best_cost
        self.jobs[best_macro] += 1
        self.resident[best_macro] = key
        if not best_reused:
            self.refills += 1
        return best_macro, best_reused

    def charge(self, macro: int, actual_cycles: int, nominal_cycles: int) -> None:
        """Replace a nominal placement charge with measured cycles."""
        self.loads[macro] += actual_cycles - nominal_cycles


class ChipScheduler:
    """Schedules abstract multiplication streams onto an N-macro chip.

    Uses the analytical cost algebra: every job costs the configuration's
    main-loop cycles plus (when the resident LUT does not match) the
    radix-4 refill — the same constants as the single-macro
    :class:`~repro.modsram.scheduler.PointOperationScheduler`, generalised
    to a pool of macros.
    """

    def __init__(
        self, macros: int = 4, config: Optional[ModSRAMConfig] = None
    ) -> None:
        if macros <= 0:
            raise ConfigurationError(f"macros must be positive, got {macros}")
        self.macros = macros
        self.config = config or ModSRAMConfig()
        self.cost_model = AnalyticalCostModel(self.config)

    def schedule(
        self,
        jobs: Iterable[MultiplicationJob],
        operation: str = "stream",
    ) -> ChipSchedule:
        """Dispatch one stream; returns the chip-level schedule summary."""
        state = _PlacementState(
            self.macros,
            self.cost_model.iteration_cycles(),
            self.cost_model.radix4_refill_cycles(),
        )
        count = 0
        for job in jobs:
            state.place(job.multiplicand)
            count += 1
        return ChipSchedule(
            operation=operation,
            macros=self.macros,
            jobs=count,
            per_macro_jobs=tuple(state.jobs),
            per_macro_cycles=tuple(state.loads),
            lut_refills=state.refills,
            frequency_mhz=self.config.frequency_mhz,
        )


class Chip:
    """``N`` analytical-tier macros executing real multiplications.

    Every :meth:`multiply` is placed LUT-reuse-aware (the key is the actual
    multiplicand value and modulus) and executed on that macro's
    :class:`AnalyticalModSRAM`, whose exact cycle report is charged to the
    macro's busy time.  :meth:`activity` summarises the accumulated
    schedule in the same :class:`ChipSchedule` shape the abstract scheduler
    produces.
    """

    def __init__(
        self, macros: int = 4, config: Optional[ModSRAMConfig] = None
    ) -> None:
        if macros <= 0:
            raise ConfigurationError(f"macros must be positive, got {macros}")
        self.config = config or ModSRAMConfig()
        self.cost_model = AnalyticalCostModel(self.config)
        self._macros = [AnalyticalModSRAM(self.config) for _ in range(macros)]
        self._state = _PlacementState(
            macros,
            self.cost_model.iteration_cycles(),
            self.cost_model.lut_fill_cycles(),
        )

    @property
    def macros(self) -> int:
        """Number of macros on the chip."""
        return len(self._macros)

    def macro(self, index: int) -> AnalyticalModSRAM:
        """Direct access to one macro (tests, diagnostics)."""
        return self._macros[index]

    def multiply(self, a: int, b: int, modulus: int) -> MultiplicationResult:
        """Place and execute one multiplication on the best macro."""
        key = f"{b:#x}@{modulus:#x}"
        macro_index, reused = self._state.place(key)
        nominal = self._state.iteration_cycles + (
            0 if reused else self._state.refill_cycles
        )
        result = self._macros[macro_index].multiply(a, b, modulus)
        actual = result.report.iteration_cycles + result.report.precompute_cycles
        self._state.charge(macro_index, actual, nominal)
        return result

    def multiply_many(
        self, pairs: List[Tuple[int, int]], modulus: int
    ) -> List[MultiplicationResult]:
        """Dispatch a batch of operand pairs across the chip."""
        return [self.multiply(a, b, modulus) for a, b in pairs]

    def activity(self, operation: str = "executed") -> ChipSchedule:
        """Schedule summary of everything executed so far."""
        state = self._state
        return ChipSchedule(
            operation=operation,
            macros=self.macros,
            jobs=sum(state.jobs),
            per_macro_jobs=tuple(state.jobs),
            per_macro_cycles=tuple(state.loads),
            lut_refills=state.refills,
            frequency_mhz=self.config.frequency_mhz,
        )

    def stats(self):
        """Chip-wide access profile: every macro's stats merged."""
        merged = ArrayStats()
        for macro in self._macros:
            merged = merged.merged_with(macro.host.stats)
        return merged

    def energy_report(self):
        """Energy implied by everything executed so far, chip-wide."""
        register_bits = sum(
            macro.host.datapath.stats.register_bits_written
            for macro in self._macros
        )
        return self.config.energy.from_stats(self.stats(), register_bits)
