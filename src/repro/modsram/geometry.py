"""First-class macro geometry for the analytical cost algebra.

The paper evaluates one design point — a 64 × 256 single-bank array with a
radix-4 Booth recoding and an 8-row overflow LUT — and until this module the
analytical tier hard-coded those constants.  :class:`MacroGeometry` lifts
them into a value object the cost model takes as a constructor parameter, so
the design-space exploration layer (:mod:`repro.dse`) can sweep rows, column
width, banking, radix and LUT sizing without touching the algebra itself.

The default geometry reproduces the paper's constants exactly: with
``MacroGeometry()`` every cycle count the cost model emits is identical to
the pre-refactor closed forms (767 main-loop cycles at the paper point).

Only the *closed-form* tier understands every geometry; the executable
tiers (cycle / hdl / functional kernel) implement the radix-4 single-bank
design and reject anything else.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.modsram.config import (
    INTERMEDIATE_ROWS,
    MINIMUM_OPERAND_ROWS,
    OVERFLOW_LUT_ROWS,
    ModSRAMConfig,
)

__all__ = ["MacroGeometry", "SUPPORTED_RADICES"]

#: Booth recodings the closed-form algebra models (one digit per loop
#: iteration; the executable kernel implements radix 4 only).
SUPPORTED_RADICES = (2, 4, 8, 16)


@dataclass(frozen=True)
class MacroGeometry:
    """Array shape and recoding parameters of one ModSRAM macro.

    Attributes
    ----------
    rows / columns:
        SRAM array geometry (word lines × bit lines).
    banks:
        Independently addressable sub-arrays.  Banking parallelises bulk
        row *writes* (operand load and LUT fill) ``banks`` ways; the main
        loop is a serial recurrence and gains nothing, so the paper's
        767-cycle figure is bank-invariant.
    radix:
        Booth recoding radix.  One digit is retired per main-loop
        iteration, so higher radices shorten the loop but enlarge the
        precomputed-multiple LUT (``radix + 1`` rows).
    overflow_rows:
        Word lines of the overflow-fold LUT (the paper sizes it at 8).
    """

    rows: int = 64
    columns: int = 256
    banks: int = 1
    radix: int = 4
    overflow_rows: int = OVERFLOW_LUT_ROWS

    def __post_init__(self) -> None:
        for name in ("rows", "columns", "banks", "overflow_rows"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"geometry field {name!r} must be an integer, "
                    f"got {value!r}"
                )
        if self.radix not in SUPPORTED_RADICES:
            raise ConfigurationError(
                f"geometry field 'radix' must be one of "
                f"{SUPPORTED_RADICES}, got {self.radix!r}"
            )
        if self.columns < 4:
            raise ConfigurationError(
                f"geometry field 'columns' must be at least 4, "
                f"got {self.columns}"
            )
        if self.banks < 1:
            raise ConfigurationError(
                f"geometry field 'banks' must be at least 1, got {self.banks}"
            )
        if self.rows < 1:
            raise ConfigurationError(
                f"geometry field 'rows' must be positive, got {self.rows}"
            )
        if self.rows % self.banks != 0:
            raise ConfigurationError(
                f"geometry field 'banks' must divide rows evenly: "
                f"rows={self.rows} % banks={self.banks} != 0"
            )
        if self.overflow_rows < 2:
            raise ConfigurationError(
                f"geometry field 'overflow_rows' must be at least 2, "
                f"got {self.overflow_rows}"
            )
        if self.rows < self.minimum_rows:
            raise ConfigurationError(
                f"geometry field 'rows' is too small for the memory map: "
                f"{self.rows} < {self.minimum_rows} (operands "
                f"{MINIMUM_OPERAND_ROWS}, LUTs {self.lut_rows}, "
                f"intermediates {INTERMEDIATE_ROWS})"
            )

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def digit_bits(self) -> int:
        """Multiplier bits retired per main-loop iteration (log2 radix)."""
        return self.radix.bit_length() - 1

    @property
    def radix_rows(self) -> int:
        """Word lines of the precomputed-multiple LUT (``radix + 1``)."""
        return self.radix + 1

    @property
    def computed_radix_entries(self) -> int:
        """LUT entries needing near-memory computation (0 and B are free)."""
        return self.radix_rows - 2

    @property
    def lut_rows(self) -> int:
        """Total word lines dedicated to the two precomputation LUTs."""
        return self.radix_rows + self.overflow_rows

    @property
    def minimum_rows(self) -> int:
        """Smallest array that can hold this geometry's memory map."""
        return MINIMUM_OPERAND_ROWS + self.lut_rows + INTERMEDIATE_ROWS

    @property
    def operand_capacity(self) -> int:
        """Rows left for operands once LUTs and intermediates are placed."""
        return self.rows - self.lut_rows - INTERMEDIATE_ROWS

    def iterations(self, bitwidth: int, extend_for_full_range: bool) -> int:
        """Main-loop iterations for one ``bitwidth``-bit multiplication.

        Generalises the paper's ``n/2`` radix-4 count to any supported
        radix; the full-range extension adds one digit exactly when the
        bitwidth is a multiple of the digit width (same rule the
        :class:`~repro.modsram.config.ModSRAMConfig` property applies for
        radix 4).
        """
        digits = self.digit_bits
        base = (bitwidth + digits - 1) // digits
        if extend_for_full_range and bitwidth % digits == 0:
            return base + 1
        return base

    def write_burst_cycles(self, row_writes: int) -> int:
        """Cycles to issue ``row_writes`` independent row writes.

        Banking overlaps bulk writes across sub-arrays; a single bank
        issues one write per cycle (the paper's schedule).
        """
        if row_writes <= 0:
            return 0
        return -(-row_writes // self.banks)  # ceil division

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(cls, config: ModSRAMConfig) -> "MacroGeometry":
        """The geometry a :class:`ModSRAMConfig` implies (paper constants)."""
        return cls(rows=config.rows, columns=config.columns)

    def apply_to(self, config: ModSRAMConfig) -> ModSRAMConfig:
        """A config copy whose array shape matches this geometry.

        Raises :class:`ConfigurationError` (naming ``columns``) when the
        geometry cannot hold the config's operand width.
        """
        if self.columns < config.bitwidth:
            raise ConfigurationError(
                f"geometry field 'columns' must cover the operand width: "
                f"columns={self.columns} < bitwidth={config.bitwidth}"
            )
        return replace(config, rows=self.rows, columns=self.columns)

    def as_dict(self) -> dict:
        """JSON-clean field mapping (inverse of ``MacroGeometry(**d)``)."""
        return {
            "rows": self.rows,
            "columns": self.columns,
            "banks": self.banks,
            "radix": self.radix,
            "overflow_rows": self.overflow_rows,
        }


def _default_geometry(
    config: ModSRAMConfig, geometry: Optional[MacroGeometry]
) -> MacroGeometry:
    """Resolve an optional geometry argument against a config's shape."""
    return geometry if geometry is not None else MacroGeometry.from_config(config)
