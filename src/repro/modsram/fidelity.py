"""Fidelity-tier selection for the layered simulation core.

One algorithm body (:mod:`repro.modsram.kernel`), three interchangeable
execution tiers:

``functional``
    Product + operation counts only; no SRAM substrate, no cycle model.
    (:class:`~repro.modsram.functional.FunctionalModSRAM`)
``analytical``
    Product + exact closed-form cycle/energy reports; no per-cycle events.
    (:class:`~repro.modsram.analytical.AnalyticalModSRAM`)
``cycle``
    The word-line-accurate model with the controller FSM, the logic-SA
    sense amplifiers and opt-in trace sinks.
    (:class:`~repro.modsram.accelerator.ModSRAMAccelerator`)

All three expose ``multiply(a, b, modulus)`` / ``multiply_many`` returning
objects with a ``.product``; the analytical and cycle tiers additionally
return a ``.report`` (:class:`~repro.modsram.report.CycleReport`) that the
tests require to match field by field.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.analytical import AnalyticalModSRAM
from repro.modsram.config import ModSRAMConfig
from repro.modsram.functional import FunctionalModSRAM

__all__ = ["Fidelity", "build_simulator"]


class Fidelity(str, Enum):
    """How much of the hardware one simulation run resolves."""

    FUNCTIONAL = "functional"
    ANALYTICAL = "analytical"
    CYCLE = "cycle"

    @classmethod
    def coerce(cls, value: Union[str, "Fidelity"]) -> "Fidelity":
        """Accept enum members or their string names, with a clear error."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown fidelity {value!r}; choose from "
                f"{[member.value for member in cls]}"
            ) from None


def build_simulator(
    fidelity: Union[str, Fidelity] = Fidelity.CYCLE,
    config: Optional[ModSRAMConfig] = None,
):
    """Instantiate the simulator for a fidelity tier (string or enum)."""
    tier = Fidelity.coerce(fidelity)
    if tier is Fidelity.FUNCTIONAL:
        return FunctionalModSRAM(config)
    if tier is Fidelity.ANALYTICAL:
        return AnalyticalModSRAM(config)
    return ModSRAMAccelerator(config)
