"""Fidelity-tier selection for the layered simulation core.

One algorithm body (:mod:`repro.modsram.kernel`), three interchangeable
execution tiers:

``functional``
    Product + operation counts only; no SRAM substrate, no cycle model.
    (:class:`~repro.modsram.functional.FunctionalModSRAM`)
``analytical``
    Product + exact closed-form cycle/energy reports; no per-cycle events.
    (:class:`~repro.modsram.analytical.AnalyticalModSRAM`)
``cycle``
    The word-line-accurate model with the controller FSM, the logic-SA
    sense amplifiers and opt-in trace sinks.
    (:class:`~repro.modsram.accelerator.ModSRAMAccelerator`)
``hdl``
    Event-driven co-simulation of the elaborated RTL: the same schedule as
    structural IR, executed by the :mod:`repro.hdl` event simulator with
    delta-cycle settling and register semantics.
    (:class:`~repro.hdl.eventsim.HdlModSRAM`)

All three expose ``multiply(a, b, modulus)`` / ``multiply_many`` returning
objects with a ``.product``; the analytical and cycle tiers additionally
return a ``.report`` (:class:`~repro.modsram.report.CycleReport`) that the
tests require to match field by field.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.analytical import AnalyticalModSRAM
from repro.modsram.config import ModSRAMConfig
from repro.modsram.functional import FunctionalModSRAM

__all__ = ["Fidelity", "build_simulator"]


class Fidelity(str, Enum):
    """How much of the hardware one simulation run resolves."""

    FUNCTIONAL = "functional"
    ANALYTICAL = "analytical"
    CYCLE = "cycle"
    HDL = "hdl"

    @classmethod
    def coerce(cls, value: Union[str, "Fidelity"]) -> "Fidelity":
        """Accept enum members or their string names, with a clear error."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown fidelity {value!r}; choose from "
                f"{[member.value for member in cls]}"
            ) from None


def build_simulator(
    fidelity: Union[str, Fidelity] = Fidelity.CYCLE,
    config: Optional[ModSRAMConfig] = None,
):
    """Instantiate the simulator for a fidelity tier (string or enum)."""
    tier = Fidelity.coerce(fidelity)
    if tier is Fidelity.HDL:
        # imported lazily: repro.hdl depends on repro.modsram, and eagerly
        # importing it here would close an import cycle.
        from repro.hdl.eventsim import HdlModSRAM

        return HdlModSRAM(config)
    builders = {
        Fidelity.FUNCTIONAL: FunctionalModSRAM,
        Fidelity.ANALYTICAL: AnalyticalModSRAM,
        Fidelity.CYCLE: ModSRAMAccelerator,
    }
    try:
        builder = builders[tier]
    except KeyError:
        raise ConfigurationError(
            f"no simulator registered for fidelity {tier.value!r}; valid "
            f"tiers are {sorted(member.value for member in Fidelity)}"
        ) from None
    return builder(config)
