"""Adapters exposing the simulation tiers as ModularMultipliers.

This lets the ECC field layer, the ZKP kernels and the algorithm test suite
treat the simulated hardware exactly like any software algorithm: the same
interface, the same operand preconditions, the same oracle checks.  Three
adapters are registered, one per deployment shape:

``modsram``
    The cycle-accurate tier (word-line-level SRAM simulation).
``modsram-fast``
    The analytical tier by default — identical products and exact cycle
    reports from the shared kernel on a register file, orders of magnitude
    faster; construct with ``fidelity="functional"`` to drop the cycle
    reports entirely.
``modsram-chip``
    An N-macro chip of analytical macros with LUT-reuse-aware dispatch
    (:class:`~repro.modsram.chip.Chip`).

Each adapter accumulates cycle statistics across calls, which is how the
application-level examples estimate end-to-end latency on ModSRAM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.errors import ConfigurationError
from repro.modsram.analytical import AnalyticalModSRAM
from repro.modsram.accelerator import ModSRAMAccelerator
from repro.modsram.chip import Chip, ChipSchedule
from repro.modsram.config import ModSRAMConfig
from repro.modsram.fidelity import Fidelity
from repro.modsram.functional import FunctionalModSRAM
from repro.modsram.report import CycleReport

__all__ = ["ModSRAMMultiplier", "ModSRAMFastMultiplier", "ModSRAMChipMultiplier"]


def _config_for(
    explicit: Optional[ModSRAMConfig], modulus: int
) -> ModSRAMConfig:
    """The macro configuration serving ``modulus`` (explicit wins)."""
    if explicit is not None:
        return explicit
    return ModSRAMConfig().with_bitwidth(max(modulus.bit_length(), 4))


@register_multiplier
class ModSRAMMultiplier(ModularMultiplier):
    """Runs every multiplication through the cycle-level ModSRAM model."""

    name = "modsram"
    description = (
        "Cycle-level ModSRAM accelerator model (R4CSA-LUT executed in the "
        "simulated 8T SRAM array)."
    )
    direct_form = True

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        super().__init__()
        self._config = config
        self._accelerators: Dict[int, ModSRAMAccelerator] = {}
        self.reports: List[CycleReport] = []

    # ------------------------------------------------------------------ #
    # accelerator management
    # ------------------------------------------------------------------ #
    def accelerator_for(self, modulus: int) -> ModSRAMAccelerator:
        """Return (and cache) a macro sized for ``modulus``.

        When the adapter was constructed with an explicit configuration that
        configuration is always used; otherwise a macro is instantiated per
        modulus bitwidth, mirroring how a real deployment would provision
        one macro per field.
        """
        config = _config_for(self._config, modulus)
        key = config.bitwidth
        if key not in self._accelerators:
            self._accelerators[key] = ModSRAMAccelerator(config)
        return self._accelerators[key]

    def prepare(self, modulus: int) -> None:
        """Provision the simulated macro for ``modulus`` eagerly."""
        self.accelerator_for(modulus)

    # ------------------------------------------------------------------ #
    # ModularMultiplier interface
    # ------------------------------------------------------------------ #
    def _multiply(self, a: int, b: int, modulus: int) -> int:
        accelerator = self.accelerator_for(modulus)
        result = accelerator.multiply(a, b, modulus)
        self.reports.append(result.report)
        self._account(result.report)
        return result.product

    def _account(self, report: CycleReport) -> None:
        self.stats.iterations += report.iterations
        self.stats.lut_lookups += 2 * report.iterations
        self.stats.carry_save_additions += 2 * report.iterations
        if not report.lut_reused:
            self.stats.precomputations += 1

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Main-loop cycles of a macro sized for ``bitwidth`` operands."""
        config = (
            self._config
            if self._config is not None and self._config.bitwidth == bitwidth
            else ModSRAMConfig().with_bitwidth(bitwidth)
        )
        return config.expected_iteration_cycles

    # ------------------------------------------------------------------ #
    # aggregate reporting
    # ------------------------------------------------------------------ #
    def total_iteration_cycles(self) -> int:
        """Main-loop cycles accumulated over every multiplication so far."""
        return sum(report.iteration_cycles for report in self.reports)

    def lut_reuse_rate(self) -> float:
        """Fraction of multiplications that reused the resident LUTs."""
        if not self.reports:
            return 0.0
        reused = sum(1 for report in self.reports if report.lut_reused)
        return reused / len(self.reports)


@register_multiplier
class ModSRAMFastMultiplier(ModSRAMMultiplier):
    """The analytical (or functional) tier behind the multiplier interface.

    Identical products to ``modsram`` — both run the shared kernel — with
    the SRAM substrate replaced by a register file.  The default
    ``fidelity="analytical"`` keeps exact per-multiplication
    :class:`CycleReport`\\ s; ``fidelity="functional"`` drops the cycle
    model entirely (``cycles()`` returns ``None``) for pure throughput.
    """

    name = "modsram-fast"
    description = (
        "Analytical-tier ModSRAM model: the shared R4CSA-LUT kernel on a "
        "register file with closed-form cycle reports (no SRAM substrate)."
    )
    direct_form = True

    def __init__(
        self,
        config: Optional[ModSRAMConfig] = None,
        fidelity: Union[str, Fidelity] = Fidelity.ANALYTICAL,
    ) -> None:
        super().__init__(config)
        tier = Fidelity.coerce(fidelity)
        if tier is Fidelity.CYCLE:
            raise ConfigurationError(
                "fidelity='cycle' is the 'modsram' multiplier; 'modsram-fast' "
                "offers the analytical and functional tiers"
            )
        self.fidelity = tier
        self._simulators: Dict[int, object] = {}

    def simulator_for(
        self, modulus: int
    ) -> Union[AnalyticalModSRAM, FunctionalModSRAM]:
        """Return (and cache) a tier simulator sized for ``modulus``."""
        config = _config_for(self._config, modulus)
        key = config.bitwidth
        if key not in self._simulators:
            tier_cls = (
                AnalyticalModSRAM
                if self.fidelity is Fidelity.ANALYTICAL
                else FunctionalModSRAM
            )
            self._simulators[key] = tier_cls(config)
        return self._simulators[key]

    def accelerator_for(self, modulus: int) -> ModSRAMAccelerator:
        raise ConfigurationError(
            "the fast tiers have no SRAM accelerator; use simulator_for()"
        )

    def prepare(self, modulus: int) -> None:
        self.simulator_for(modulus)

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        simulator = self.simulator_for(modulus)
        result = simulator.multiply(a, b, modulus)
        if self.fidelity is Fidelity.ANALYTICAL:
            self.reports.append(result.report)
            self._account(result.report)
        else:
            self.stats.iterations += simulator.config.iterations
            self.stats.lut_lookups += 2 * simulator.config.iterations
            self.stats.carry_save_additions += 2 * simulator.config.iterations
            if not result.lut_reused:
                self.stats.precomputations += 1
        return result.product

    def cycles(self, bitwidth: int) -> Optional[int]:
        if self.fidelity is Fidelity.FUNCTIONAL:
            return None
        return super().cycles(bitwidth)


@register_multiplier
class ModSRAMChipMultiplier(ModSRAMMultiplier):
    """An N-macro chip behind the multiplier interface.

    Every multiplication is dispatched LUT-reuse-aware across the chip's
    analytical macros (:class:`~repro.modsram.chip.Chip`); per-operation
    latency matches the single-macro tiers while the chip-level activity
    summary (:meth:`activity`) exposes the scale-out throughput.
    """

    name = "modsram-chip"
    description = (
        "N-macro ModSRAM chip: analytical macros with LUT-reuse-aware "
        "chip-level dispatch."
    )
    direct_form = True

    def __init__(
        self, config: Optional[ModSRAMConfig] = None, macros: int = 4
    ) -> None:
        super().__init__(config)
        if macros <= 0:
            raise ConfigurationError(f"macros must be positive, got {macros}")
        self.macros = macros
        self._chips: Dict[int, Chip] = {}

    def chip_for(self, modulus: int) -> Chip:
        """Return (and cache) a chip sized for ``modulus``."""
        config = _config_for(self._config, modulus)
        key = config.bitwidth
        if key not in self._chips:
            self._chips[key] = Chip(self.macros, config)
        return self._chips[key]

    def accelerator_for(self, modulus: int) -> ModSRAMAccelerator:
        raise ConfigurationError(
            "the chip tier has no single SRAM accelerator; use chip_for()"
        )

    def prepare(self, modulus: int) -> None:
        self.chip_for(modulus)

    def _multiply(self, a: int, b: int, modulus: int) -> int:
        chip = self.chip_for(modulus)
        result = chip.multiply(a, b, modulus)
        self.reports.append(result.report)
        self._account(result.report)
        return result.product

    def activity(self, bitwidth: Optional[int] = None) -> ChipSchedule:
        """Chip-level schedule summary for one provisioned bitwidth.

        With a single provisioned chip (the common case) ``bitwidth`` may
        be omitted.
        """
        if not self._chips:
            raise ConfigurationError("no chip provisioned yet; multiply first")
        if bitwidth is None:
            if len(self._chips) > 1:
                raise ConfigurationError(
                    f"several chips provisioned ({sorted(self._chips)}); "
                    "name the bitwidth"
                )
            bitwidth = next(iter(self._chips))
        return self._chips[bitwidth].activity()
