"""Adapter exposing the cycle-level accelerator as a ModularMultiplier.

This lets the ECC field layer, the ZKP kernels and the algorithm test suite
treat the simulated hardware exactly like any software algorithm: the same
interface, the same operand preconditions, the same oracle checks.  The
adapter also accumulates cycle statistics across calls, which is how the
application-level examples estimate end-to-end latency on ModSRAM.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.algorithms.base import ModularMultiplier, register_multiplier
from repro.modsram.accelerator import CycleReport, ModSRAMAccelerator
from repro.modsram.config import ModSRAMConfig

__all__ = ["ModSRAMMultiplier"]


@register_multiplier
class ModSRAMMultiplier(ModularMultiplier):
    """Runs every multiplication through the cycle-level ModSRAM model."""

    name = "modsram"
    description = (
        "Cycle-level ModSRAM accelerator model (R4CSA-LUT executed in the "
        "simulated 8T SRAM array)."
    )
    direct_form = True

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        super().__init__()
        self._config = config
        self._accelerators: Dict[int, ModSRAMAccelerator] = {}
        self.reports: List[CycleReport] = []

    # ------------------------------------------------------------------ #
    # accelerator management
    # ------------------------------------------------------------------ #
    def accelerator_for(self, modulus: int) -> ModSRAMAccelerator:
        """Return (and cache) a macro sized for ``modulus``.

        When the adapter was constructed with an explicit configuration that
        configuration is always used; otherwise a macro is instantiated per
        modulus bitwidth, mirroring how a real deployment would provision
        one macro per field.
        """
        if self._config is not None:
            key = self._config.bitwidth
            if key not in self._accelerators:
                self._accelerators[key] = ModSRAMAccelerator(self._config)
            return self._accelerators[key]
        bitwidth = max(modulus.bit_length(), 4)
        if bitwidth not in self._accelerators:
            config = ModSRAMConfig().with_bitwidth(bitwidth)
            self._accelerators[bitwidth] = ModSRAMAccelerator(config)
        return self._accelerators[bitwidth]

    def prepare(self, modulus: int) -> None:
        """Provision the simulated macro for ``modulus`` eagerly."""
        self.accelerator_for(modulus)

    # ------------------------------------------------------------------ #
    # ModularMultiplier interface
    # ------------------------------------------------------------------ #
    def _multiply(self, a: int, b: int, modulus: int) -> int:
        accelerator = self.accelerator_for(modulus)
        result = accelerator.multiply(a, b, modulus)
        self.reports.append(result.report)
        self.stats.iterations += result.report.iterations
        self.stats.lut_lookups += 2 * result.report.iterations
        self.stats.carry_save_additions += 2 * result.report.iterations
        if not result.report.lut_reused:
            self.stats.precomputations += 1
        return result.product

    def cycles(self, bitwidth: int) -> Optional[int]:
        """Main-loop cycles of a macro sized for ``bitwidth`` operands."""
        config = (
            self._config
            if self._config is not None and self._config.bitwidth == bitwidth
            else ModSRAMConfig().with_bitwidth(bitwidth)
        )
        return config.expected_iteration_cycles

    # ------------------------------------------------------------------ #
    # aggregate reporting
    # ------------------------------------------------------------------ #
    def total_iteration_cycles(self) -> int:
        """Main-loop cycles accumulated over every multiplication so far."""
        return sum(report.iteration_cycles for report in self.reports)

    def lut_reuse_rate(self) -> float:
        """Fraction of multiplications that reused the resident LUTs."""
        if not self.reports:
            return 0.0
        reused = sum(1 for report in self.reports if report.lut_reused)
        return reused / len(self.reports)
