"""Cycle-by-cycle execution trace.

The paper illustrates the dataflow with a 5-bit walk-through (Figure 3).
The accelerator records a :class:`CycleEvent` for every clock cycle so the
same walk-through can be regenerated for any operand size, and so the test
suite can check structural properties of the schedule (every iteration
activates exactly three rows per compute access, the sum row is written
before the carry row, the last carry write-back is elided, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Phase", "CycleEvent", "ExecutionTrace"]


class Phase(str, Enum):
    """What the macro is doing during a given cycle."""

    LOAD_MULTIPLIER = "load-multiplier"
    PRECOMPUTE = "precompute"
    IMC_RADIX4 = "imc-radix4"
    WRITEBACK_SUM = "writeback-sum"
    WRITEBACK_CARRY = "writeback-carry"
    IMC_OVERFLOW = "imc-overflow"
    FINALIZE = "finalize"

    def is_compute_access(self) -> bool:
        """Whether this cycle performs a multi-row logic-SA access."""
        return self in (Phase.IMC_RADIX4, Phase.IMC_OVERFLOW)

    def is_writeback(self) -> bool:
        """Whether this cycle writes a row back through the write port."""
        return self in (Phase.WRITEBACK_SUM, Phase.WRITEBACK_CARRY)


@dataclass(frozen=True)
class CycleEvent:
    """One clock cycle of the ModSRAM schedule."""

    cycle: int
    phase: Phase
    iteration: Optional[int] = None
    rows_read: Tuple[int, ...] = ()
    rows_written: Tuple[int, ...] = ()
    digit: Optional[int] = None
    overflow_index: Optional[int] = None
    note: str = ""

    def describe(self) -> str:
        """Human-readable single-line description."""
        parts = [f"cycle {self.cycle:5d}", f"{self.phase.value:16s}"]
        if self.iteration is not None:
            parts.append(f"iter {self.iteration:4d}")
        if self.rows_read:
            parts.append(f"read WL{list(self.rows_read)}")
        if self.rows_written:
            parts.append(f"write WL{list(self.rows_written)}")
        if self.digit is not None:
            parts.append(f"digit {self.digit:+d}")
        if self.overflow_index is not None:
            parts.append(f"ovf {self.overflow_index}")
        if self.note:
            parts.append(self.note)
        return "  ".join(parts)


class ExecutionTrace:
    """Ordered collection of cycle events for one multiplication.

    An enabled trace is a valid :class:`~repro.modsram.tracesink.TraceSink`
    — pass one as ``trace_sink=`` to the accelerator to collect events.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[CycleEvent] = []

    @property
    def active(self) -> bool:
        """TraceSink protocol: events are only constructed when enabled."""
        return self.enabled

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, event: CycleEvent) -> None:
        """Append one event (no-op when tracing is disabled)."""
        if self.enabled:
            self._events.append(event)

    def clear(self) -> None:
        """Drop every recorded event."""
        self._events.clear()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> List[CycleEvent]:
        """All recorded events, in cycle order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def phase_events(self, phase: Phase) -> List[CycleEvent]:
        """Every event of one phase."""
        return [event for event in self._events if event.phase is phase]

    def iteration_events(self, iteration: int) -> List[CycleEvent]:
        """Every event belonging to one main-loop iteration."""
        return [event for event in self._events if event.iteration == iteration]

    def phase_histogram(self) -> Dict[str, int]:
        """Cycle count per phase."""
        histogram: Dict[str, int] = {}
        for event in self._events:
            histogram[event.phase.value] = histogram.get(event.phase.value, 0) + 1
        return dict(sorted(histogram.items()))

    def compute_access_count(self) -> int:
        """Number of multi-row logic-SA accesses."""
        return sum(1 for event in self._events if event.phase.is_compute_access())

    def writeback_count(self) -> int:
        """Number of row write-backs."""
        return sum(1 for event in self._events if event.phase.is_writeback())

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def render(
        self,
        limit: Optional[int] = None,
        phases: Optional[Sequence[Phase]] = None,
    ) -> str:
        """Multi-line text rendering (the Figure 3 walk-through generator)."""
        events: Iterable[CycleEvent] = self._events
        if phases is not None:
            allowed = set(phases)
            events = [event for event in events if event.phase in allowed]
        lines = [event.describe() for event in events]
        if limit is not None and len(lines) > limit:
            hidden = len(lines) - limit
            lines = lines[:limit] + [f"... ({hidden} more cycles)"]
        return "\n".join(lines)
