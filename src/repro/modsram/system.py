"""System-level projection: many ModSRAM macros serving a workload.

The paper's future-work section ("we plan to integrate the module into a
system-level application") frames ModSRAM as the multiplier tile of a larger
ZKP/ECC accelerator.  This module provides the first-order system model such
an integration study needs: a pool of identical macros, a workload expressed
as a number of independent modular multiplications (plus how often the
multiplicand changes, which determines LUT refills), and the resulting
throughput, latency, area and energy — including the memory traffic the
in-SRAM approach avoids compared with a conventional multiplier that streams
operands and intermediates through a register file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.modsram.area import AreaModel
from repro.modsram.config import ModSRAMConfig, PAPER_CONFIG

__all__ = ["Workload", "SystemProjection", "ModSRAMSystem"]


@dataclass(frozen=True)
class Workload:
    """A batch of modular multiplications to be executed.

    Attributes
    ----------
    name:
        Label used in reports (e.g. ``"msm-2^15"``).
    multiplications:
        Total modular multiplications in the batch.
    multiplicand_changes:
        How many of those multiplications use a *different* multiplicand
        than their predecessor on the same macro (each change refills the
        five radix-4 LUT rows).  ``None`` means "every multiplication"
        (no reuse), the conservative default.
    bitwidth:
        Operand width; must match the macro configuration.
    """

    name: str
    multiplications: int
    multiplicand_changes: Optional[int] = None
    bitwidth: int = 256

    def __post_init__(self) -> None:
        if self.multiplications < 0:
            raise ConfigurationError(
                f"multiplications must be non-negative, got {self.multiplications}"
            )
        if self.multiplicand_changes is not None and not (
            0 <= self.multiplicand_changes <= self.multiplications
        ):
            raise ConfigurationError(
                "multiplicand_changes must lie between 0 and the multiplication count"
            )

    @property
    def effective_multiplicand_changes(self) -> int:
        """LUT refills implied by the workload (conservative when unknown)."""
        if self.multiplicand_changes is None:
            return self.multiplications
        return self.multiplicand_changes


@dataclass(frozen=True)
class SystemProjection:
    """Throughput/latency/area/energy of a macro pool on one workload."""

    workload: Workload
    macros: int
    cycles_per_multiplication: int
    lut_refill_cycles: int
    total_cycles_per_macro: int
    latency_ms: float
    throughput_mops: float
    area_mm2: float
    energy_mj: float
    avoided_register_writes: int
    avoided_memory_accesses: int

    def as_dict(self) -> Dict[str, float]:
        """Flat summary for tables."""
        return {
            "workload": self.workload.name,
            "macros": self.macros,
            "cycles_per_multiplication": self.cycles_per_multiplication,
            "lut_refill_cycles": self.lut_refill_cycles,
            "total_cycles_per_macro": self.total_cycles_per_macro,
            "latency_ms": self.latency_ms,
            "throughput_mops": self.throughput_mops,
            "area_mm2": self.area_mm2,
            "energy_mj": self.energy_mj,
            "avoided_register_writes": self.avoided_register_writes,
            "avoided_memory_accesses": self.avoided_memory_accesses,
        }


class ModSRAMSystem:
    """A pool of identical ModSRAM macros."""

    #: Cycles to refill the five radix-4 LUT rows for a new multiplicand
    #: (row writes plus the near-memory modular computations).
    LUT_REFILL_CYCLES = 11
    #: Energy of one multiplication on one macro (pJ), from the energy model
    #: run over one multiplication's access counts in the default config.
    ENERGY_PER_MULTIPLICATION_PJ = 1200.0
    #: Register writes / memory accesses a conventional word-serial multiplier
    #: would spend per multiplication (the Figure 7 quantities ModSRAM avoids).
    AVOIDED_REGISTER_WRITES_PER_MUL = 20
    AVOIDED_MEMORY_ACCESSES_PER_MUL = 5

    def __init__(
        self, macros: int = 1, config: Optional[ModSRAMConfig] = None
    ) -> None:
        if macros <= 0:
            raise ConfigurationError(f"macros must be positive, got {macros}")
        self.macros = macros
        self.config = config or PAPER_CONFIG
        self._area_model = AreaModel(self.config)

    # ------------------------------------------------------------------ #
    # projections
    # ------------------------------------------------------------------ #
    def project(self, workload: Workload) -> SystemProjection:
        """Project the execution of one workload on this macro pool."""
        if workload.bitwidth != self.config.bitwidth:
            raise ConfigurationError(
                f"workload bitwidth {workload.bitwidth} does not match the "
                f"macro bitwidth {self.config.bitwidth}"
            )
        cycles_per_mul = self.config.expected_iteration_cycles
        refills = workload.effective_multiplicand_changes
        refill_cycles = refills * self.LUT_REFILL_CYCLES

        # Multiplications are independent, so they spread evenly over macros;
        # LUT refills are per-macro work and spread the same way.
        per_macro_muls = -(-workload.multiplications // self.macros)
        per_macro_refills = -(-refills // self.macros)
        total_cycles = (
            per_macro_muls * cycles_per_mul
            + per_macro_refills * self.LUT_REFILL_CYCLES
        )

        frequency_hz = self.config.frequency_mhz * 1e6
        latency_s = total_cycles / frequency_hz if workload.multiplications else 0.0
        throughput = (
            workload.multiplications / latency_s if latency_s > 0 else 0.0
        )
        energy_j = workload.multiplications * self.ENERGY_PER_MULTIPLICATION_PJ * 1e-12

        return SystemProjection(
            workload=workload,
            macros=self.macros,
            cycles_per_multiplication=cycles_per_mul,
            lut_refill_cycles=refill_cycles,
            total_cycles_per_macro=total_cycles,
            latency_ms=latency_s * 1e3,
            throughput_mops=throughput / 1e6,
            area_mm2=self.macros * self._area_model.total_mm2(),
            energy_mj=energy_j * 1e3,
            avoided_register_writes=(
                workload.multiplications * self.AVOIDED_REGISTER_WRITES_PER_MUL
            ),
            avoided_memory_accesses=(
                workload.multiplications * self.AVOIDED_MEMORY_ACCESSES_PER_MUL
            ),
        )

    def macros_for_latency(self, workload: Workload, target_ms: float) -> int:
        """Smallest macro count that meets a latency target for a workload."""
        if target_ms <= 0:
            raise ConfigurationError(f"target latency must be positive, got {target_ms}")
        single = ModSRAMSystem(1, self.config).project(workload)
        if single.latency_ms <= target_ms:
            return 1
        # Latency scales (almost) inversely with the macro count.
        estimate = max(1, int(single.latency_ms / target_ms))
        while ModSRAMSystem(estimate, self.config).project(workload).latency_ms > target_ms:
            estimate += max(1, estimate // 10)
        return estimate
