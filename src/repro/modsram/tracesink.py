"""Pluggable trace collection for the cycle-accurate tier.

Historically the accelerator materialised a :class:`CycleEvent` for every
clock cycle even when nobody asked for a trace.  Trace collection is now a
*sink* the caller plugs in: the kernel host checks ``sink.active`` before
constructing an event, so the default run (a :class:`NullTraceSink`)
allocates no per-cycle objects at all, while an opt-in
:class:`~repro.modsram.trace.ExecutionTrace` sink reproduces the legacy
trace byte-for-byte (see ``tests/modsram/test_tracesink.py``).

Any object with an ``active`` attribute and a ``record(event)`` method is a
valid sink; :class:`ExecutionTrace` satisfies the protocol directly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.modsram.trace import CycleEvent

__all__ = ["TraceSink", "NullTraceSink", "NULL_SINK"]


@runtime_checkable
class TraceSink(Protocol):
    """What the cycle-accurate host needs from a trace collector.

    ``active`` gates event *construction*: when it is ``False`` the host
    never builds the :class:`CycleEvent`, so an inactive sink costs nothing
    on the hot path.  ``record`` receives every event in cycle order.
    """

    @property
    def active(self) -> bool:
        """Whether the host should construct and deliver events."""
        ...

    def record(self, event: CycleEvent) -> None:
        """Consume one cycle event."""
        ...


class NullTraceSink:
    """The default sink: collects nothing, allocates nothing."""

    active = False

    def record(self, event: CycleEvent) -> None:  # pragma: no cover - gated off
        """Never called while ``active`` is honoured; a no-op regardless."""


#: Shared do-nothing sink used when tracing is off (it carries no state).
NULL_SINK = NullTraceSink()
