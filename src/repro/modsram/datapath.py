"""Near-memory-computing (NMC) datapath of ModSRAM.

The paper keeps the near-memory circuit deliberately small (§4.3): three
full-width flip-flop registers (multiplier, sum, carry), the shifters on the
write-back path, the radix-4 Booth encoder, a few bits of overflow
flip-flops with their combinational logic, a LUT-select multiplexer and the
controller.  This module models the register file part of that circuit: it
owns every flip-flop, counts register writes (one of the quantities the
Figure 7 discussion is about) and performs the small amount of combinational
work (Booth window extraction, top-bit carry-save logic, overflow
accumulation) that cannot be done by the array itself because the redundant
registers are one bit wider than the array row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.booth import booth_digit_radix4
from repro.errors import ControllerError
from repro.modsram.config import ModSRAMConfig

__all__ = ["NearMemoryDatapath", "DatapathStats"]


@dataclass
class DatapathStats:
    """Flip-flop activity counters for the NMC circuit."""

    register_writes: int = 0
    register_bits_written: int = 0
    booth_encodings: int = 0
    overflow_updates: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


class NearMemoryDatapath:
    """Registers and combinational helpers of the near-memory circuit."""

    def __init__(self, config: ModSRAMConfig) -> None:
        self.config = config
        self.stats = DatapathStats()
        # Full-width registers (the "three DFFs" of the paper).
        self._multiplier: int = 0
        self._sum_latch: int = 0
        self._carry_latch: int = 0
        # Single-bit extensions: bit n of the (n+1)-bit redundant registers
        # lives here because the array row is only n columns wide.
        self._sum_msb: int = 0
        self._carry_msb: int = 0
        # Overflow bookkeeping flip-flops ("some negligible FFs for overflow").
        self._shift_overflow: int = 0
        self._pending_carry_out: int = 0

    # ------------------------------------------------------------------ #
    # register writes (all counted)
    # ------------------------------------------------------------------ #
    def _write_register(self, bits: int) -> None:
        self.stats.register_writes += 1
        self.stats.register_bits_written += bits

    def load_multiplier(self, value: int) -> None:
        """Latch the multiplier read from its operand word line."""
        if value < 0 or value >> self.config.bitwidth:
            raise ControllerError(
                f"multiplier {value:#x} does not fit in {self.config.bitwidth} bits"
            )
        self._multiplier = value
        self._write_register(self.config.bitwidth)

    def latch_imc_result(self, xor3_word: int, maj_word: int) -> None:
        """Latch the logic-SA outputs (sum and carry words) into the FFs."""
        self._sum_latch = xor3_word
        self._carry_latch = maj_word
        self._write_register(self.config.register_width)
        self._write_register(self.config.register_width)

    def set_accumulator_msbs(self, sum_msb: int, carry_msb: int) -> None:
        """Update the bit-n extensions of the sum and carry registers."""
        if sum_msb not in (0, 1) or carry_msb not in (0, 1):
            raise ControllerError("register MSB extensions must be single bits")
        self._sum_msb = sum_msb
        self._carry_msb = carry_msb
        self._write_register(2)

    def set_shift_overflow(self, value: int) -> None:
        """Latch the bits shifted out of the registers during write-back."""
        if value < 0:
            raise ControllerError(f"overflow field must be non-negative, got {value}")
        self._shift_overflow = value
        self.stats.overflow_updates += 1
        self._write_register(3)

    def set_pending_carry_out(self, bit: int) -> None:
        """Latch the carry word's escaped top bit (consumed next iteration)."""
        if bit not in (0, 1):
            raise ControllerError(f"pending carry-out must be a bit, got {bit}")
        self._pending_carry_out = bit
        self._write_register(1)

    # ------------------------------------------------------------------ #
    # register reads
    # ------------------------------------------------------------------ #
    @property
    def multiplier(self) -> int:
        """Current multiplier register value."""
        return self._multiplier

    @property
    def sum_latch(self) -> int:
        """Latched sum word (logic-SA XOR3 output)."""
        return self._sum_latch

    @property
    def carry_latch(self) -> int:
        """Latched carry word (logic-SA MAJ output)."""
        return self._carry_latch

    @property
    def sum_msb(self) -> int:
        """Bit ``n`` of the sum register."""
        return self._sum_msb

    @property
    def carry_msb(self) -> int:
        """Bit ``n`` of the carry register."""
        return self._carry_msb

    @property
    def shift_overflow(self) -> int:
        """Overflow bits captured during the last shifted write-back."""
        return self._shift_overflow

    @property
    def pending_carry_out(self) -> int:
        """Carry-out bit of the previous iteration's second CSA."""
        return self._pending_carry_out

    # ------------------------------------------------------------------ #
    # combinational helpers
    # ------------------------------------------------------------------ #
    def booth_window(self, iteration: int, total_iterations: int) -> Tuple[int, int, int]:
        """Extract the Booth window ``(a_{2i+1}, a_i, a_{2i-1})`` for an iteration.

        ``iteration`` counts from 0 (most-significant digit first), matching
        the order in which the hardware shifts the multiplier register left
        by two every cycle pair.
        """
        if not 0 <= iteration < total_iterations:
            raise ControllerError(
                f"iteration {iteration} outside 0..{total_iterations - 1}"
            )
        digit_index = total_iterations - 1 - iteration
        base = 2 * digit_index
        low = (self._multiplier >> base) & 1
        high = (self._multiplier >> (base + 1)) & 1
        previous = (self._multiplier >> (base - 1)) & 1 if base > 0 else 0
        return high, low, previous

    def booth_digit(self, iteration: int, total_iterations: int) -> int:
        """Booth digit for an iteration (Table 1a applied to the window)."""
        high, low, previous = self.booth_window(iteration, total_iterations)
        self.stats.booth_encodings += 1
        return booth_digit_radix4(high, low, previous)

    def overflow_index(self, csa_carry_out: int) -> int:
        """Combine the overflow sources into the LUT-overflow index.

        The index is the sum of the bits shifted out during the previous
        write-back, the first CSA's carry-out, and the previous iteration's
        second-CSA carry-out weighted by the two shift positions it has aged
        (see DESIGN.md §1).
        """
        if csa_carry_out not in (0, 1):
            raise ControllerError(
                f"CSA carry-out must be a bit, got {csa_carry_out}"
            )
        return self._shift_overflow + csa_carry_out + 4 * self._pending_carry_out

    # ------------------------------------------------------------------ #
    # structural facts for the area model
    # ------------------------------------------------------------------ #
    def flipflop_count(self) -> int:
        """Total flip-flops in the NMC register file."""
        full_width = self.config.bitwidth + 2 * self.config.register_width
        return full_width + 2 + 3 + 1  # MSB extensions, overflow field, pending bit

    def reset(self) -> None:
        """Clear every register (power-on state)."""
        self._multiplier = 0
        self._sum_latch = 0
        self._carry_latch = 0
        self._sum_msb = 0
        self._carry_msb = 0
        self._shift_overflow = 0
        self._pending_carry_out = 0
        self.stats.reset()
