"""Cycle accounting shared by every fidelity tier.

:class:`CycleReport` is the per-multiplication cycle algebra the paper's
evaluation reasons about; it is produced by the cycle-accurate tier (from
the controller's measured budget) and by the analytical tier (from closed
form), so both sides can be compared field by field.
:class:`MultiplicationResult` bundles the product with the report and the
(possibly empty) execution trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.modsram.trace import ExecutionTrace

__all__ = ["CycleReport", "MultiplicationResult"]


@dataclass(frozen=True)
class CycleReport:
    """Cycle accounting for one modular multiplication."""

    iterations: int
    load_cycles: int
    precompute_cycles: int
    iteration_cycles: int
    finalize_cycles: int
    extra_overflow_folds: int
    lut_reused: bool
    frequency_mhz: float

    @property
    def total_cycles(self) -> int:
        """Every cycle spent, including loading and LUT precomputation."""
        return (
            self.load_cycles
            + self.precompute_cycles
            + self.iteration_cycles
            + self.finalize_cycles
        )

    @property
    def latency_us(self) -> float:
        """Wall-clock latency of the main loop at the modelled frequency."""
        return self.iteration_cycles / self.frequency_mhz

    def as_dict(self) -> Dict[str, float]:
        """Report as a dictionary for the analysis layer."""
        return {
            "iterations": self.iterations,
            "load_cycles": self.load_cycles,
            "precompute_cycles": self.precompute_cycles,
            "iteration_cycles": self.iteration_cycles,
            "finalize_cycles": self.finalize_cycles,
            "extra_overflow_folds": self.extra_overflow_folds,
            "total_cycles": self.total_cycles,
            "lut_reused": int(self.lut_reused),
            "frequency_mhz": self.frequency_mhz,
            "latency_us": self.latency_us,
        }


@dataclass(frozen=True)
class MultiplicationResult:
    """Product plus the execution metadata of one run."""

    product: int
    report: CycleReport
    trace: ExecutionTrace
