"""Analytical fidelity tier: closed-form cycle/energy accounting.

:class:`AnalyticalCostModel` captures the ModSRAM schedule as algebra — the
per-phase cycle counts the controller FSM would measure, and the array
access profile the energy model consumes — without simulating a single word
line.  :class:`AnalyticalModSRAM` combines that algebra with the shared
kernel running on the fast register-file host
(:class:`~repro.modsram.functional.FastHost`), so it returns the same
:class:`~repro.modsram.report.MultiplicationResult` shape as the
cycle-accurate tier with *exactly* matching cycle reports (asserted field by
field in ``tests/modsram/test_fidelity.py``) at functional-tier speed.  The
only quantities taken from the kernel run rather than closed form are the
data-dependent ones: LUT reuse, pathological extra overflow folds and the
final conditional-subtraction count.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.modsram.config import ModSRAMConfig, RADIX4_LUT_ROWS
from repro.modsram.functional import FastHost
from repro.modsram.kernel import run_kernel
from repro.modsram.memory_map import MemoryMap
from repro.modsram.report import CycleReport, MultiplicationResult
from repro.modsram.trace import ExecutionTrace
from repro.sram.energy import EnergyBreakdown
from repro.sram.stats import ArrayStats

__all__ = ["AnalyticalCostModel", "AnalyticalModSRAM"]

#: Radix-4 LUT entries that require near-memory computation (2B, -B, -2B);
#: each costs two cycles (a modular add/subtract is two array-free cycles).
_COMPUTED_RADIX4_ENTRIES = 3


class AnalyticalCostModel:
    """Closed-form per-phase cycle and access algebra of one macro."""

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        self.config = config or ModSRAMConfig()
        self._overflow_rows = len(MemoryMap(self.config).overflow_rows)

    # ------------------------------------------------------------------ #
    # cycle algebra (matches the controller budget exactly)
    # ------------------------------------------------------------------ #
    def load_cycles(self) -> int:
        """Operand loading: five row writes plus the multiplier read."""
        return 6

    def lut_fill_cycles(self, reused: bool = False) -> int:
        """Full LUT precomputation for a fresh (multiplicand, modulus) pair.

        Two cycles per computed radix-4 entry, two per non-trivial overflow
        entry, plus one write per LUT word line.  Zero when the resident
        tables are reused.
        """
        if reused:
            return 0
        compute = 2 * _COMPUTED_RADIX4_ENTRIES + 2 * (self._overflow_rows - 1)
        writes = RADIX4_LUT_ROWS + self._overflow_rows
        return compute + writes

    def radix4_refill_cycles(self) -> int:
        """Refilling only the radix-4 rows (modulus unchanged): 5 writes + 6."""
        return RADIX4_LUT_ROWS + 2 * _COMPUTED_RADIX4_ENTRIES

    def iteration_cycles(self, extra_folds: int = 0) -> int:
        """Main loop: six cycles per iteration, last carry write-back elided.

        Each pathological extra overflow fold costs three more cycles (two
        write-backs plus one additional logic-SA access).
        """
        return 6 * self.config.iterations - 1 + 3 * extra_folds

    def finalize_cycles(self, subtractions: int = 1) -> int:
        """Finalisation: sum read, full addition, then the reduction steps."""
        return 2 + subtractions

    def total_cycles(
        self,
        reused: bool = False,
        extra_folds: int = 0,
        subtractions: int = 1,
    ) -> int:
        """Every cycle of one multiplication under the schedule algebra."""
        return (
            self.load_cycles()
            + self.lut_fill_cycles(reused)
            + self.iteration_cycles(extra_folds)
            + self.finalize_cycles(subtractions)
        )

    def report(
        self,
        reused: bool = False,
        extra_folds: int = 0,
        subtractions: int = 1,
    ) -> CycleReport:
        """The :class:`CycleReport` the cycle-accurate tier would measure."""
        return CycleReport(
            iterations=self.config.iterations,
            load_cycles=self.load_cycles(),
            precompute_cycles=self.lut_fill_cycles(reused),
            iteration_cycles=self.iteration_cycles(extra_folds),
            finalize_cycles=self.finalize_cycles(subtractions),
            extra_overflow_folds=extra_folds,
            lut_reused=reused,
            frequency_mhz=self.config.frequency_mhz,
        )

    # ------------------------------------------------------------------ #
    # access algebra (feeds the sram-layer energy model)
    # ------------------------------------------------------------------ #
    def array_stats(
        self, reused: bool = False, extra_folds: int = 0
    ) -> ArrayStats:
        """The :class:`ArrayStats` profile one multiplication implies.

        This is the closed-form counterpart of what the behavioural array
        collects: the energy model consumes either interchangeably.
        """
        iterations = self.config.iterations
        columns = self.config.columns
        lut_writes = 0 if reused else RADIX4_LUT_ROWS + self._overflow_rows
        row_writes = 5 + lut_writes + 4 * iterations - 1 + 2 * extra_folds
        compute_reads = 2 * iterations + extra_folds
        row_reads = 2 + compute_reads  # multiplier load + finalisation read
        return ArrayStats(
            row_writes=row_writes,
            row_reads=row_reads,
            compute_reads=compute_reads,
            rows_activated=2 + 3 * compute_reads,
            precharges=row_reads,
            bits_written=row_writes * columns,
            read_disturb_events=0,
        )

    def energy(
        self,
        reused: bool = False,
        extra_folds: int = 0,
        register_bits_written: int = 0,
    ) -> EnergyBreakdown:
        """Closed-form energy of one multiplication on this macro."""
        return self.config.energy.from_stats(
            self.array_stats(reused, extra_folds), register_bits_written
        )


class AnalyticalModSRAM:
    """Kernel-exact products with closed-form cycle and energy reports."""

    def __init__(self, config: Optional[ModSRAMConfig] = None) -> None:
        self.config = config or ModSRAMConfig()
        self.cost_model = AnalyticalCostModel(self.config)
        self.host = FastHost(self.config)

    @property
    def lut_residency(self):
        """Resident-LUT state (shared semantics with the cycle tier)."""
        return self.host.lut_residency

    def multiply(self, a: int, b: int, modulus: int) -> MultiplicationResult:
        """Compute ``a * b mod modulus``; cycles come from the cost model."""
        outcome = run_kernel(self.host, a, b, modulus)
        self.host.counter.increment("modmul")
        report = self.cost_model.report(
            reused=outcome.lut_reused,
            extra_folds=outcome.extra_overflow_folds,
            subtractions=outcome.finalize_subtractions,
        )
        return MultiplicationResult(
            product=outcome.product,
            report=report,
            trace=ExecutionTrace(enabled=False),
        )

    def multiply_many(
        self, pairs: List[Tuple[int, int]], modulus: int
    ) -> List[MultiplicationResult]:
        """Multiply a batch of operand pairs, reusing LUTs where possible."""
        return [self.multiply(a, b, modulus) for a, b in pairs]

    def expected_iteration_cycles(self) -> int:
        """The analytic main-loop cycle count for this configuration."""
        return self.config.expected_iteration_cycles

    def energy_report(self) -> EnergyBreakdown:
        """Energy implied by every access performed so far (cumulative)."""
        return self.config.energy.from_stats(
            self.host.stats, self.host.datapath.stats.register_bits_written
        )
