"""Analytical fidelity tier: closed-form cycle/energy accounting.

:class:`AnalyticalCostModel` captures the ModSRAM schedule as algebra — the
per-phase cycle counts the controller FSM would measure, and the array
access profile the energy model consumes — without simulating a single word
line.  :class:`AnalyticalModSRAM` combines that algebra with the shared
kernel running on the fast register-file host
(:class:`~repro.modsram.functional.FastHost`), so it returns the same
:class:`~repro.modsram.report.MultiplicationResult` shape as the
cycle-accurate tier with *exactly* matching cycle reports (asserted field by
field in ``tests/modsram/test_fidelity.py``) at functional-tier speed.  The
only quantities taken from the kernel run rather than closed form are the
data-dependent ones: LUT reuse, pathological extra overflow folds and the
final conditional-subtraction count.

Geometry — array shape, banking, radix, LUT sizing — is a first-class
constructor parameter (:class:`~repro.modsram.geometry.MacroGeometry`); the
default geometry reproduces the paper's constants bit for bit, and the
design-space exploration layer (:mod:`repro.dse`) sweeps it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.modsram.config import ModSRAMConfig
from repro.modsram.functional import FastHost
from repro.modsram.geometry import MacroGeometry, _default_geometry
from repro.modsram.kernel import run_kernel
from repro.modsram.report import CycleReport, MultiplicationResult
from repro.modsram.trace import ExecutionTrace
from repro.sram.energy import EnergyBreakdown
from repro.sram.stats import ArrayStats

__all__ = ["AnalyticalCostModel", "AnalyticalModSRAM"]

#: Row writes issued while loading operands (multiplicand, modulus, sum,
#: carry clears, multiplier); the multiplier read-back costs one more cycle.
_OPERAND_LOAD_WRITES = 5


class AnalyticalCostModel:
    """Closed-form per-phase cycle and access algebra of one macro.

    ``geometry`` defaults to the shape the config implies (the paper's
    single-bank radix-4 design), in which case every number below matches
    the pre-geometry closed forms exactly.  A non-default geometry changes
    the algebra — banked loads/fills, radix-scaled loop length and LUT
    sizing — while the schedule structure stays the paper's.
    """

    def __init__(
        self,
        config: Optional[ModSRAMConfig] = None,
        geometry: Optional[MacroGeometry] = None,
    ) -> None:
        self.config = config or ModSRAMConfig()
        self.geometry = _default_geometry(self.config, geometry)
        if self.geometry.columns < self.config.bitwidth:
            raise ConfigurationError(
                f"geometry field 'columns' must cover the operand width: "
                f"columns={self.geometry.columns} < "
                f"bitwidth={self.config.bitwidth}"
            )
        self._overflow_rows = self.geometry.overflow_rows

    @property
    def iterations(self) -> int:
        """Main-loop iterations one multiplication takes at this geometry."""
        return self.geometry.iterations(
            self.config.bitwidth, self.config.extend_for_full_range
        )

    # ------------------------------------------------------------------ #
    # cycle algebra (matches the controller budget exactly)
    # ------------------------------------------------------------------ #
    def load_cycles(self) -> int:
        """Operand loading: five row writes (banked) plus the multiplier read."""
        return self.geometry.write_burst_cycles(_OPERAND_LOAD_WRITES) + 1

    def lut_fill_cycles(self, reused: bool = False) -> int:
        """Full LUT precomputation for a fresh (multiplicand, modulus) pair.

        Two cycles per computed radix entry, two per non-trivial overflow
        entry, plus the (banked) writes of every LUT word line.  Zero when
        the resident tables are reused.
        """
        if reused:
            return 0
        compute = 2 * self.geometry.computed_radix_entries + 2 * (
            self._overflow_rows - 1
        )
        writes = self.geometry.radix_rows + self._overflow_rows
        return compute + self.geometry.write_burst_cycles(writes)

    def radix4_refill_cycles(self) -> int:
        """Refilling only the multiple rows (modulus unchanged)."""
        return self.geometry.write_burst_cycles(
            self.geometry.radix_rows
        ) + 2 * self.geometry.computed_radix_entries

    def iteration_cycles(self, extra_folds: int = 0) -> int:
        """Main loop: six cycles per iteration, last carry write-back elided.

        Each pathological extra overflow fold costs three more cycles (two
        write-backs plus one additional logic-SA access).  The recurrence
        is serial, so banking does not shorten it.
        """
        return 6 * self.iterations - 1 + 3 * extra_folds

    def finalize_cycles(self, subtractions: int = 1) -> int:
        """Finalisation: sum read, full addition, then the reduction steps."""
        return 2 + subtractions

    def total_cycles(
        self,
        reused: bool = False,
        extra_folds: int = 0,
        subtractions: int = 1,
    ) -> int:
        """Every cycle of one multiplication under the schedule algebra."""
        return (
            self.load_cycles()
            + self.lut_fill_cycles(reused)
            + self.iteration_cycles(extra_folds)
            + self.finalize_cycles(subtractions)
        )

    def report(
        self,
        reused: bool = False,
        extra_folds: int = 0,
        subtractions: int = 1,
    ) -> CycleReport:
        """The :class:`CycleReport` the cycle-accurate tier would measure."""
        return CycleReport(
            iterations=self.iterations,
            load_cycles=self.load_cycles(),
            precompute_cycles=self.lut_fill_cycles(reused),
            iteration_cycles=self.iteration_cycles(extra_folds),
            finalize_cycles=self.finalize_cycles(subtractions),
            extra_overflow_folds=extra_folds,
            lut_reused=reused,
            frequency_mhz=self.config.frequency_mhz,
        )

    # ------------------------------------------------------------------ #
    # access algebra (feeds the sram-layer energy model)
    # ------------------------------------------------------------------ #
    def array_stats(
        self, reused: bool = False, extra_folds: int = 0
    ) -> ArrayStats:
        """The :class:`ArrayStats` profile one multiplication implies.

        This is the closed-form counterpart of what the behavioural array
        collects: the energy model consumes either interchangeably.  These
        are access *counts*, not cycles — banking overlaps writes in time
        but every bit still toggles, so the profile is bank-invariant.
        """
        iterations = self.iterations
        columns = self.geometry.columns
        lut_writes = (
            0
            if reused
            else self.geometry.radix_rows + self._overflow_rows
        )
        row_writes = (
            _OPERAND_LOAD_WRITES
            + lut_writes
            + 4 * iterations
            - 1
            + 2 * extra_folds
        )
        compute_reads = 2 * iterations + extra_folds
        row_reads = 2 + compute_reads  # multiplier load + finalisation read
        return ArrayStats(
            row_writes=row_writes,
            row_reads=row_reads,
            compute_reads=compute_reads,
            rows_activated=2 + 3 * compute_reads,
            precharges=row_reads,
            bits_written=row_writes * columns,
            read_disturb_events=0,
        )

    def energy(
        self,
        reused: bool = False,
        extra_folds: int = 0,
        register_bits_written: int = 0,
    ) -> EnergyBreakdown:
        """Closed-form energy of one multiplication on this macro."""
        return self.config.energy.from_stats(
            self.array_stats(reused, extra_folds), register_bits_written
        )


class AnalyticalModSRAM:
    """Kernel-exact products with closed-form cycle and energy reports.

    The executable kernel implements the radix-4 single-digit recurrence,
    so only radix-4 geometries can run here; other radices are closed-form
    only (:class:`AnalyticalCostModel` directly).
    """

    def __init__(
        self,
        config: Optional[ModSRAMConfig] = None,
        geometry: Optional[MacroGeometry] = None,
    ) -> None:
        base = config or ModSRAMConfig()
        if geometry is not None:
            if geometry.radix != 4:
                raise ConfigurationError(
                    f"the executable kernel is radix-4; geometry field "
                    f"'radix' = {geometry.radix} is closed-form only "
                    f"(use AnalyticalCostModel)"
                )
            base = geometry.apply_to(base)
        self.config = base
        self.cost_model = AnalyticalCostModel(self.config, geometry)
        self.host = FastHost(self.config)

    @property
    def lut_residency(self):
        """Resident-LUT state (shared semantics with the cycle tier)."""
        return self.host.lut_residency

    def multiply(self, a: int, b: int, modulus: int) -> MultiplicationResult:
        """Compute ``a * b mod modulus``; cycles come from the cost model."""
        outcome = run_kernel(self.host, a, b, modulus)
        self.host.counter.increment("modmul")
        report = self.cost_model.report(
            reused=outcome.lut_reused,
            extra_folds=outcome.extra_overflow_folds,
            subtractions=outcome.finalize_subtractions,
        )
        return MultiplicationResult(
            product=outcome.product,
            report=report,
            trace=ExecutionTrace(enabled=False),
        )

    def multiply_many(
        self, pairs: List[Tuple[int, int]], modulus: int
    ) -> List[MultiplicationResult]:
        """Multiply a batch of operand pairs, reusing LUTs where possible."""
        return [self.multiply(a, b, modulus) for a, b in pairs]

    def expected_iteration_cycles(self) -> int:
        """The analytic main-loop cycle count for this configuration."""
        return self.cost_model.iteration_cycles()

    def energy_report(self) -> EnergyBreakdown:
        """Energy implied by every access performed so far (cumulative)."""
        return self.config.energy.from_stats(
            self.host.stats, self.host.datapath.stats.register_bits_written
        )
