"""ModSRAM macro configuration.

The default configuration is the design point evaluated in the paper: a
64 × 256 array of 8T cells in 65 nm, computing 256-bit modular
multiplications at ~420 MHz.  Every field is overridable so the examples and
ablation benchmarks can sweep bitwidth, array geometry and technology.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.sram.cell import EightTransistorCell, SramCell
from repro.sram.energy import EnergyModel
from repro.sram.sense_amp import SenseAmpParameters
from repro.sram.timing import TimingModel

__all__ = ["ModSRAMConfig", "PAPER_CONFIG"]

#: Rows consumed by the two precomputation LUTs: 5 (radix-4) + 8 (overflow).
RADIX4_LUT_ROWS = 5
OVERFLOW_LUT_ROWS = 8
INTERMEDIATE_ROWS = 2
MINIMUM_OPERAND_ROWS = 3  # multiplier, multiplicand, modulus


@dataclass(frozen=True)
class ModSRAMConfig:
    """Static parameters of one ModSRAM macro.

    Attributes
    ----------
    bitwidth:
        Operand width ``n`` in bits (the paper targets 256 for ECC).
    rows / columns:
        SRAM array geometry.  ``columns`` must be at least ``bitwidth`` and
        ``rows`` must fit the memory map (operands + LUTs + intermediates).
    technology_nm:
        Process node used by the timing/area/energy models.
    cell:
        Bit-cell model; the design requires a cell that tolerates
        three simultaneously activated read word lines (the 8T cell).
    extend_for_full_range:
        When ``True`` (default) the Booth recoding uses one extra digit so
        any operand below the modulus multiplies correctly (needed for
        full-range 256-bit moduli such as secp256k1).  When ``False`` the
        paper's ``n/2`` iteration count is used, which requires the
        multiplier's top bit to be clear (BN254-style moduli).
    timing / energy / sense:
        Sub-models; defaults are the calibrated 65 nm values.
    """

    bitwidth: int = 256
    rows: int = 64
    columns: int = 256
    technology_nm: int = 65
    cell: SramCell = EightTransistorCell
    extend_for_full_range: bool = True
    timing: TimingModel = field(default_factory=TimingModel)
    energy: EnergyModel = field(default_factory=EnergyModel)
    sense: SenseAmpParameters = field(default_factory=SenseAmpParameters)

    def __post_init__(self) -> None:
        if self.bitwidth < 4:
            raise ConfigurationError(
                f"bitwidth must be at least 4 bits, got {self.bitwidth}"
            )
        if self.columns < self.bitwidth:
            raise ConfigurationError(
                f"the array needs at least one column per operand bit: "
                f"columns={self.columns} < bitwidth={self.bitwidth}"
            )
        if self.rows < self.minimum_rows:
            raise ConfigurationError(
                f"{self.rows} rows cannot hold the memory map; at least "
                f"{self.minimum_rows} are required "
                f"(operands {MINIMUM_OPERAND_ROWS}, LUTs "
                f"{RADIX4_LUT_ROWS + OVERFLOW_LUT_ROWS}, intermediates "
                f"{INTERMEDIATE_ROWS})"
            )
        if self.cell.max_simultaneous_reads < 3:
            raise ConfigurationError(
                f"the logic-SA scheme activates 3 rows per access but a "
                f"{self.cell.name} cell only tolerates "
                f"{self.cell.max_simultaneous_reads}"
            )
        if self.technology_nm <= 0:
            raise ConfigurationError(
                f"technology node must be positive, got {self.technology_nm}"
            )

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def register_width(self) -> int:
        """Width of the redundant sum/carry registers (``n + 1`` bits)."""
        return self.bitwidth + 1

    @property
    def lut_rows(self) -> int:
        """Word lines dedicated to the two precomputation LUTs (13)."""
        return RADIX4_LUT_ROWS + OVERFLOW_LUT_ROWS

    @property
    def intermediate_rows(self) -> int:
        """Word lines holding intermediate results (sum and carry)."""
        return INTERMEDIATE_ROWS

    @property
    def minimum_rows(self) -> int:
        """Smallest array that can hold the memory map."""
        return MINIMUM_OPERAND_ROWS + self.lut_rows + INTERMEDIATE_ROWS

    @property
    def operand_capacity(self) -> int:
        """Rows left over for operands once LUTs and intermediates are placed."""
        return self.rows - self.lut_rows - INTERMEDIATE_ROWS

    @property
    def iterations(self) -> int:
        """Main-loop iterations for one multiplication."""
        base = (self.bitwidth + 1) // 2
        if self.extend_for_full_range and self.bitwidth % 2 == 0:
            return base + 1
        return base

    @property
    def expected_iteration_cycles(self) -> int:
        """Array cycles of the main loop (six per iteration, last write elided)."""
        return 6 * self.iterations - 1

    @property
    def frequency_mhz(self) -> float:
        """Clock frequency implied by the timing model."""
        return self.timing.frequency_mhz

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    def with_bitwidth(
        self, bitwidth: int, columns: Optional[int] = None
    ) -> "ModSRAMConfig":
        """A copy targeting a different operand width.

        Unless given explicitly, the column count follows the bitwidth (the
        macro is sized to its operands, as in the paper's design).
        """
        return replace(self, bitwidth=bitwidth, columns=columns or bitwidth)

    def paper_mode(self) -> "ModSRAMConfig":
        """A copy using the paper's ``n/2``-iteration schedule."""
        return replace(self, extend_for_full_range=False)


#: The exact design point of the paper's evaluation (§5): 64 × 256, 8T,
#: 65 nm, 256-bit operands, n/2 iterations → 767 main-loop cycles.
PAPER_CONFIG = ModSRAMConfig(extend_for_full_range=False)
