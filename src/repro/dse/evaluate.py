"""Evaluation of one design point: schedule, energy, area, verification.

One :class:`~repro.dse.spec.DesignPoint` becomes one
:class:`DsePointResult`: a deterministic workload stream is scheduled
across the point's macros with the geometry-aware analytical cost algebra
(:class:`~repro.modsram.chip.ChipScheduler`), the closed-form energy and
area models price the design, and — when the point asks for ``cycle`` or
``hdl`` fidelity — a seeded probe multiplication races the executable tier
against the closed form and requires bit-identical products and
field-by-field report agreement before the point is marked *verified*.

This module is what the registered ``dse-point`` experiment runs, so every
result is cacheable and JSON round-trippable.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping

from repro.analysis.design_point import build_design_config
from repro.analysis.tables import render_table
from repro.modsram.analytical import AnalyticalCostModel, AnalyticalModSRAM
from repro.modsram.area import AreaModel
from repro.modsram.chip import ChipSchedule, ChipScheduler, MultiplicationJob
from repro.modsram.fidelity import build_simulator
from repro.dse.spec import DesignPoint

__all__ = ["DsePointResult", "evaluate_design_point"]


def _round_robin(*streams: Iterable[MultiplicationJob]) -> Iterator[MultiplicationJob]:
    """Interleave streams one job at a time until all are exhausted."""
    iterators = [iter(stream) for stream in streams]
    while iterators:
        still_live = []
        for iterator in iterators:
            try:
                yield next(iterator)
            except StopIteration:
                continue
            still_live.append(iterator)
        iterators = still_live


def _fresh_stream(point: DesignPoint) -> Iterable[MultiplicationJob]:
    from repro.ecc.streams import (
        ecdsa_sign_stream,
        scalar_multiplication_stream,
    )
    from repro.zkp.streams import msm_stream, ntt_stream

    bits = point.bitwidth
    if point.workload == "ecdsa-sign":
        return ecdsa_sign_stream(bits, signatures=1)
    if point.workload == "scalar-mult":
        return scalar_multiplication_stream(bits)
    if point.workload == "ntt":
        return ntt_stream(256)
    if point.workload == "msm":
        return msm_stream(max(4, point.workload_ops // 8), scalar_bits=bits)
    return _round_robin(
        ecdsa_sign_stream(bits, signatures=1),
        ntt_stream(256),
        msm_stream(max(4, point.workload_ops // 16), scalar_bits=bits),
    )


def _workload_jobs(point: DesignPoint) -> List[MultiplicationJob]:
    """Exactly ``workload_ops`` jobs, restarting the stream as needed."""
    jobs: List[MultiplicationJob] = []
    while len(jobs) < point.workload_ops:
        before = len(jobs)
        for job in _fresh_stream(point):
            jobs.append(job)
            if len(jobs) >= point.workload_ops:
                break
        if len(jobs) == before:  # pragma: no cover - empty stream guard
            break
    return jobs


def _point_seed(point: DesignPoint) -> int:
    """A deterministic per-point seed (stable across runs and machines)."""
    canonical = repr(sorted(point.to_params().items()))
    return zlib.crc32(canonical.encode("utf-8"))


def _verify_probe(point: DesignPoint, config) -> None:
    """Race one seeded multiply: executable tier vs closed form.

    Products must match the big-int oracle and the cycle reports must
    agree field by field — the cross-tier contract the parity test suite
    pins down, applied at this point's geometry.
    """
    rng = random.Random(_point_seed(point))
    modulus = (rng.getrandbits(point.bitwidth) | (1 << (point.bitwidth - 1))) | 1
    # Paper schedule: the multiplier's top bit must be clear.
    a = rng.randrange(modulus) >> 1
    b = rng.randrange(modulus)
    executable = build_simulator(point.fidelity, config)
    analytical = AnalyticalModSRAM(config)
    measured = executable.multiply(a, b, modulus)
    closed = analytical.multiply(a, b, modulus)
    oracle = (a * b) % modulus
    if measured.product != oracle or closed.product != oracle:
        raise AssertionError(
            f"probe product mismatch at design point {point.to_params()}"
        )
    if measured.report.as_dict() != closed.report.as_dict():
        raise AssertionError(
            f"probe cycle-report mismatch at design point "
            f"{point.to_params()}: {measured.report.as_dict()} != "
            f"{closed.report.as_dict()}"
        )


@dataclass(frozen=True)
class DsePointResult:
    """Every metric of one evaluated design point (JSON round-trippable)."""

    point: DesignPoint
    #: ``True`` when an executable-tier probe verified the closed form.
    verified: bool
    jobs: int
    makespan_cycles: int
    lut_reuse_rate: float
    utilization: float
    frequency_mhz: float
    #: Closed-form cycles of one cold (LUT-filling) multiplication.
    cycles_per_op: int
    latency_ms: float
    throughput_mops: float
    energy_pj_per_op: float
    macro_area_mm2: float
    area_mm2: float

    def metrics(self) -> Dict[str, Any]:
        """Flat metric mapping (what the Pareto extractor consumes)."""
        return {
            "throughput_mops": self.throughput_mops,
            "energy_pj_per_op": self.energy_pj_per_op,
            "area_mm2": self.area_mm2,
            "makespan_cycles": self.makespan_cycles,
            "lut_reuse_rate": self.lut_reuse_rate,
            "utilization": self.utilization,
            "cycles_per_op": self.cycles_per_op,
        }

    def as_row(self) -> List[object]:
        """One row of a sweep table."""
        point = self.point
        return [
            point.bitwidth,
            f"{point.rows}x{point.resolved_columns()}"
            + (f"/{point.banks}b" if point.banks != 1 else ""),
            point.radix,
            point.macros,
            point.scheduler,
            point.workload,
            round(self.throughput_mops, 3),
            round(self.energy_pj_per_op, 1),
            round(self.area_mm2, 4),
            f"{self.lut_reuse_rate:.2f}",
            "yes" if self.verified else "-",
        ]

    @staticmethod
    def table_header() -> List[str]:
        """Column titles matching :meth:`as_row`."""
        return [
            "bits",
            "geometry",
            "radix",
            "macros",
            "scheduler",
            "workload",
            "thr (Mops)",
            "pJ/op",
            "mm^2",
            "reuse",
            "verified",
        ]

    def render(self) -> str:
        """The point as a one-row text table."""
        return render_table(
            tuple(self.table_header()),
            [self.as_row()],
            title=f"DSE point ({self.point.fidelity})",
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        payload = dict(self.point.to_params())
        payload.update(
            {
                "verified": self.verified,
                "jobs": self.jobs,
                "makespan_cycles": self.makespan_cycles,
                "lut_reuse_rate": self.lut_reuse_rate,
                "utilization": self.utilization,
                "frequency_mhz": self.frequency_mhz,
                "cycles_per_op": self.cycles_per_op,
                "latency_ms": self.latency_ms,
                "throughput_mops": self.throughput_mops,
                "energy_pj_per_op": self.energy_pj_per_op,
                "macro_area_mm2": self.macro_area_mm2,
                "area_mm2": self.area_mm2,
            }
        )
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DsePointResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. loaded JSON)."""
        point = DesignPoint.from_params(
            {
                key: value
                for key, value in data.items()
                if key in DesignPoint.__dataclass_fields__
            }
        )
        return cls(
            point=point,
            verified=bool(data["verified"]),
            jobs=int(data["jobs"]),
            makespan_cycles=int(data["makespan_cycles"]),
            lut_reuse_rate=float(data["lut_reuse_rate"]),
            utilization=float(data["utilization"]),
            frequency_mhz=float(data["frequency_mhz"]),
            cycles_per_op=int(data["cycles_per_op"]),
            latency_ms=float(data["latency_ms"]),
            throughput_mops=float(data["throughput_mops"]),
            energy_pj_per_op=float(data["energy_pj_per_op"]),
            macro_area_mm2=float(data["macro_area_mm2"]),
            area_mm2=float(data["area_mm2"]),
        )


def evaluate_design_point(point: DesignPoint) -> DsePointResult:
    """Price one design point: throughput, energy/op, area, verification."""
    geometry = point.geometry()
    config = build_design_config(
        point.bitwidth,
        rows=point.rows,
        technology_nm=point.technology_nm,
        columns=point.resolved_columns(),
    )
    cost_model = AnalyticalCostModel(config, geometry)
    scheduler = ChipScheduler(
        macros=point.macros,
        config=config,
        geometry=geometry,
        policy=point.scheduler,
    )
    jobs = _workload_jobs(point)
    schedule: ChipSchedule = scheduler.schedule(jobs, operation=point.workload)

    reuse = schedule.lut_reuse_rate
    cold_pj = cost_model.energy(reused=False).total_pj
    warm_pj = cost_model.energy(reused=True).total_pj
    energy_pj_per_op = reuse * warm_pj + (1.0 - reuse) * cold_pj

    macro_area = AreaModel(config).total_mm2()
    verified = point.fidelity != "analytical"
    if verified:
        _verify_probe(point, config)

    return DsePointResult(
        point=point,
        verified=verified,
        jobs=schedule.jobs,
        makespan_cycles=schedule.makespan_cycles,
        lut_reuse_rate=reuse,
        utilization=schedule.utilization,
        frequency_mhz=config.frequency_mhz,
        cycles_per_op=cost_model.total_cycles(),
        latency_ms=schedule.latency_ms,
        throughput_mops=schedule.throughput_mops,
        energy_pj_per_op=energy_pj_per_op,
        macro_area_mm2=macro_area,
        area_mm2=macro_area * point.macros,
    )
