"""Declarative sweep-spec format for design-space exploration.

A sweep spec is a small JSON (or YAML, when PyYAML is importable)
document in the spirit of rad_gen's ``sram_sweep.yml``: a set of *fixed*
parameter values plus *axes* — lists of values whose cartesian product
expands into :class:`DesignPoint`\\ s.  Expansion is deterministic and
order-stable: axes are iterated in sorted key order, values in the order
the spec lists them, so the same spec always yields the same point
sequence (the property the runner's content-addressed cache relies on).

Every parameter is validated eagerly with the offending key named in the
:class:`~repro.errors.ConfigurationError`, so a thousand-point sweep
fails at parse time, not in worker number 713.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.modsram.chip import SCHEDULER_POLICIES
from repro.modsram.geometry import SUPPORTED_RADICES, MacroGeometry

__all__ = [
    "DesignPoint",
    "SweepSpec",
    "DSE_WORKLOADS",
    "DSE_FIDELITIES",
    "default_sweep_spec",
    "load_spec",
    "parse_spec",
]

#: Workload streams a design point can be evaluated against.  ``mixed``
#: interleaves the ECDSA, NTT and MSM generators round-robin.
DSE_WORKLOADS = ("ecdsa-sign", "scalar-mult", "ntt", "msm", "mixed")

#: Fidelity tiers a point's probe verification can run at.  ``analytical``
#: is pure closed form; ``cycle`` and ``hdl`` additionally race one seeded
#: multiplication through the executable tier and require field-by-field
#: report agreement (radix-4, single-bank geometries only).
DSE_FIDELITIES = ("analytical", "cycle", "hdl")

#: The executable memory map's row floor (operands + radix-4 LUTs +
#: intermediates); configs below it cannot be built even when a smaller
#: radix would fit its own map into fewer rows.
_CONFIG_MIN_ROWS = 18


def _require_int(key: str, value: Any, low: int, high: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"spec key {key!r} must be an integer, got {value!r}"
        )
    if not low <= value <= high:
        raise ConfigurationError(
            f"spec key {key!r} must be in [{low}, {high}], got {value}"
        )
    return value


def _require_choice(key: str, value: Any, choices: Sequence[Any]) -> Any:
    if value not in choices:
        raise ConfigurationError(
            f"spec key {key!r} must be one of {tuple(choices)}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class DesignPoint:
    """One fully specified configuration of the design space.

    The defaults are the paper's design point (64 × 256 single-bank
    radix-4 macro, 65 nm, 256-bit operands, one macro, LUT-aware
    scheduling).  Construction validates every field and raises
    :class:`~repro.errors.ConfigurationError` naming the offending key.
    """

    bitwidth: int = 256
    rows: int = 64
    #: ``None`` sizes the array to the operand width (the paper's rule).
    columns: Optional[int] = None
    banks: int = 1
    radix: int = 4
    overflow_rows: int = 8
    technology_nm: int = 65
    macros: int = 1
    scheduler: str = "lut-aware"
    workload: str = "ecdsa-sign"
    #: Stream length cap — jobs actually scheduled per point.
    workload_ops: int = 512
    fidelity: str = "analytical"

    def __post_init__(self) -> None:
        _require_int("bitwidth", self.bitwidth, 4, 4096)
        _require_int("rows", self.rows, _CONFIG_MIN_ROWS, 65536)
        if self.columns is not None:
            _require_int("columns", self.columns, 4, 65536)
            if self.columns < self.bitwidth:
                raise ConfigurationError(
                    f"spec key 'columns' must cover the operand width: "
                    f"columns={self.columns} < bitwidth={self.bitwidth}"
                )
        _require_int("banks", self.banks, 1, 64)
        _require_choice("radix", self.radix, SUPPORTED_RADICES)
        _require_int("overflow_rows", self.overflow_rows, 2, 64)
        _require_int("technology_nm", self.technology_nm, 1, 1000)
        _require_int("macros", self.macros, 1, 1024)
        _require_choice("scheduler", self.scheduler, SCHEDULER_POLICIES)
        _require_choice("workload", self.workload, DSE_WORKLOADS)
        _require_int("workload_ops", self.workload_ops, 1, 1_000_000)
        _require_choice("fidelity", self.fidelity, DSE_FIDELITIES)
        if self.fidelity != "analytical" and (
            self.radix != 4 or self.banks != 1
        ):
            raise ConfigurationError(
                f"spec key 'fidelity' = {self.fidelity!r} needs an "
                f"executable geometry (radix 4, 1 bank); got "
                f"radix={self.radix}, banks={self.banks}"
            )
        # Geometry-level cross checks (banks dividing rows, the memory map
        # fitting) — MacroGeometry's errors name the offending field.
        self.geometry()

    def resolved_columns(self) -> int:
        """The array width this point implies (columns or the bitwidth)."""
        return self.columns if self.columns is not None else self.bitwidth

    def geometry(self) -> MacroGeometry:
        """The :class:`MacroGeometry` this point describes."""
        return MacroGeometry(
            rows=self.rows,
            columns=self.resolved_columns(),
            banks=self.banks,
            radix=self.radix,
            overflow_rows=self.overflow_rows,
        )

    def to_params(self) -> Dict[str, Any]:
        """JSON-clean field mapping (the ``dse-point`` experiment params)."""
        return {
            "bitwidth": self.bitwidth,
            "rows": self.rows,
            "columns": self.columns,
            "banks": self.banks,
            "radix": self.radix,
            "overflow_rows": self.overflow_rows,
            "technology_nm": self.technology_nm,
            "macros": self.macros,
            "scheduler": self.scheduler,
            "workload": self.workload,
            "workload_ops": self.workload_ops,
            "fidelity": self.fidelity,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "DesignPoint":
        """Rebuild a point from :meth:`to_params` output, revalidating."""
        known = {f: params[f] for f in _POINT_FIELDS if f in params}
        unknown = set(params) - set(_POINT_FIELDS)
        if unknown:
            raise ConfigurationError(
                f"spec key {sorted(unknown)[0]!r} is not a design-point "
                f"parameter; valid keys: {sorted(_POINT_FIELDS)}"
            )
        return cls(**known)


_POINT_FIELDS: Tuple[str, ...] = tuple(DesignPoint.__dataclass_fields__)


def _check_axis_values(key: str, values: Any) -> List[Any]:
    if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
        raise ConfigurationError(
            f"spec key {key!r} must map to a list of values, got {values!r}"
        )
    values = list(values)
    if not values:
        raise ConfigurationError(
            f"spec key {key!r} must list at least one value"
        )
    kinds = {type(value) for value in values}
    if len(kinds) > 1 or any(
        isinstance(value, (list, tuple, dict, set)) for value in values
    ):
        raise ConfigurationError(
            f"spec key {key!r} must be a flat list of uniform scalars, "
            f"got {values!r}"
        )
    return values


@dataclass(frozen=True)
class SweepSpec:
    """A declarative design-space sweep: fixed values plus swept axes.

    ``fixed`` pins parameters for every point; ``axes`` maps parameter
    names to value lists whose cartesian product is the sweep grid.
    :meth:`expand` materialises the grid as validated
    :class:`DesignPoint`\\ s in a deterministic, order-stable sequence.
    """

    name: str = "sweep"
    description: str = ""
    fixed: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"spec key 'name' must be a non-empty string, "
                f"got {self.name!r}"
            )
        if not isinstance(self.fixed, Mapping):
            raise ConfigurationError(
                f"spec key 'fixed' must be a mapping, got {self.fixed!r}"
            )
        if not isinstance(self.axes, Mapping):
            raise ConfigurationError(
                f"spec key 'axes' must be a mapping, got {self.axes!r}"
            )
        for key in self.fixed:
            if key not in _POINT_FIELDS:
                raise ConfigurationError(
                    f"spec key {key!r} (under 'fixed') is not a "
                    f"design-point parameter; valid keys: "
                    f"{sorted(_POINT_FIELDS)}"
                )
        checked: Dict[str, List[Any]] = {}
        for key, values in self.axes.items():
            if key not in _POINT_FIELDS:
                raise ConfigurationError(
                    f"spec key {key!r} (under 'axes') is not a "
                    f"design-point parameter; valid keys: "
                    f"{sorted(_POINT_FIELDS)}"
                )
            if key in self.fixed:
                raise ConfigurationError(
                    f"spec key {key!r} appears under both 'fixed' and "
                    f"'axes'; pick one"
                )
            checked[key] = _check_axis_values(key, values)
        object.__setattr__(self, "fixed", dict(self.fixed))
        object.__setattr__(self, "axes", checked)

    @property
    def point_count(self) -> int:
        """Grid size without materialising it."""
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def expand(self, max_points: int = 200_000) -> List[DesignPoint]:
        """The full cartesian grid as validated design points.

        Deterministic and order-stable: axes iterate in sorted key order,
        values in spec order.  Invalid cross-products (e.g. ``columns``
        below a swept ``bitwidth``) raise with the offending key named.
        """
        if self.point_count > max_points:
            raise ConfigurationError(
                f"spec key 'axes' expands to {self.point_count} points, "
                f"more than the {max_points}-point limit"
            )
        keys = sorted(self.axes)
        grids = [self.axes[key] for key in keys]
        points = []
        for combo in itertools.product(*grids):
            values = dict(self.fixed)
            values.update(zip(keys, combo))
            points.append(DesignPoint(**values))
        return points

    def with_fixed(self, **overrides: Any) -> "SweepSpec":
        """A copy pinning extra fixed values (dropping any matching axes)."""
        fixed = dict(self.fixed)
        fixed.update(overrides)
        axes = {
            key: values
            for key, values in self.axes.items()
            if key not in overrides
        }
        return replace(self, fixed=fixed, axes=axes)

    def quick(self, per_axis: int = 2) -> "SweepSpec":
        """A shrunk copy keeping the first ``per_axis`` values per axis.

        Used by ``--quick`` paths: same shape and validation, a grid small
        enough for smoke tests; the probe fidelity drops to analytical.
        """
        fixed = dict(self.fixed)
        fixed["fidelity"] = "analytical"
        axes = {
            key: values[:per_axis]
            for key, values in self.axes.items()
            if key != "fidelity"
        }
        return replace(
            self, name=f"{self.name}-quick", fixed=fixed, axes=axes
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            "fixed": dict(self.fixed),
            "axes": {key: list(values) for key, values in self.axes.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Build and validate a spec from a parsed JSON/YAML document."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a sweep spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {"name", "description", "fixed", "axes"}
        if unknown:
            raise ConfigurationError(
                f"spec key {sorted(unknown)[0]!r} is not a sweep-spec "
                "section; valid sections: 'name', 'description', 'fixed', "
                "'axes'"
            )
        return cls(
            name=data.get("name", "sweep"),
            description=data.get("description", ""),
            fixed=dict(data.get("fixed", {})),
            axes={k: v for k, v in dict(data.get("axes", {})).items()},
        )


def parse_spec(text: str, source: str = "<string>") -> SweepSpec:
    """Parse a sweep spec from JSON (always) or YAML (when available)."""
    try:
        document = json.loads(text)
    except ValueError as json_error:
        try:
            import yaml  # type: ignore
        except ImportError:
            raise ConfigurationError(
                f"{source}: not valid JSON ({json_error}) and PyYAML is "
                "not installed for YAML specs"
            ) from None
        try:
            document = yaml.safe_load(text)
        except yaml.YAMLError as yaml_error:
            raise ConfigurationError(
                f"{source}: neither valid JSON ({json_error}) nor valid "
                f"YAML ({yaml_error})"
            ) from None
    return SweepSpec.from_dict(document)


def load_spec(path: str) -> SweepSpec:
    """Load and validate a sweep-spec file (JSON or YAML by content)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ConfigurationError(f"cannot read sweep spec {path}: {error}")
    return parse_spec(text, source=path)


def default_sweep_spec() -> SweepSpec:
    """The built-in demonstration sweep: 640 points around the paper point.

    Bitwidth × rows × macro count × scheduler policy × workload — all
    closed-form (analytical fidelity), so the full grid expands and
    evaluates in seconds through the runner pool while still exposing a
    real throughput/energy/area trade-off surface.
    """
    return SweepSpec(
        name="modsram-default",
        description=(
            "Paper-point neighbourhood: operand width x array depth x "
            "macro count x scheduler policy x workload (640 points)"
        ),
        fixed={
            "technology_nm": 65,
            "banks": 1,
            "radix": 4,
            "workload_ops": 384,
            "fidelity": "analytical",
        },
        axes={
            "bitwidth": [64, 128, 192, 256],
            "rows": [24, 32, 64, 128],
            "macros": [1, 2, 4, 8, 16],
            "scheduler": ["lut-aware", "round-robin"],
            "workload": ["ecdsa-sign", "ntt", "msm", "mixed"],
        },
    )
