"""Declarative design-space exploration over the ModSRAM model stack.

The paper evaluates one design point; this package sweeps the whole
neighbourhood the way rad_gen drives SRAM macro generation from YAML
configs.  A :class:`SweepSpec` (JSON, or YAML when PyYAML is available)
declares fixed values and swept axes over macro geometry (rows, columns,
banking), Booth radix, LUT sizing, macro count, scheduler policy, workload
mix and probe fidelity; :func:`run_dse` expands it into validated
:class:`DesignPoint`\\ s, evaluates each through the cached parallel
experiment :class:`~repro.experiments.Runner` (every point is one
cacheable ``dse-point`` experiment, so warm re-runs are served from disk),
and reduces the sweep into the throughput / energy-per-op / area Pareto
frontier with dominated-point accounting.

Surfaces: the ``repro dse run|frontier`` CLI, the registered ``dse`` and
``dse-point`` experiments, and ``benchmarks/bench_dse.py`` →
``BENCH_dse.json``.
"""

from repro.dse.evaluate import DsePointResult, evaluate_design_point
from repro.dse.frontier import (
    DEFAULT_OBJECTIVES,
    FrontierPoint,
    Objective,
    pareto_frontier,
)
from repro.dse.run import DseRunResult, run_dse
from repro.dse.spec import (
    DSE_FIDELITIES,
    DSE_WORKLOADS,
    DesignPoint,
    SweepSpec,
    default_sweep_spec,
    load_spec,
    parse_spec,
)

__all__ = [
    "DesignPoint",
    "SweepSpec",
    "DsePointResult",
    "DseRunResult",
    "Objective",
    "FrontierPoint",
    "DEFAULT_OBJECTIVES",
    "DSE_WORKLOADS",
    "DSE_FIDELITIES",
    "default_sweep_spec",
    "load_spec",
    "parse_spec",
    "evaluate_design_point",
    "pareto_frontier",
    "run_dse",
]
