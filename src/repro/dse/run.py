"""Sweep orchestration: spec → runner pool → frontier.

:func:`run_dse` expands a :class:`~repro.dse.spec.SweepSpec` into design
points, runs each as one ``dse-point`` experiment through a
:class:`~repro.experiments.Runner` (so points execute across the process
pool and land in the content-addressed disk cache — a warm re-run of the
same spec is served entirely from cache), then reduces the results into
the throughput/energy/area Pareto frontier with dominated-point
accounting.  The whole run is a :class:`DseRunResult`, which is also the
payload of the registered ``dse`` experiment and of ``repro dse run``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.analysis.tables import render_table
from repro.errors import ConfigurationError
from repro.dse.evaluate import DsePointResult
from repro.dse.frontier import (
    DEFAULT_OBJECTIVES,
    FrontierPoint,
    pareto_frontier,
)
from repro.dse.spec import SweepSpec

__all__ = ["DseRunResult", "run_dse"]


@dataclass(frozen=True)
class DseRunResult:
    """One executed sweep: every point, the frontier, and pool accounting."""

    spec: Dict[str, Any]
    points: List[DsePointResult]
    frontier: List[FrontierPoint]
    #: Points some frontier member dominates (== points - frontier size
    #: only when no two points tie on every objective).
    dominated: int
    cache_hits: int
    elapsed_seconds: float

    @property
    def points_per_second(self) -> float:
        """Evaluation rate through the runner (cache hits included)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.points) / self.elapsed_seconds

    def frontier_rows(self) -> List[List[object]]:
        """Frontier members as table rows (expansion order)."""
        rows = []
        for member in self.frontier:
            result = self.points[member.index]
            rows.append(
                [member.index]
                + result.as_row()[:9]
                + [member.dominates]
            )
        return rows

    def render(self) -> str:
        """Sweep summary plus the frontier as a text table."""
        name = self.spec.get("name", "sweep")
        summary = (
            f"sweep {name!r}: {len(self.points)} points "
            f"({self.cache_hits} cached) in {self.elapsed_seconds:.2f}s "
            f"({self.points_per_second:.0f} points/s); frontier "
            f"{len(self.frontier)}, dominated {self.dominated}"
        )
        table = render_table(
            tuple(
                ["point"]
                + DsePointResult.table_header()[:9]
                + ["dominates"]
            ),
            self.frontier_rows(),
            title="Pareto frontier (max throughput, min energy/op, min area)",
        )
        return summary + "\n\n" + table

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean representation (round-trips through :meth:`from_dict`)."""
        return {
            "spec": dict(self.spec),
            "points": [point.to_dict() for point in self.points],
            "frontier": [
                {
                    "index": member.index,
                    "objectives": dict(member.objectives),
                    "dominates": member.dominates,
                }
                for member in self.frontier
            ],
            "dominated": self.dominated,
            "cache_hits": self.cache_hits,
            "elapsed_seconds": self.elapsed_seconds,
            "points_per_second": self.points_per_second,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DseRunResult":
        """Rebuild a run from :meth:`to_dict` output (e.g. loaded JSON)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a DSE results document must be a mapping, "
                f"got {type(data).__name__}"
            )
        required = (
            "spec", "points", "frontier", "dominated", "cache_hits",
            "elapsed_seconds",
        )
        missing = [key for key in required if key not in data]
        if missing:
            raise ConfigurationError(
                f"DSE results document is missing {missing[0]!r} "
                f"(expected the output of 'repro dse run --output/--json')"
            )
        return cls(
            spec=dict(data["spec"]),
            points=[
                DsePointResult.from_dict(entry) for entry in data["points"]
            ],
            frontier=[
                FrontierPoint(
                    index=int(entry["index"]),
                    objectives={
                        key: float(value)
                        for key, value in entry["objectives"].items()
                    },
                    dominates=int(entry["dominates"]),
                )
                for entry in data["frontier"]
            ],
            dominated=int(data["dominated"]),
            cache_hits=int(data["cache_hits"]),
            elapsed_seconds=float(data["elapsed_seconds"]),
        )


def run_dse(
    spec: SweepSpec,
    runner: Optional["Runner"] = None,
    quick: bool = False,
) -> DseRunResult:
    """Expand a sweep spec and evaluate every point through the runner.

    ``quick`` shrinks the grid to two values per axis (analytical probes
    only) — the smoke-test path.  Each point is one cacheable
    ``dse-point`` experiment, so re-running an already-swept spec is
    served from the runner's disk cache.
    """
    from repro.experiments import ExperimentSpec, Runner

    if quick:
        spec = spec.quick()
    if runner is None:
        runner = Runner()
    points = spec.expand()
    started = time.perf_counter()
    results = runner.run_specs(
        [ExperimentSpec("dse-point", point.to_params()) for point in points]
    )
    elapsed = time.perf_counter() - started
    evaluated = [DsePointResult.from_dict(entry.payload) for entry in results]
    frontier = pareto_frontier(
        [point.metrics() for point in evaluated], DEFAULT_OBJECTIVES
    )
    return DseRunResult(
        spec=spec.to_dict(),
        points=evaluated,
        frontier=frontier,
        dominated=len(evaluated) - len(frontier),
        cache_hits=sum(1 for entry in results if entry.cache_hit),
        elapsed_seconds=elapsed,
    )
