"""Pareto-frontier extraction over evaluated design points.

The trade-off surface of the ModSRAM design space has three objectives:
*throughput* (maximise), *energy per operation* (minimise) and the chip
*area proxy* (minimise).  A point is *dominated* when another point is at
least as good on every objective and strictly better on one; the frontier
is the set of non-dominated points, and dominated-point accounting records
how many points each survivor dominates (a useful density signal when a
sweep has thousands of points and the frontier a dozen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["Objective", "FrontierPoint", "pareto_frontier", "DEFAULT_OBJECTIVES"]


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: a metric name and a direction."""

    metric: str
    #: ``True`` to maximise the metric, ``False`` to minimise it.
    maximize: bool = False

    def oriented(self, value: float) -> float:
        """The value on a uniform larger-is-better scale."""
        return value if self.maximize else -value


#: The throughput / energy / area trade-off the ``repro dse`` CLI reports.
DEFAULT_OBJECTIVES: Tuple[Objective, ...] = (
    Objective("throughput_mops", maximize=True),
    Objective("energy_pj_per_op", maximize=False),
    Objective("area_mm2", maximize=False),
)


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated design point with its domination accounting."""

    #: Index of the point in the evaluated sweep (expansion order).
    index: int
    #: Objective values, keyed by metric name.
    objectives: Dict[str, float]
    #: How many swept points this one dominates.
    dominates: int


def _objective_vector(
    index: int, point: Mapping[str, Any], objectives: Sequence[Objective]
) -> Tuple[float, ...]:
    values = []
    for objective in objectives:
        if objective.metric not in point:
            raise ConfigurationError(
                f"design point {index} has no metric "
                f"{objective.metric!r}; available: {sorted(point)}"
            )
        value = point[objective.metric]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"design point {index} metric {objective.metric!r} is not "
                f"numeric: {value!r}"
            )
        values.append(objective.oriented(float(value)))
    return tuple(values)


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """Whether oriented vector ``a`` Pareto-dominates ``b``."""
    return all(x >= y for x, y in zip(a, b)) and any(
        x > y for x, y in zip(a, b)
    )


def pareto_frontier(
    points: Sequence[Mapping[str, Any]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> List[FrontierPoint]:
    """Non-dominated points of a sweep, with dominated-point accounting.

    ``points`` are metric mappings (e.g. ``DsePointResult.to_dict()``);
    the result lists frontier members in expansion order, each carrying
    the count of swept points it dominates.  Duplicate objective vectors
    are all kept (they dominate the same set and tie with each other).
    """
    if not objectives:
        raise ConfigurationError("at least one objective is required")
    vectors = [
        _objective_vector(index, point, objectives)
        for index, point in enumerate(points)
    ]
    frontier: List[FrontierPoint] = []
    for index, vector in enumerate(vectors):
        dominated_by_other = any(
            _dominates(other, vector)
            for other_index, other in enumerate(vectors)
            if other_index != index
        )
        if dominated_by_other:
            continue
        dominates = sum(
            1
            for other_index, other in enumerate(vectors)
            if other_index != index and _dominates(vector, other)
        )
        frontier.append(
            FrontierPoint(
                index=index,
                objectives={
                    objective.metric: float(points[index][objective.metric])
                    for objective in objectives
                },
                dominates=dominates,
            )
        )
    return frontier
