"""Built-in experiment definitions: one per paper table/figure.

Importing this module registers every reproduction entry point —
``table1``, ``figure1``, ``figure5``, ``figure6``, ``figure7``, ``table3``,
``headline``, plus the beyond-the-paper ``energy`` sweep, the design-space
``design-point``, the multi-macro ``chip-scaling`` exhibit, the async
``serving-throughput`` exhibit and the RTL ``hdl-cosim`` agreement check —
with
:mod:`repro.experiments.registry`.
The registry imports it lazily, so :mod:`repro.experiments` never drags the
analysis layer in at import time.
"""

from __future__ import annotations

from repro.analysis.chip_scaling import ChipScalingResult, reproduce_chip_scaling
from repro.analysis.design_point import (
    DesignPointResult,
    build_design_config,
    reproduce_design_point,
)
from repro.analysis.energy import EnergyAnalysisResult, reproduce_energy
from repro.analysis.hdl_cosim import HdlCosimResult, reproduce_hdl_cosim
from repro.analysis.figure1 import Figure1Result, reproduce_figure1
from repro.analysis.figure5 import Figure5Result, reproduce_figure5
from repro.analysis.figure6 import Figure6Result, reproduce_figure6
from repro.analysis.figure7 import Figure7Result, reproduce_figure7
from repro.analysis.headline import HeadlineResult, reproduce_headline_claims
from repro.analysis.serving import (
    ServingThroughputResult,
    reproduce_serving_throughput,
)
from repro.analysis.table1 import TableOneResult, reproduce_tables
from repro.analysis.table3 import Table3Result, reproduce_table3
from repro.core.complexity import PAPER_FIGURE1_BITWIDTHS
from repro.experiments.registry import ExperimentDefinition, register_experiment
from repro.modsram.config import PAPER_CONFIG
from repro.zkp.opcount import PAPER_FIGURE7_BITWIDTH, PAPER_FIGURE7_VECTOR_SIZE

__all__ = []


def _run_figure1(bitwidths, measure, seed):
    return reproduce_figure1(
        bitwidths=tuple(int(b) for b in bitwidths), measure=measure, seed=seed
    )


def _run_figure5(rows=None, bitwidth=None, technology_nm=None):
    config = None
    if any(value is not None for value in (rows, bitwidth, technology_nm)):
        config = build_design_config(
            bitwidth=bitwidth if bitwidth is not None else PAPER_CONFIG.bitwidth,
            rows=rows,
            technology_nm=(
                technology_nm
                if technology_nm is not None
                else PAPER_CONFIG.technology_nm
            ),
        )
    return reproduce_figure5(config)


def _run_energy(bitwidths):
    return reproduce_energy(tuple(int(b) for b in bitwidths))


register_experiment(
    ExperimentDefinition(
        name="table1",
        title="Tables 1a/1b/2: Booth encoder and LUT contents",
        description=(
            "Regenerate the radix-4 Booth encoder truth table and the "
            "radix-4 / carry-overflow LUTs from the implementation."
        ),
        run=reproduce_tables,
        serialize=TableOneResult.to_dict,
        deserialize=TableOneResult.from_dict,
        defaults={"multiplicand": None, "modulus": None},
        sweep_axes=("multiplicand", "modulus"),
    )
)

register_experiment(
    ExperimentDefinition(
        name="figure1",
        title="Figure 1: cycles vs bitwidth across algorithms",
        description=(
            "Analytic cycle laws for every algorithm plus cycle-accurate "
            "ModSRAM measurements over the paper's bitwidth sweep."
        ),
        run=_run_figure1,
        serialize=Figure1Result.to_dict,
        deserialize=Figure1Result.from_dict,
        defaults={
            "bitwidths": list(PAPER_FIGURE1_BITWIDTHS),
            "measure": True,
            "seed": 2024,
        },
        quick_overrides={"measure": False},
        sweep_axes=("seed",),
    )
)

register_experiment(
    ExperimentDefinition(
        name="figure5",
        title="Figure 5: macro area breakdown",
        description=(
            "Parametric area model versus the paper's published breakdown "
            "and SRAM overhead."
        ),
        run=_run_figure5,
        serialize=Figure5Result.to_dict,
        deserialize=Figure5Result.from_dict,
        defaults={"rows": None, "bitwidth": None, "technology_nm": None},
        sweep_axes=("rows", "bitwidth", "technology_nm"),
    )
)

register_experiment(
    ExperimentDefinition(
        name="figure6",
        title="Figure 6: rows required per PIM design",
        description=(
            "Row requirements of MeNTT / BP-NTT / ModSRAM for one modular "
            "multiplication plus ModSRAM's region breakdown."
        ),
        run=reproduce_figure6,
        serialize=Figure6Result.to_dict,
        deserialize=Figure6Result.from_dict,
        defaults={"bitwidth": 256},
        sweep_axes=("bitwidth",),
    )
)

register_experiment(
    ExperimentDefinition(
        name="figure7",
        title="Figure 7: ZKP kernel operation counts",
        description=(
            "Closed-form NTT/MSM operation counts at the paper's "
            "2^15-element, 256-bit operating point."
        ),
        run=reproduce_figure7,
        serialize=Figure7Result.to_dict,
        deserialize=Figure7Result.from_dict,
        defaults={
            "vector_size": PAPER_FIGURE7_VECTOR_SIZE,
            "bitwidth": PAPER_FIGURE7_BITWIDTH,
            "msm_window_bits": 16,
        },
        sweep_axes=("vector_size", "bitwidth"),
    )
)

register_experiment(
    ExperimentDefinition(
        name="table3",
        title="Table 3: PIM design comparison",
        description=(
            "Every Table 3 row rebuilt from the library's own models, "
            "optionally with a measured ModSRAM cycle count."
        ),
        run=reproduce_table3,
        serialize=Table3Result.to_dict,
        deserialize=Table3Result.from_dict,
        defaults={"bitwidth": 256, "measure": True},
        quick_overrides={"measure": False},
        sweep_axes=("bitwidth",),
    )
)

register_experiment(
    ExperimentDefinition(
        name="headline",
        title="Headline claims scorecard",
        description=(
            "The paper's section 5.3 headline claims, paper value versus "
            "reproduced value."
        ),
        run=reproduce_headline_claims,
        serialize=HeadlineResult.to_dict,
        deserialize=HeadlineResult.from_dict,
        defaults={"measure": True},
        quick_overrides={"measure": False},
    )
)

register_experiment(
    ExperimentDefinition(
        name="energy",
        title="Energy per multiplication (beyond the paper)",
        description=(
            "Modelled energy of one modular multiplication across operand "
            "widths, with the per-mechanism breakdown."
        ),
        run=_run_energy,
        serialize=EnergyAnalysisResult.to_dict,
        deserialize=EnergyAnalysisResult.from_dict,
        defaults={"bitwidths": [64, 128, 256]},
    )
)

def _run_chip_scaling(
    workload, macro_counts, bitwidth, scalar_bits, signatures, vector_size, msm_points
):
    return reproduce_chip_scaling(
        workload=workload,
        macro_counts=tuple(int(count) for count in macro_counts),
        bitwidth=bitwidth,
        scalar_bits=scalar_bits,
        signatures=signatures,
        vector_size=vector_size,
        msm_points=msm_points,
    )


register_experiment(
    ExperimentDefinition(
        name="chip-scaling",
        title="Chip scale-out: N-macro throughput on real workloads",
        description=(
            "Dispatch an ECDSA/NTT/MSM multiplication stream across chips "
            "of increasing macro count with the LUT-reuse-aware scheduler; "
            "report throughput, reuse rate, speedup and efficiency."
        ),
        run=_run_chip_scaling,
        serialize=ChipScalingResult.to_dict,
        deserialize=ChipScalingResult.from_dict,
        defaults={
            "workload": "ecdsa-sign",
            "macro_counts": [1, 2, 4, 8, 16],
            "bitwidth": 256,
            "scalar_bits": 256,
            "signatures": 1,
            "vector_size": 4096,
            "msm_points": 128,
        },
        quick_overrides={
            "macro_counts": [1, 2, 4],
            "scalar_bits": 64,
            "vector_size": 256,
            "msm_points": 16,
        },
        sweep_axes=("workload", "bitwidth", "vector_size", "msm_points", "signatures"),
    )
)

register_experiment(
    ExperimentDefinition(
        name="serving-throughput",
        title="Async serving layer: multi-tenant throughput and latency",
        description=(
            "Drive the asyncio Server with concurrent multi-tenant traffic "
            "(operand batches + product-tree workload graphs, every product "
            "verified); report throughput, latency percentiles, batching "
            "coalescing and context-cache behaviour."
        ),
        run=reproduce_serving_throughput,
        serialize=ServingThroughputResult.to_dict,
        deserialize=ServingThroughputResult.from_dict,
        defaults={
            "backend": "r4csa-lut",
            "curve": "bn254",
            "tenants": 4,
            "requests": 32,
            "pairs_per_request": 8,
            "graph_every": 8,
            "graph_leaves": 16,
            "max_batch": 64,
            "batch_window_ms": 1.0,
            "seed": 2024,
            "workers": 0,
        },
        quick_overrides={
            "tenants": 2,
            "requests": 8,
            "pairs_per_request": 4,
            "graph_leaves": 8,
        },
        sweep_axes=(
            "backend", "tenants", "requests", "max_batch",
            "batch_window_ms", "workers",
        ),
        # Headline figures are wall-clock measurements of this machine:
        # serving a cached timing as freshly measured would mislead.
        cacheable=False,
    )
)

register_experiment(
    ExperimentDefinition(
        name="design-point",
        title="ModSRAM design point (DSE)",
        description=(
            "Cycles, latency, area and energy of one ModSRAM configuration; "
            "sweep bitwidth/rows/technology for design-space exploration."
        ),
        run=reproduce_design_point,
        serialize=DesignPointResult.to_dict,
        deserialize=DesignPointResult.from_dict,
        defaults={
            "bitwidth": 256,
            "rows": None,
            "columns": None,
            "banks": 1,
            "technology_nm": 65,
            "measure": True,
            "seed": 5,
        },
        quick_overrides={"measure": False},
        sweep_axes=("bitwidth", "rows", "columns", "banks", "technology_nm"),
    )
)

register_experiment(
    ExperimentDefinition(
        name="hdl-cosim",
        title="HDL co-simulation: RTL cycle agreement vs modeled tiers",
        description=(
            "Elaborate the ModSRAM macro RTL and run the same operands "
            "through the event-driven simulator, the cycle-accurate tier "
            "and the analytical model; products must be bit-identical and "
            "cycle reports equal field by field (including the paper's 767 "
            "main-loop cycles at 256 bits)."
        ),
        run=reproduce_hdl_cosim,
        serialize=HdlCosimResult.to_dict,
        deserialize=HdlCosimResult.from_dict,
        defaults={
            "bitwidths": [16, 32, 64],
            "cases": 5,
            "seed": 2024,
        },
        quick_overrides={"bitwidths": [16, 24], "cases": 3},
        sweep_axes=("bitwidths", "cases", "seed"),
        # events/sec and the slowdown column are wall-clock measurements
        # of this machine; replaying a cached timing would mislead.
        cacheable=False,
    )
)


def _run_dse_point(**params):
    from repro.dse.evaluate import evaluate_design_point
    from repro.dse.spec import DesignPoint

    return evaluate_design_point(DesignPoint.from_params(params))


def _serialize_dse_point(result):
    return result.to_dict()


def _deserialize_dse_point(payload):
    from repro.dse.evaluate import DsePointResult

    return DsePointResult.from_dict(payload)


def _run_dse(spec=None, sample=0, parallel=False, workload_ops=None):
    from repro.dse.run import run_dse
    from repro.dse.spec import SweepSpec, default_sweep_spec
    from repro.experiments.runner import Runner

    sweep = SweepSpec.from_dict(spec) if spec else default_sweep_spec()
    if workload_ops is not None:
        sweep = sweep.with_fixed(workload_ops=int(workload_ops))
    if sample:
        sweep = sweep.quick(per_axis=int(sample))
    return run_dse(sweep, Runner(parallel=bool(parallel)))


def _serialize_dse(result):
    return result.to_dict()


def _deserialize_dse(payload):
    from repro.dse.run import DseRunResult

    return DseRunResult.from_dict(payload)


register_experiment(
    ExperimentDefinition(
        name="dse-point",
        title="DSE: evaluate one swept design point",
        description=(
            "Price one geometry/radix/macro-count/scheduler/workload "
            "configuration with the geometry-aware analytical algebra "
            "(throughput, energy/op, area), optionally verified against "
            "the cycle or hdl tier by a seeded probe multiplication."
        ),
        run=_run_dse_point,
        serialize=_serialize_dse_point,
        deserialize=_deserialize_dse_point,
        defaults={
            "bitwidth": 256,
            "rows": 64,
            "columns": None,
            "banks": 1,
            "radix": 4,
            "overflow_rows": 8,
            "technology_nm": 65,
            "macros": 1,
            "scheduler": "lut-aware",
            "workload": "ecdsa-sign",
            "workload_ops": 512,
            "fidelity": "analytical",
        },
        quick_overrides={"workload_ops": 128},
        sweep_axes=(
            "bitwidth",
            "rows",
            "columns",
            "banks",
            "radix",
            "macros",
            "scheduler",
            "workload",
        ),
    )
)

register_experiment(
    ExperimentDefinition(
        name="dse",
        title="DSE: full sweep with Pareto-frontier extraction",
        description=(
            "Expand a declarative sweep spec (default: the built-in "
            "640-point grid) into design points, evaluate each as a "
            "cached dse-point experiment through the runner, and extract "
            "the throughput/energy/area Pareto frontier with "
            "dominated-point accounting."
        ),
        run=_run_dse,
        serialize=_serialize_dse,
        deserialize=_deserialize_dse,
        defaults={
            "spec": None,
            "sample": 0,
            "parallel": False,
            "workload_ops": None,
        },
        quick_overrides={"sample": 2, "workload_ops": 128},
        sweep_axes=("sample",),
        # points/sec is a wall-clock measurement of this machine; the
        # per-point results underneath are cached, the aggregate is not.
        cacheable=False,
    )
)
